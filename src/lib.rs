//! Umbrella crate for the Tango reproduction workspace.
//!
//! Re-exports the public API of every member crate so the examples and
//! integration tests can `use tango_repro::...` uniformly.

pub use tango;
pub use tango_cgroup as cgroup;
pub use tango_ctrl as ctrl;
pub use tango_faults as faults;
pub use tango_flow as flow;
pub use tango_gnn as gnn;
pub use tango_hrm as hrm;
pub use tango_kube as kube;
pub use tango_metrics as metrics;
pub use tango_net as net;
pub use tango_nn as nn;
pub use tango_rl as rl;
pub use tango_sched as sched;
pub use tango_simcore as simcore;
pub use tango_train as train;
pub use tango_types as types;
pub use tango_workload as workload;

//! HRM vs K8s-native co-location (the §7.1 experiment, Fig. 9 in
//! miniature): run the three request patterns P1/P2/P3 with and without
//! HRM and compare resource utilization and QoS.
//!
//! ```sh
//! cargo run --release --example hrm_colocation
//! ```

use tango_repro::tango::runtime::{run_parallel, RunSpec};
use tango_repro::tango::{AllocatorKind, BePolicy, LcPolicy, TangoConfig};
use tango_repro::types::SimTime;
use tango_repro::workload::PatternKind;

fn main() {
    let duration = SimTime::from_secs(20);
    let mut specs = Vec::new();
    for pattern in PatternKind::ALL {
        for hrm in [true, false] {
            let mut cfg = TangoConfig::physical_testbed();
            cfg.workload.pattern = pattern;
            cfg.workload.lc_rps = 80.0;
            cfg.workload.be_rps = 16.0;
            // isolate the allocator: both sides use the default K8s
            // dispatch, as §7.1 does
            cfg.lc_policy = LcPolicy::KsNative;
            cfg.be_policy = BePolicy::KsNative;
            if hrm {
                cfg.allocator = AllocatorKind::Hrm;
            } else {
                cfg.allocator = AllocatorKind::Static;
                cfg.reassurance = None;
            }
            specs.push(RunSpec {
                label: format!("{pattern:?}/{}", if hrm { "HRM" } else { "native" }),
                config: cfg,
                duration,
            });
        }
    }

    println!("running {} configurations in parallel ...", specs.len());
    let reports = run_parallel(specs);

    println!("\npattern  allocator  util    lc_util  be_util  qos    throughput");
    for r in &reports {
        let (util_lc, util_be) = r
            .periods
            .iter()
            .fold((0.0, 0.0), |(a, b), p| (a + p.util_lc, b + p.util_be));
        let n = r.periods.len().max(1) as f64;
        println!(
            "{:<22}  {:>5.3}  {:>7.3}  {:>7.3}  {:>5.3}  {:>6}",
            r.label,
            r.mean_utilization,
            util_lc / n,
            util_be / n,
            r.qos_satisfaction,
            r.be_throughput
        );
    }

    // headline: HRM should beat native on overall utilization
    let hrm_util: f64 = reports
        .iter()
        .filter(|r| r.label.ends_with("HRM"))
        .map(|r| r.mean_utilization)
        .sum::<f64>()
        / 3.0;
    let native_util: f64 = reports
        .iter()
        .filter(|r| r.label.ends_with("native"))
        .map(|r| r.mean_utilization)
        .sum::<f64>()
        / 3.0;
    println!(
        "\nmean overall utilization: HRM {:.3} vs native {:.3} ({:+.1}%)",
        hrm_util,
        native_util,
        (hrm_util / native_util.max(1e-9) - 1.0) * 100.0
    );
}

//! Flash-crowd walkthrough: a small metro edge is overloaded far past
//! its BE capacity, and the same run is repeated three ways — no cloud,
//! an elastic cloud tier with the KubeDSM-style defrag pass spilling BE
//! pods upward, and the same cloud behind a tight egress budget.
//!
//! ```sh
//! cargo run --release --example cloud_spill
//! ```
//!
//! Everything is seeded: the three runs see byte-identical arrival
//! streams, so every difference in the printout is attributable to the
//! cloud tier (the edge layout is drawn before the cloud cluster is
//! attached, and the cloud draws nothing from the shared RNG).

use tango_repro::tango::{
    BePolicy, CloudConfig, DefragConfig, EdgeCloudSystem, LcPolicy, RunReport, TangoConfig,
};
use tango_repro::types::SimTime;

/// Two edge clusters sized for ~a third of the offered BE load: the
/// flash crowd has nowhere to go but the queue — or the cloud.
fn overloaded_edge() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 500.0;
    cfg.workload.be_rps = 90.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn with_cloud(budget_kib: Option<u64>) -> TangoConfig {
    let mut cfg = overloaded_edge();
    cfg.cloud = Some(CloudConfig {
        egress_budget_kib: budget_kib,
        ..CloudConfig::default()
    });
    cfg.defrag = Some(DefragConfig {
        every_n_ticks: 2,
        max_moves: 16,
        hot_threshold: 0.5,
        cold_threshold: 0.35,
    });
    cfg
}

/// LC arrivals that missed their QoS target (Eq. 1 counts satisfaction
/// against arrivals, so a request stuck in a queue is a violation too).
fn qos_violations(r: &RunReport) -> u64 {
    r.periods
        .iter()
        .map(|p| p.lc_arrived - p.lc_satisfied)
        .sum()
}

fn print_run(tag: &str, r: &RunReport) {
    println!(
        "{tag:<12} qos {:>6.2}%  p95 {:>7.1} ms  violations {:>5}  abandoned {:>5}  \
         be done {:>5}  migrations {:>3}/{:<3}  egress {:>7} KiB",
        r.qos_satisfaction * 100.0,
        r.lc_p95_ms,
        qos_violations(r),
        r.abandoned,
        r.be_throughput,
        r.migrations_completed,
        r.migrations_started,
        r.cloud_egress_kib
    );
}

fn main() {
    let horizon = SimTime::from_secs(10);

    let edge_only = EdgeCloudSystem::new(overloaded_edge()).run(horizon, "edge-only");
    let spill = EdgeCloudSystem::new(with_cloud(None)).run(horizon, "cloud-spill");
    let capped = EdgeCloudSystem::new(with_cloud(Some(16 * 1024))).run(horizon, "cloud-capped");

    println!("flash crowd on a 2-cluster edge, {}s horizon\n", 10);
    print_run("edge only", &edge_only);
    print_run("cloud", &spill);
    print_run("cloud 16MiB", &capped);

    let (v_edge, v_cloud) = (qos_violations(&edge_only), qos_violations(&spill));
    println!(
        "\ncloud tier moved {} BE pods ({} landed), shipped {} KiB of checkpoints, and \
         cut LC QoS violations {} -> {} ({:+})",
        spill.migrations_started,
        spill.migrations_completed,
        spill.cloud_egress_kib,
        v_edge,
        v_cloud,
        v_cloud as i64 - v_edge as i64
    );
    println!(
        "BE throughput {} -> {} ({:+}); the capped run stopped spilling at {} KiB egress",
        edge_only.be_throughput,
        spill.be_throughput,
        spill.be_throughput as i64 - edge_only.be_throughput as i64,
        capped.cloud_egress_kib
    );

    println!("\nper-period CSV of the spill run (migration counters in the last three columns):");
    print!("{}", spill.periods_csv());

    assert!(
        spill.migrations_started > 0,
        "defrag never fired — the walkthrough lost its point"
    );
    assert!(
        v_cloud < v_edge,
        "cloud tier did not reduce QoS violations ({v_edge} -> {v_cloud})"
    );
}

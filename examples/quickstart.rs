//! Quickstart: build a small edge-cloud system, run Tango on a mixed
//! LC/BE trace for 20 simulated seconds, and print the per-period report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tango_repro::tango::{EdgeCloudSystem, TangoConfig};
use tango_repro::types::SimTime;

fn main() {
    // The paper's physical testbed: 4 clusters × (1 master + 4 workers),
    // DSS-LC + DCG-BE + HRM + QoS re-assurance.
    let cfg = TangoConfig::physical_testbed();
    println!(
        "building {} clusters of {:?} workers, LC policy {}, BE policy {} ...",
        cfg.clusters,
        cfg.workers_per_cluster,
        cfg.lc_policy.name(),
        cfg.be_policy.name()
    );

    let system = EdgeCloudSystem::new(cfg);
    println!(
        "system up: {} nodes ({} workers), 10 services deployed per worker",
        system.node_count(),
        system.worker_count()
    );

    let report = system.run(SimTime::from_secs(20), "tango-quickstart");

    println!("\n== run summary ==");
    println!("{}", report.summary());
    println!("D-VPA scaling operations: {}", report.dvpa_ops);
    println!("BE evictions by LC preemption: {}", report.be_evictions);

    println!("\n== per-period series (800 ms periods, first 10) ==");
    println!("period  lc_arr  lc_done  lc_ok  be_done  util   p95ms");
    for p in report.periods.iter().take(10) {
        println!(
            "{:>6}  {:>6}  {:>7}  {:>5}  {:>7}  {:>5.2}  {:>6.1}",
            p.index,
            p.lc_arrived,
            p.lc_completed,
            p.lc_satisfied,
            p.be_completed,
            p.util_overall,
            p.lc_p95_ms
        );
    }
}

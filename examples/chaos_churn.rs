//! Chaos walkthrough: run the same workload calm and under a fault storm
//! — timed worker crashes, a degraded WAN link, a master failover, and
//! seeded MTTF/MTTR churn — then compare what the scheduler salvaged.
//!
//! ```sh
//! cargo run --release --example chaos_churn
//! ```
//!
//! The fault plan compiles into timed simulation events before the run
//! starts, so the whole scenario is deterministic: same seed, same
//! faults, same report, at any `TANGO_THREADS`.

use tango_repro::tango::{BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, TangoConfig};
use tango_repro::types::{ClusterId, SimTime};

fn base_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 3;
    cfg.topology.clusters = 3;
    cfg.workload.lc_rps = 90.0;
    cfg.workload.be_rps = 12.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn storm() -> FaultPlan {
    FaultPlan::new()
        // two staggered worker crashes with recoveries
        .crash_for(
            SimTime::from_secs(2),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 0,
            },
            SimTime::from_secs(3),
        )
        .crash_for(
            SimTime::from_secs(4),
            NodeRef::Worker {
                cluster: ClusterId(1),
                index: 1,
            },
            SimTime::from_secs(4),
        )
        // the 0–2 WAN link gets 8× latency and a quarter of its bandwidth
        .degrade_link_for(
            SimTime::from_secs(5),
            ClusterId(0),
            ClusterId(2),
            8.0,
            4.0,
            SimTime::from_secs(5),
        )
        // cluster 2 loses its master; the nearest live master stands in
        .master_failover(SimTime::from_secs(8), ClusterId(2), SimTime::from_secs(3))
        // and on top of it all, background churn: ~12 s MTTF, 1.5 s MTTR
        .node_churn(SimTime::from_secs(12), SimTime::from_millis(1_500), 0xC4A05)
}

fn main() {
    let duration = SimTime::from_secs(15);

    let calm = EdgeCloudSystem::new(base_cfg()).run(duration, "calm");

    let mut cfg = base_cfg();
    cfg.faults = storm();
    let (stormy, audit) = EdgeCloudSystem::new(cfg).run_audited(duration, "storm");

    println!("{}", calm.summary());
    println!("{}", stormy.summary());

    let f = &stormy.faults;
    println!();
    println!("fault ledger:");
    println!(
        "  crashes / recoveries   {} / {}",
        f.node_crashes, f.node_recoveries
    );
    println!("  master failovers       {}", f.master_failovers);
    println!("  links degraded         {}", f.links_degraded);
    println!(
        "  total downtime         {:.0} ms",
        f.total_downtime.as_millis_f64()
    );
    println!(
        "  interrupted (LC / BE)  {} / {}",
        f.lc_interrupted, f.be_interrupted
    );
    println!("  wait-queue drained     {}", f.wait_drained);
    println!("  bounced deliveries     {}", f.bounced_deliveries);
    println!("  rescheduled total      {}", f.rescheduled);
    println!("  fault-window QoS viol. {}", f.fault_qos_violations);

    println!();
    println!(
        "conservation: {} arrived = {} completed + {} abandoned + {} failed + {} pending",
        audit.total, audit.completed, audit.abandoned, audit.failed, audit.pending
    );
    assert!(audit.conserved(), "requests must never be lost");
    assert_eq!(f.down_node_dispatches, 0, "no work may land on dead nodes");
    assert_eq!(audit.running_on_down_nodes, 0);
    println!("invariants hold: nothing lost, nothing on dead nodes.");
}

//! Trace tap: attach a ring-buffer recorder to the staged runtime and
//! print per-request timelines — arrival → dispatch decision → delivery
//! → admission → completion, with simulation timestamps.
//!
//! ```sh
//! cargo run --release --example trace_tap
//! ```

use tango_repro::metrics::{TraceEvent, TraceRecorder};
use tango_repro::tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_repro::types::{RequestId, SimTime};

fn main() {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.be_policy = BePolicy::LoadGreedy; // fast, deterministic example

    // Clone the recorder before handing it to the system: the clone
    // shares the ring buffer and survives the run.
    let recorder = TraceRecorder::new(200_000);
    let mut system = EdgeCloudSystem::new(cfg);
    system.set_trace(Box::new(recorder.clone()));

    let report = system.run(SimTime::from_secs(5), "trace-tap");
    println!(
        "run done: {} LC completed, {} trace events recorded ({} retained)",
        report.lc_completed,
        recorder.total_seen(),
        recorder.len()
    );

    // Pick the first few requests that actually completed and print
    // their full stage-boundary timelines.
    let completed: Vec<RequestId> = recorder
        .events()
        .into_iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::Completion { request, .. } => Some(request),
            _ => None,
        })
        .take(3)
        .collect();

    for rid in completed {
        println!("\n== request {:?} ==", rid);
        for (at, event) in recorder.timeline(rid) {
            let detail = match &event {
                TraceEvent::Arrival {
                    service, origin, ..
                } => format!("service {:?} at cluster {:?}", service, origin),
                TraceEvent::DispatchDecision { target, lane, .. } => {
                    format!("{:?} lane -> node {:?}", lane, target)
                }
                TraceEvent::Delivery { node, bounced, .. } => {
                    format!(
                        "node {:?}{}",
                        node,
                        if *bounced { " (bounced)" } else { "" }
                    )
                }
                TraceEvent::Admission { node, admitted, .. } => format!(
                    "node {:?}: {}",
                    node,
                    if *admitted { "admitted" } else { "parked" }
                ),
                TraceEvent::Completion { node, latency, .. } => {
                    format!("node {:?}, latency {:.1} ms", node, latency.as_millis_f64())
                }
                TraceEvent::Abandoned { .. } => String::new(),
                TraceEvent::Fault { kind, node } => format!("{kind} {:?}", node),
            };
            println!(
                "  {:>9.3} ms  {:<9}  {}",
                at.as_millis_f64(),
                event.kind(),
                detail
            );
        }
    }
}

//! Inspect the synthetic workload: generate traces for each §7.1 pattern
//! and print their statistics — arrival rates per class over time, demand
//! distributions, origin skew — then export one run's per-period report as
//! CSV for external plotting.
//!
//! ```sh
//! cargo run --release --example trace_inspect
//! ```

use tango_repro::tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_repro::types::{ServiceClass, SimTime};
use tango_repro::workload::{Pattern, PatternKind, ServiceCatalog, TraceGenerator, TraceSpec};

fn main() {
    let catalog = ServiceCatalog::standard();
    println!("service catalog ({} services):", catalog.len());
    println!(
        "{:<18} class  min-request              base    γ target",
        "name"
    );
    for s in catalog.specs() {
        println!(
            "{:<18} {:<5}  {:<24} {:>5}ms  {}",
            s.name,
            s.class.to_string(),
            format!(
                "{}m / {}Mi",
                s.min_request.cpu_milli, s.min_request.memory_mib
            ),
            s.base_service_time().as_millis(),
            if s.qos_target == SimTime::MAX {
                "-".to_string()
            } else {
                format!("{}ms", s.qos_target.as_millis())
            }
        );
    }

    for kind in PatternKind::ALL {
        let spec = TraceSpec::new(
            Pattern::new(kind, 100.0, 20.0),
            4,
            SimTime::from_secs(40),
            7,
        );
        let events = TraceGenerator::new(&catalog, spec).collect_events();
        let lc = events
            .iter()
            .filter(|e| e.class == ServiceClass::Lc)
            .count();
        let be = events.len() - lc;
        // arrivals per 5s bucket for the LC class (shows the periodicity)
        let mut buckets = [0u32; 8];
        for e in events.iter().filter(|e| e.class == ServiceClass::Lc) {
            let b = (e.at.as_secs_f64() / 5.0) as usize;
            if b < 8 {
                buckets[b] += 1;
            }
        }
        let mut origins = [0usize; 4];
        for e in &events {
            origins[e.origin.index()] += 1;
        }
        println!(
            "\npattern {kind:?}: {} events ({lc} LC / {be} BE)",
            events.len()
        );
        println!("  LC arrivals per 5s: {buckets:?}");
        println!("  origin distribution (Zipf-skewed): {origins:?}");
    }

    // export a short run's periods as CSV
    let mut cfg = TangoConfig::physical_testbed();
    cfg.be_policy = BePolicy::LoadGreedy;
    let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(10), "csv-demo");
    let path = std::env::temp_dir().join("tango_periods.csv");
    report.write_csv(&path).expect("writable temp dir");
    println!(
        "\nwrote {} periods of the demo run to {}",
        report.periods.len(),
        path.display()
    );
    println!("first lines:");
    for line in report.periods_csv().lines().take(4) {
        println!("  {line}");
    }
}

//! Seeded training sweep: the TD3 continuous-action BE scheduler vs
//! DCG-BE (discrete A2C) on QoS violations and utilization.
//!
//! Each arm runs the `tango-train` harness — fresh scenario per episode,
//! learner state threaded across episodes — over a handful of seeds at a
//! dual-space deployment scale, then reports the mean QoS-violation rate
//! and node utilization of the final (most-trained) episode per seed.
//!
//! ```sh
//! cargo run --release --example train_td3 -- 8 3
//! cargo run --release --example train_td3 -- 8 3 --json > train_td3.json
//! ```
//!
//! First argument: cluster count (default 8). Second: episodes per seed
//! (default 3). With `--json`, bench-style stamped JSON replaces the
//! table — the same `{threads, git_rev, samples[]}` shape the bench
//! binaries commit, one sample per (policy, seed) with the training
//! wall time, plus the eval digest so sweeps can be diffed for
//! determinism across machines.

use tango_repro::tango::{BePolicy, TangoConfig};
use tango_repro::train::{TrainConfig, TrainHarness, TrainOutcome};
use tango_repro::types::SimTime;

const SEEDS: [u64; 3] = [7, 47, 1701];

/// Resolve the revision to stamp JSON output with, mirroring the bench
/// harness: `TANGO_GIT_REV` first, then `git rev-parse --short HEAD`,
/// and a panic (not a placeholder) when neither resolves.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("TANGO_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            panic!(
                "JSON stamping could not resolve a git revision: run inside a \
                 git checkout or set TANGO_GIT_REV=<rev>"
            )
        })
}

fn train_cfg(clusters: usize, episodes: usize, policy: BePolicy, seed: u64) -> TrainConfig {
    let mut base = TangoConfig::dual_space(clusters).as_tango();
    base.be_policy = policy;
    TrainConfig {
        episodes,
        episode_duration: SimTime::from_secs(2),
        checkpoint_every: 0,
        seed,
        ..TrainConfig::new(base)
    }
}

struct Arm {
    policy: &'static str,
    seed: u64,
    outcome: TrainOutcome,
    wall: std::time::Duration,
}

fn violation_rate(o: &TrainOutcome) -> f64 {
    // QoS-violation rate of the final (most-trained) episode
    o.records.last().map(|r| 1.0 - r.qos).unwrap_or(1.0)
}

fn utilization(o: &TrainOutcome) -> f64 {
    o.records.last().map(|r| r.utilization).unwrap_or(0.0)
}

fn main() {
    let mut json = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let mut args = positional.into_iter();
    let clusters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let arms: Vec<(&'static str, BePolicy)> = vec![
        ("td3-be", BePolicy::Td3),
        (
            "dcg-be",
            BePolicy::DcgBe(tango_repro::gnn::EncoderKind::Sage { p: 3 }),
        ),
    ];

    let mut results: Vec<Arm> = Vec::new();
    for (name, policy) in &arms {
        for seed in SEEDS {
            let start = std::time::Instant::now();
            let outcome = TrainHarness::new(train_cfg(clusters, episodes, *policy, seed))
                .run()
                .expect("training run succeeds");
            results.push(Arm {
                policy: name,
                seed,
                outcome,
                wall: start.elapsed(),
            });
        }
    }

    if json {
        let threads = std::env::var("TANGO_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        let rev = git_rev();
        let mut samples = Vec::new();
        for a in &results {
            let done: u64 = a.outcome.records.iter().map(|r| r.be_throughput).sum();
            let rate = done as f64 / a.wall.as_secs_f64().max(1e-9);
            samples.push(format!(
                "{{\"scenario\": \"train_td3/{}/seed{}\", \"wall_ns\": {}, \"rate_per_sec\": {:.2}, \
                 \"qos_violation_rate\": {:.4}, \"utilization\": {:.4}, \"eval_digest\": \"{:#018x}\"}}",
                a.policy,
                a.seed,
                a.wall.as_nanos(),
                rate,
                violation_rate(&a.outcome),
                utilization(&a.outcome),
                a.outcome.eval_digest
            ));
        }
        let mut out =
            format!("{{\n  \"threads\": {threads},\n  \"git_rev\": \"{rev}\",\n  \"samples\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                s,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
        return;
    }

    println!(
        "trained {episodes} episodes x {} seeds on {clusters} clusters per policy\n",
        SEEDS.len()
    );
    println!("policy  seed  qos-violations  utilization  eval-digest");
    for a in &results {
        println!(
            "{:<6}  {:>4}  {:>14.3}  {:>11.3}  {:#018x}",
            a.policy,
            a.seed,
            violation_rate(&a.outcome),
            utilization(&a.outcome),
            a.outcome.eval_digest
        );
    }
    for (name, _) in &arms {
        let arm: Vec<&Arm> = results.iter().filter(|a| a.policy == *name).collect();
        let n = arm.len() as f64;
        let viol = arm.iter().map(|a| violation_rate(&a.outcome)).sum::<f64>() / n;
        let util = arm.iter().map(|a| utilization(&a.outcome)).sum::<f64>() / n;
        println!("\n{name}: mean qos-violations {viol:.3}, mean utilization {util:.3}");
    }
}

//! A guided tour of D-VPA's CGroup control flow (Fig. 5): deploy a
//! service pod, scale it up and down with D-VPA (ordered, non-disruptive
//! writes) and with the stock K8s VPA (delete-and-rebuild), and print the
//! CGroup write journal of both.
//!
//! ```sh
//! cargo run --release --example dvpa_inspection
//! ```

use tango_repro::hrm::Dvpa;
use tango_repro::kube::{NativeVpa, Node};
use tango_repro::types::{
    ClusterId, NodeId, RequestId, Resources, ServiceClass, ServiceId, ServiceSpec, SimTime,
};

fn spec() -> ServiceSpec {
    ServiceSpec {
        id: ServiceId(0),
        name: "cloud-render".into(),
        class: ServiceClass::Lc,
        min_request: Resources::cpu_mem(500, 256),
        work_milli_ms: 50_000,
        qos_target: SimTime::from_millis(300),
        payload_kib: 256,
    }
}

fn main() {
    let capacity = Resources::new(8_000, 16_384, 1_000, 100_000);
    let svc = spec();

    // ---- D-VPA path -------------------------------------------------
    let mut node = Node::new(NodeId(1), ClusterId(0), false, capacity);
    node.deploy_service(
        &svc,
        Resources::new(1_000, 1_024, 100, 1_000),
        SimTime::ZERO,
    )
    .unwrap();
    node.admit(
        RequestId(1),
        svc.id,
        svc.min_request,
        svc.work_milli_ms,
        SimTime::ZERO,
    )
    .unwrap();
    node.cgroups.clear_journal();

    let mut dvpa = Dvpa::default();
    println!("== D-VPA: expand 1000m -> 2000m while a request is running ==");
    let out = dvpa
        .scale(
            &mut node,
            svc.id,
            Resources::new(2_000, 2_048, 200, 2_000),
            SimTime::from_millis(10),
        )
        .unwrap();
    for e in node.cgroups.journal() {
        println!("  write {:?} {} -> [{}]", e.kind, e.path, e.limit);
    }
    println!(
        "  {} writes, finished at {} (op latency 23 ms), request still running: {}",
        out.writes,
        out.completed_at,
        node.running_count() == 1
    );

    node.cgroups.clear_journal();
    println!("\n== D-VPA: shrink back to 600m (container before pod) ==");
    dvpa.scale(
        &mut node,
        svc.id,
        Resources::new(600, 1_024, 100, 1_000),
        SimTime::from_millis(40),
    )
    .unwrap();
    for e in node.cgroups.journal() {
        println!("  write {:?} {} -> [{}]", e.kind, e.path, e.limit);
    }

    // the in-flight request survives everything and completes
    node.advance(SimTime::from_millis(200));
    println!(
        "  request completed without interruption: {}",
        node.take_completions().len() == 1
    );

    // ---- native K8s-VPA path ----------------------------------------
    println!("\n== stock K8s VPA: same expansion, delete-and-rebuild ==");
    let mut node2 = Node::new(NodeId(2), ClusterId(0), false, capacity);
    node2
        .deploy_service(
            &svc,
            Resources::new(1_000, 1_024, 100, 1_000),
            SimTime::ZERO,
        )
        .unwrap();
    node2
        .admit(
            RequestId(2),
            svc.id,
            svc.min_request,
            svc.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
    let vpa = NativeVpa::default();
    let outcome = vpa
        .scale(
            &mut node2,
            svc.id,
            Resources::new(2_000, 2_048, 200, 2_000),
            SimTime::from_millis(10),
        )
        .unwrap();
    println!(
        "  interrupted {} running request(s); pod dark until {}",
        outcome.interrupted.len(),
        outcome.ready_at
    );
    println!(
        "  D-VPA latency advantage: 23 ms vs {} ms  (~{}x)",
        outcome.ready_at.as_millis() - 10,
        (outcome.ready_at.as_millis() - 10) / 23
    );
}

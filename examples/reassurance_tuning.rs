//! Sweep the QoS re-assurance thresholds (α, β) of Algorithm 1 and watch
//! the QoS-satisfaction / BE-throughput trade-off move — the sensitivity
//! study behind the paper's "empirically establish two thresholds".
//!
//! ```sh
//! cargo run --release --example reassurance_tuning
//! ```

use tango_repro::tango::runtime::{run_parallel, RunSpec};
use tango_repro::tango::{BePolicy, LcPolicy, TangoConfig};
use tango_repro::types::SimTime;
use tango_repro::workload::PatternKind;

fn main() {
    let duration = SimTime::from_secs(20);
    let grid = [
        (0.01, 0.9), // aggressive growth, almost never shrink
        (0.05, 0.7), // the repository default
        (0.10, 0.5), // the band the paper's examples suggest
        (0.20, 0.3), // hair-trigger both ways
    ];
    let mut specs = Vec::new();
    for &(alpha, beta) in &grid {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.workload.pattern = PatternKind::P1;
        cfg.workload.lc_rps = 1_300.0;
        cfg.workload.be_rps = 20.0;
        cfg.lc_policy = LcPolicy::DssLc;
        cfg.be_policy = BePolicy::LoadGreedy;
        if let Some(r) = cfg.reassurance.as_mut() {
            r.alpha = alpha;
            r.beta = beta;
        }
        specs.push(RunSpec {
            label: format!("a={alpha:.2} b={beta:.2}"),
            config: cfg,
            duration,
        });
    }
    // control: mechanism off
    let mut off = TangoConfig::physical_testbed();
    off.workload.pattern = PatternKind::P1;
    off.workload.lc_rps = 1_300.0;
    off.workload.be_rps = 20.0;
    off.lc_policy = LcPolicy::DssLc;
    off.be_policy = BePolicy::LoadGreedy;
    off.reassurance = None;
    specs.push(RunSpec {
        label: "off".into(),
        config: off,
        duration,
    });

    println!(
        "sweeping {} (α, β) settings under bursty overload ...",
        specs.len()
    );
    let reports = run_parallel(specs);
    println!("\nthresholds      qos     p95(ms)  throughput  abandoned");
    for r in &reports {
        println!(
            "{:<14}  {:>5.3}  {:>8.1}  {:>10}  {:>9}",
            r.label, r.qos_satisfaction, r.lc_p95_ms, r.be_throughput, r.abandoned
        );
    }
    println!("\nα grows resources when slack < α; β shrinks when slack > β.");
    println!("Wider bands adjust less (stable but slow to react); narrow bands");
    println!("churn limits every window. Compare each row against 'off'.");
}

//! Delegated orchestration end to end: an external control plane watches
//! the cluster through the state mirror, places cluster-0's LC rounds
//! through the scheduler proxy, and learns about a crash from the
//! keep-alive detector instead of an oracle.
//!
//! Three acts:
//!
//! 1. **Pin policy** — an external decision source pins every cluster-0
//!    LC request onto one worker. Placement visibly changes against the
//!    unproxied baseline, and the proxy stats show the rounds were
//!    accepted.
//! 2. **Deadline miss** — the same policy claims a sim-time compute
//!    latency over the proxy deadline; every round falls back to the
//!    local DSS-LC and the run is bit-identical to the baseline.
//! 3. **Detection-driven failure** — a worker crashes mid-run with the
//!    keep-alive detector enabled; the mirror stream shows the node
//!    believed alive until the miss threshold trips, and the report
//!    carries the measured detection lag.
//!
//! ```sh
//! cargo run --example delegated_orc
//! ```

use tango_repro::ctrl::{decode_frame, DecisionReply, KeepAliveConfig, MirrorFrame, PolicyFn};
use tango_repro::tango::{BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, TangoConfig};
use tango_repro::types::{ClusterId, NodeId, SimTime};

fn base_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn pin_policy(
    pin: NodeId,
    late: bool,
) -> PolicyFn<impl FnMut(&tango_repro::ctrl::DecisionRequest) -> Option<DecisionReply> + Send> {
    PolicyFn::new(move |req: &tango_repro::ctrl::DecisionRequest| {
        let placements = req
            .batches
            .iter()
            .map(|b| {
                let pin_ok = b.candidates.iter().any(|c| c.node == pin && c.alive);
                b.requests
                    .iter()
                    .filter(|_| pin_ok)
                    .map(|&rid| (rid, pin))
                    .collect()
            })
            .collect();
        Some(DecisionReply {
            round: req.round,
            // Act 2 claims 50 ms of external compute against a 10 ms
            // deadline — every reply arrives "too late".
            compute_latency: SimTime::from_millis(if late { 50 } else { 1 }),
            placements,
        })
    })
}

fn main() {
    let horizon = SimTime::from_secs(3);
    let deadline = SimTime::from_millis(10);
    let pin = NodeId(2); // a cluster-0 worker in this layout

    let baseline = EdgeCloudSystem::new(base_cfg()).run(horizon, "baseline");
    println!("baseline  : {}", baseline.summary());

    // --- Act 1: the external pin policy drives cluster-0 placement.
    let mut sys = EdgeCloudSystem::new(base_cfg());
    let stats = sys.attach_lc_proxy(ClusterId(0), Box::new(pin_policy(pin, false)), deadline);
    let pinned = sys.run(horizon, "pinned");
    let (accepted, declined, fallbacks) = stats.totals();
    println!("pinned    : {}", pinned.summary());
    println!(
        "  proxy: accepted={accepted} declined={declined} fallbacks={fallbacks}; \
         placement changed vs baseline: {}",
        pinned.digest() != baseline.digest()
    );
    assert!(accepted > 0 && pinned.digest() != baseline.digest());

    // --- Act 2: the same policy blows the deadline; deterministic
    // fallback reproduces the baseline exactly.
    let mut sys = EdgeCloudSystem::new(base_cfg());
    let stats = sys.attach_lc_proxy(ClusterId(0), Box::new(pin_policy(pin, true)), deadline);
    let late = sys.run(horizon, "late");
    let (accepted, _, fallbacks) = stats.totals();
    println!("late      : {}", late.summary());
    println!(
        "  proxy: accepted={accepted} fallbacks={fallbacks}; \
         bit-identical to baseline: {}",
        late.digest() == baseline.digest()
    );
    assert!(fallbacks > 0 && late.digest() == baseline.digest());

    // --- Act 3: a crash surfaces through keep-alive detection, watched
    // through the mirror.
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::new().crash_for(
        SimTime::from_millis(900),
        NodeRef::Worker {
            cluster: ClusterId(0),
            index: 1,
        },
        SimTime::from_millis(1_400),
    );
    cfg.detection = Some(KeepAliveConfig {
        miss_threshold: 3,
        suspicion_decay: 0.5,
    });
    let sync_ms = cfg.sync_interval.as_millis_f64();
    let mut sys = EdgeCloudSystem::new(cfg);
    let mirror = sys.attach_mirror();
    mirror.retain_frames(true);
    let detected = sys.run(horizon, "detected");
    println!("detected  : {}", detected.summary());

    // Replay the mirror stream: when does the believed liveness flip?
    let mut believed_down_at = None;
    for bytes in mirror.take_retained() {
        let frame = decode_frame(&bytes).expect("mirror frames decode");
        let (at, rows) = match &frame {
            MirrorFrame::Full(s) => (s.at, s.nodes.iter().collect::<Vec<_>>()),
            MirrorFrame::Delta { at, rows, .. } => (*at, rows.iter().map(|(_, n)| n).collect()),
        };
        if believed_down_at.is_none() && rows.iter().any(|n| !n.alive) {
            believed_down_at = Some(at);
        }
    }
    let lag_ms: f64 = detected.periods.iter().map(|p| p.detection_lag_ms).sum();
    let bound_ms = 3.0 * sync_ms;
    println!(
        "  crash at 900 ms; mirror first shows the node dead at {:?} \
         (detection lag {lag_ms:.0} ms, bound {bound_ms:.0} ms = 3 misses x {sync_ms:.0} ms sync)",
        believed_down_at.expect("the detector tripped inside the horizon"),
    );
    assert!(lag_ms > 0.0 && lag_ms <= 3.0 * sync_ms);
    println!("\ndelegated orchestration: pin placed, late fell back, crash detected.");
}

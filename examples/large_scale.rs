//! Large-scale hybrid-cluster comparison (Fig. 13 in miniature): Tango vs
//! CERES (elastic local allocation, no cross-cluster scheduling) vs DSACO
//! (intelligent distributed offloading, no mixed-workload allocation) on
//! a dual-space deployment.
//!
//! The paper runs 104 clusters for many minutes; this example defaults to
//! 12 clusters × 20 s so it completes in seconds. Pass a cluster count to
//! scale it up:
//!
//! ```sh
//! cargo run --release --example large_scale -- 30
//! ```

use tango_repro::tango::runtime::{run_parallel, RunSpec};
use tango_repro::tango::TangoConfig;
use tango_repro::types::SimTime;

fn main() {
    let clusters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let duration = SimTime::from_secs(20);
    let base = TangoConfig::dual_space(clusters);

    println!("comparing on {clusters} clusters, {duration} simulated ...");
    let specs = vec![
        RunSpec {
            label: "Tango".into(),
            config: base.clone().as_tango(),
            duration,
        },
        RunSpec {
            label: "CERES".into(),
            config: base.clone().as_ceres(),
            duration,
        },
        RunSpec {
            label: "DSACO".into(),
            config: base.as_dsaco(),
            duration,
        },
    ];
    let reports = run_parallel(specs);

    println!("\nsystem  utilization  qos-satisfaction  be-throughput  abandoned");
    for r in &reports {
        println!(
            "{:<6}  {:>11.3}  {:>16.3}  {:>13}  {:>9}",
            r.label, r.mean_utilization, r.qos_satisfaction, r.be_throughput, r.abandoned
        );
    }

    let tango = &reports[0];
    let ceres = &reports[1];
    let dsaco = &reports[2];
    println!(
        "\nTango vs CERES:  utilization {:+.1}%,  throughput {:+.1}%",
        (tango.mean_utilization / ceres.mean_utilization.max(1e-9) - 1.0) * 100.0,
        (tango.be_throughput as f64 / ceres.be_throughput.max(1) as f64 - 1.0) * 100.0,
    );
    println!(
        "Tango vs DSACO:  QoS satisfaction {:+.1}%",
        (tango.qos_satisfaction / dsaco.qos_satisfaction.max(1e-9) - 1.0) * 100.0,
    );
}

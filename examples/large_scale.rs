//! Large-scale hybrid-cluster comparison (Fig. 13 in miniature): Tango vs
//! CERES (elastic local allocation, no cross-cluster scheduling) vs DSACO
//! (intelligent distributed offloading, no mixed-workload allocation) on
//! a dual-space deployment, driven through the sharded sync runtime.
//!
//! The paper runs 104 clusters / ~1000 nodes for many minutes; this
//! example defaults to 12 clusters × 20 s so it completes in seconds.
//! Pass a cluster count — and optionally a total node-count target, which
//! tunes the per-cluster worker draw — to scale it up to the paper's
//! shape (thread count comes from `TANGO_THREADS` or defaults to the
//! host):
//!
//! ```sh
//! cargo run --release --example large_scale -- 30
//! cargo run --release --example large_scale -- 104 1000
//! ```
//!
//! With `--json` the comparison table is replaced by bench-style stamped
//! JSON on stdout — the same `{threads, git_rev, samples[]}` shape the
//! bench binaries commit, with one timed sample per system and
//! `rate_per_sec` counting completed requests per wall-clock second —
//! so scripted sweeps can archive example runs next to bench results:
//!
//! ```sh
//! cargo run --release --example large_scale -- 30 --json > large_scale.json
//! ```

use tango_repro::tango::runtime::{run_parallel, RunSpec};
use tango_repro::tango::TangoConfig;
use tango_repro::types::SimTime;

/// Resolve the revision to stamp JSON output with, mirroring the bench
/// harness: `TANGO_GIT_REV` first, then `git rev-parse --short HEAD`,
/// and a panic (not a placeholder) when neither resolves.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("TANGO_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            panic!(
                "JSON stamping could not resolve a git revision: run inside a \
                 git checkout or set TANGO_GIT_REV=<rev>"
            )
        })
}

fn main() {
    let mut json = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let mut args = positional.into_iter();
    let clusters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let node_target: Option<usize> = args.next().and_then(|a| a.parse().ok());
    let duration = SimTime::from_secs(20);
    let mut base = TangoConfig::dual_space(clusters);
    if let Some(nodes) = node_target {
        // aim the uniform worker draw's mean at (nodes/clusters - 1)
        // workers per cluster, ±4 for the paper's heterogeneity
        let mean = (nodes / clusters.max(1)).saturating_sub(1).max(1);
        base.workers_per_cluster = (mean.saturating_sub(4).max(1), mean + 4);
    }

    let specs = vec![
        RunSpec {
            label: "Tango".into(),
            config: base.clone().as_tango(),
            duration,
        },
        RunSpec {
            label: "CERES".into(),
            config: base.clone().as_ceres(),
            duration,
        },
        RunSpec {
            label: "DSACO".into(),
            config: base.as_dsaco(),
            duration,
        },
    ];

    if json {
        // One timed sample per system, emitted in the bench harness's
        // stamped shape (hand-rolled: serde is unavailable offline).
        let threads = std::env::var("TANGO_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        let rev = git_rev();
        let mut samples = Vec::new();
        for spec in specs {
            let label = spec.label.clone();
            let start = std::time::Instant::now();
            let report = run_parallel(vec![spec]).remove(0);
            let wall = start.elapsed();
            let completed = report.lc_completed + report.be_throughput;
            let rate = completed as f64 / wall.as_secs_f64().max(1e-9);
            samples.push(format!(
                "{{\"scenario\": \"large_scale/{}/{}\", \"wall_ns\": {}, \"rate_per_sec\": {:.2}}}",
                label,
                clusters,
                wall.as_nanos(),
                rate
            ));
        }
        let mut out =
            format!("{{\n  \"threads\": {threads},\n  \"git_rev\": \"{rev}\",\n  \"samples\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                s,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
        return;
    }

    match node_target {
        Some(n) => {
            println!("comparing on {clusters} clusters (~{n} nodes), {duration} simulated ...")
        }
        None => println!("comparing on {clusters} clusters, {duration} simulated ..."),
    }
    let reports = run_parallel(specs);

    println!("\nsystem  utilization  qos-satisfaction  be-throughput  abandoned  req/sim-min");
    let sim_minutes = duration.as_micros() as f64 / 60_000_000.0;
    for r in &reports {
        // end-of-run throughput: completed requests (LC + BE) per
        // simulated minute — the ROADMAP's scale yardstick
        let done_per_min = (r.lc_completed + r.be_throughput) as f64 / sim_minutes;
        println!(
            "{:<6}  {:>11.3}  {:>16.3}  {:>13}  {:>9}  {:>11.0}",
            r.label,
            r.mean_utilization,
            r.qos_satisfaction,
            r.be_throughput,
            r.abandoned,
            done_per_min
        );
    }

    let tango = &reports[0];
    let ceres = &reports[1];
    let dsaco = &reports[2];
    println!(
        "\nTango vs CERES:  utilization {:+.1}%,  throughput {:+.1}%",
        (tango.mean_utilization / ceres.mean_utilization.max(1e-9) - 1.0) * 100.0,
        (tango.be_throughput as f64 / ceres.be_throughput.max(1) as f64 - 1.0) * 100.0,
    );
    println!(
        "Tango vs DSACO:  QoS satisfaction {:+.1}%",
        (tango.qos_satisfaction / dsaco.qos_satisfaction.max(1e-9) - 1.0) * 100.0,
    );
    println!(
        "Tango arrivals: {} LC in {:.2} sim-min ({:.0} arrivals/sim-min)",
        tango.lc_arrived,
        sim_minutes,
        tango.lc_arrived as f64 / sim_minutes
    );
}

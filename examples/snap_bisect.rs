//! Record/replay divergence bisection over per-tick snapshots.
//!
//! Two runs of the same configuration must be bit-identical — that is the
//! determinism contract every scheduler and substrate in this repo keeps.
//! When the contract breaks (a nondeterministic map iteration, an
//! unseeded RNG, a thread-order dependence), the final `RunReport::digest`
//! tells you *that* the runs diverged but not *when*. This tool finds the
//! first tick at which they diverge:
//!
//! 1. **Record**: run scenario A, snapshotting at every sync tick, and
//!    keep an FNV-1a digest of each snapshot's bytes.
//! 2. **Replay**: run B — the same config at a different thread count —
//!    the same way, then restore B's mid-run checkpoint and re-snapshot
//!    tick by tick from there (the record/replay path).
//! 3. **Bisect**: compare the per-tick digest streams and report the
//!    first tick where they disagree, or confirm bit-identity.
//!
//! Usage: `cargo run --release --example snap_bisect [calm|churn] [threads_b]`
//! (defaults: `calm`, `4`; run A always uses 1 thread).

use tango::{
    BePolicy, Checkpoint, CheckpointPolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef,
    TangoConfig,
};
use tango_snap::fnv1a;
use tango_types::{ClusterId, SimTime};

const DURATION: SimTime = SimTime::from_secs(5);

fn scenario(name: &str) -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    if name == "churn" {
        cfg.faults = FaultPlan::new()
            .crash_for(
                SimTime::from_millis(900),
                NodeRef::Worker {
                    cluster: ClusterId(0),
                    index: 1,
                },
                SimTime::from_millis(1_400),
            )
            .degrade_link_for(
                SimTime::from_millis(1_200),
                ClusterId(0),
                ClusterId(1),
                3.0,
                4.0,
                SimTime::from_millis(1_400),
            );
    }
    cfg
}

/// Run with a snapshot at every sync tick; return the final report digest
/// and the per-tick checkpoints.
fn record(cfg: TangoConfig, label: &str) -> (u64, Vec<Checkpoint>) {
    let policy = CheckpointPolicy {
        every_n_ticks: 1,
        keep_last_k: 0,
    };
    let (report, checkpoints) = EdgeCloudSystem::new(cfg)
        .run_checkpointed(DURATION, label, policy)
        .expect("scenario policies are snapshottable");
    (report.digest(), checkpoints)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "calm".to_string());
    let threads_b: usize = args
        .next()
        .map(|s| s.parse().expect("threads_b must be a number"))
        .unwrap_or(4);

    let mut cfg_a = scenario(&name);
    cfg_a.parallelism = Some(1);
    let mut cfg_b = scenario(&name);
    cfg_b.parallelism = Some(threads_b);

    println!("scenario {name}: run A at 1 thread, run B at {threads_b} threads");
    let (digest_a, ticks_a) = record(cfg_a, "bisect-a");
    let (digest_b, ticks_b) = record(cfg_b.clone(), "bisect-b");
    println!(
        "run A final digest: {digest_a:#018x} ({} ticks)",
        ticks_a.len()
    );
    println!(
        "run B final digest: {digest_b:#018x} ({} ticks)",
        ticks_b.len()
    );

    // bisect: first tick whose snapshot bytes disagree
    let mut diverged_at = None;
    for (a, b) in ticks_a.iter().zip(&ticks_b) {
        assert_eq!(a.at, b.at, "tick grids must line up");
        if fnv1a(&a.bytes) != fnv1a(&b.bytes) {
            diverged_at = Some(a.at);
            break;
        }
    }
    match diverged_at {
        Some(at) => {
            println!("state diverges at tick t={at} — the regression is in the events of the tick ending there");
            std::process::exit(1);
        }
        None => println!(
            "all {} per-tick snapshots are bit-identical across thread counts",
            ticks_a.len().min(ticks_b.len())
        ),
    }

    // replay: restore B's mid-run checkpoint and re-snapshot tick by
    // tick; every digest must rejoin the recorded stream
    let mid = ticks_b.len() / 2;
    let mut resumed =
        EdgeCloudSystem::restore(cfg_b, &ticks_b[mid].bytes).expect("restore mid-run checkpoint");
    let mut replay_divergence = None;
    for original in &ticks_b[mid + 1..] {
        resumed.run_to(original.at);
        let replayed = resumed.snapshot().expect("re-snapshot");
        if fnv1a(&replayed) != fnv1a(&original.bytes) {
            replay_divergence = Some(original.at);
            break;
        }
    }
    match replay_divergence {
        Some(at) => {
            println!("replay diverges from the recording at tick t={at}");
            std::process::exit(1);
        }
        None => {
            let final_digest = resumed.finish("bisect-b").digest();
            println!(
                "replay from t={} is bit-identical through every remaining tick; \
                 final digest {final_digest:#018x} matches: {}",
                ticks_b[mid].at,
                final_digest == digest_b
            );
        }
    }
}

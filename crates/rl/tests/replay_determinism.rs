//! Property tests for the replay ring: overwrite order and uniform
//! sampling must be pure functions of (push sequence, seed) — in
//! particular, invariant to the worker-pool size, since training
//! determinism at any `TANGO_THREADS` hinges on it.

use tango_rl::replay::{ReplayBuffer, Stored};
use tango_simcore::SimRng;

use tango_gnn::FeatureGraph;
use tango_nn::Matrix;

fn stored(tag: f32) -> Stored {
    let g = FeatureGraph::new(Matrix::zeros(2, 3));
    Stored {
        graph: g.clone(),
        mask: vec![true, false],
        action: 1,
        reward: tag,
        next_graph: g,
        next_mask: vec![false, true],
        done: (tag as usize).is_multiple_of(7),
    }
}

/// Drive a buffer through `pushes` inserts and `draws` samples, returning
/// the slot layout and the sampled reward tags.
fn run_trace(capacity: usize, pushes: usize, draws: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut buf: ReplayBuffer<Stored> = ReplayBuffer::new(capacity);
    let mut rng = SimRng::new(seed);
    let mut sampled = Vec::new();
    for i in 0..pushes {
        buf.push(stored(i as f32));
        if buf.len() >= 4 && i % 5 == 4 {
            sampled.extend(buf.sample(draws, &mut rng).iter().map(|s| s.reward));
        }
    }
    let slots = buf.slots().iter().map(|s| s.reward).collect();
    (slots, sampled)
}

/// The ring keeps exactly the `capacity` newest items, overwriting the
/// oldest slot first — checked for a spread of capacities and lengths.
#[test]
fn ring_overwrite_order_matches_model() {
    for capacity in [1usize, 2, 3, 5, 8, 13] {
        for pushes in [0usize, 1, capacity, capacity + 1, 3 * capacity + 2] {
            let mut buf: ReplayBuffer<Stored> = ReplayBuffer::new(capacity);
            for i in 0..pushes {
                buf.push(stored(i as f32));
            }
            assert_eq!(buf.len(), pushes.min(capacity));
            assert_eq!(buf.is_full(), pushes >= capacity);
            let mut tags: Vec<f32> = buf.slots().iter().map(|s| s.reward).collect();
            tags.sort_by(f32::total_cmp);
            // model: the newest min(pushes, capacity) tags survive
            let expect: Vec<f32> = (pushes.saturating_sub(capacity)..pushes)
                .map(|i| i as f32)
                .collect();
            assert_eq!(tags, expect, "capacity {capacity}, pushes {pushes}");
        }
    }
}

/// Identical (push sequence, seed) ⇒ identical slots and samples, no
/// matter how many worker threads the global pool runs — the sampler
/// draws only from its own `SimRng`.
#[test]
fn sampling_is_deterministic_across_thread_counts() {
    let reference = run_trace(16, 60, 6, 2026);
    assert!(!reference.1.is_empty(), "trace must actually sample");
    for threads in [1usize, 4] {
        tango_par::set_threads(threads);
        assert_eq!(tango_par::threads(), threads);
        for _ in 0..3 {
            assert_eq!(
                run_trace(16, 60, 6, 2026),
                reference,
                "trace diverged at {threads} threads"
            );
        }
    }
    // different seed must actually change the sample stream
    assert_ne!(run_trace(16, 60, 6, 2027).1, reference.1);
}

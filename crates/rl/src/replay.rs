//! A bounded uniform replay buffer for off-policy learners (SAC).

use tango_gnn::FeatureGraph;
use tango_simcore::SimRng;

/// One stored transition.
#[derive(Clone)]
pub struct Stored {
    /// State at decision time.
    pub graph: FeatureGraph,
    /// Validity mask at decision time.
    pub mask: Vec<bool>,
    /// Action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Next state.
    pub next_graph: FeatureGraph,
    /// Next validity mask.
    pub next_mask: Vec<bool>,
    /// Episode terminated after this transition.
    pub done: bool,
}

/// Fixed-capacity ring buffer with uniform sampling.
pub struct ReplayBuffer {
    items: Vec<Stored>,
    capacity: usize,
    write: usize,
}

impl ReplayBuffer {
    /// Buffer holding up to `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity,
            write: 0,
        }
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append, overwriting the oldest entry when full.
    pub fn push(&mut self, t: Stored) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write] = t;
            self.write = (self.write + 1) % self.capacity;
        }
    }

    /// Sample `n` transitions uniformly with replacement (clones).
    pub fn sample(&self, n: usize, rng: &mut SimRng) -> Vec<Stored> {
        (0..n)
            .filter_map(|_| {
                if self.items.is_empty() {
                    None
                } else {
                    let i = rng.next_below(self.items.len() as u64) as usize;
                    Some(self.items[i].clone())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nn::Matrix;

    fn t(r: f32) -> Stored {
        let g = FeatureGraph::new(Matrix::zeros(2, 2));
        Stored {
            graph: g.clone(),
            mask: vec![true, true],
            action: 0,
            reward: r,
            next_graph: g,
            next_mask: vec![true, true],
            done: false,
        }
    }

    #[test]
    fn push_caps_at_capacity_and_overwrites_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f32> = b.items.iter().map(|s| s.reward).collect();
        // ring: slots overwritten in order; 0 and 1 replaced by 3 and 4
        assert_eq!(rewards, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn sampling_returns_requested_count() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..4 {
            b.push(t(i as f32));
        }
        let mut rng = SimRng::new(1);
        assert_eq!(b.sample(7, &mut rng).len(), 7);
        let empty = ReplayBuffer::new(5);
        assert!(empty.sample(3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}

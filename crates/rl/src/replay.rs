//! A bounded uniform replay buffer for off-policy learners (SAC, TD3).

use tango_gnn::FeatureGraph;
use tango_simcore::SimRng;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};

/// One stored transition (discrete action).
#[derive(Clone)]
pub struct Stored {
    /// State at decision time.
    pub graph: FeatureGraph,
    /// Validity mask at decision time.
    pub mask: Vec<bool>,
    /// Action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Next state.
    pub next_graph: FeatureGraph,
    /// Next validity mask.
    pub next_mask: Vec<bool>,
    /// Episode terminated after this transition.
    pub done: bool,
}

impl SnapEncode for Stored {
    fn encode(&self, w: &mut SnapWriter) {
        self.graph.encode(w);
        self.mask.encode(w);
        self.action.encode(w);
        w.put_f32(self.reward);
        self.next_graph.encode(w);
        self.next_mask.encode(w);
        w.put_bool(self.done);
    }
}

impl SnapDecode for Stored {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Stored {
            graph: FeatureGraph::decode(r)?,
            mask: Vec::<bool>::decode(r)?,
            action: usize::decode(r)?,
            reward: r.f32()?,
            next_graph: FeatureGraph::decode(r)?,
            next_mask: Vec::<bool>::decode(r)?,
            done: r.bool()?,
        })
    }
}

/// Fixed-capacity ring buffer with uniform sampling.
///
/// Generic over the transition type: SAC stores discrete-action
/// [`Stored`] entries (the default), TD3 stores continuous-action
/// transitions.
pub struct ReplayBuffer<T = Stored> {
    items: Vec<T>,
    capacity: usize,
    /// Next slot to overwrite once the ring is full. Stays 0 while
    /// filling (appends go to the tail), then walks the ring.
    write: usize,
}

impl<T> ReplayBuffer<T> {
    /// Buffer holding up to `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity,
            write: 0,
        }
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` once the ring has reached capacity — every further push
    /// overwrites the oldest entry.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Append, overwriting the oldest entry when full.
    pub fn push(&mut self, t: T) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write] = t;
            self.write = (self.write + 1) % self.capacity;
        }
    }

    /// Stored entries in slot order (ring layout, not insertion order) —
    /// for tests and diagnostics.
    pub fn slots(&self) -> &[T] {
        &self.items
    }
}

impl<T: Clone> ReplayBuffer<T> {
    /// Sample `n` transitions uniformly with replacement (clones).
    pub fn sample(&self, n: usize, rng: &mut SimRng) -> Vec<T> {
        (0..n)
            .filter_map(|_| {
                if self.items.is_empty() {
                    None
                } else {
                    let i = rng.next_below(self.items.len() as u64) as usize;
                    Some(self.items[i].clone())
                }
            })
            .collect()
    }
}

impl<T: SnapEncode> ReplayBuffer<T> {
    /// Write the ring contents and the overwrite cursor. Capacity is
    /// construction-time configuration and is not encoded.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        self.write.encode(w);
        self.items.encode(w);
    }
}

impl<T: SnapDecode> ReplayBuffer<T> {
    /// Overwrite the ring from a [`ReplayBuffer::snap_write`] encoding.
    /// The target's capacity must admit the stored contents.
    pub fn snap_read(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let write = usize::decode(r)?;
        let items = Vec::<T>::decode(r)?;
        let cursor_ok = if items.len() < self.capacity {
            write == 0
        } else {
            items.len() == self.capacity && write < self.capacity
        };
        if items.len() > self.capacity || !cursor_ok {
            return Err(SnapError::Corrupt("replay ring cursor/occupancy"));
        }
        self.items = items;
        self.write = write;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nn::Matrix;

    fn t(r: f32) -> Stored {
        let g = FeatureGraph::new(Matrix::zeros(2, 2));
        Stored {
            graph: g.clone(),
            mask: vec![true, true],
            action: 0,
            reward: r,
            next_graph: g,
            next_mask: vec![true, true],
            done: false,
        }
    }

    #[test]
    fn push_caps_at_capacity_and_overwrites_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f32> = b.items.iter().map(|s| s.reward).collect();
        // ring: slots overwritten in order; 0 and 1 replaced by 3 and 4
        assert_eq!(rewards, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn sampling_returns_requested_count() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..4 {
            b.push(t(i as f32));
        }
        let mut rng = SimRng::new(1);
        assert_eq!(b.sample(7, &mut rng).len(), 7);
        let empty: ReplayBuffer<Stored> = ReplayBuffer::new(5);
        assert!(empty.sample(3, &mut rng).is_empty());
    }

    #[test]
    fn fullness_is_reported() {
        let mut b = ReplayBuffer::new(2);
        assert!(!b.is_full() && b.is_empty());
        b.push(t(0.0));
        assert!(!b.is_full());
        b.push(t(1.0));
        assert!(b.is_full());
        b.push(t(2.0));
        assert!(b.is_full());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn snapshot_round_trips_ring_cursor() {
        let mut b: ReplayBuffer<Stored> = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        let mut w = SnapWriter::new();
        b.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut c: ReplayBuffer<Stored> = ReplayBuffer::new(3);
        c.snap_read(&mut SnapReader::new(&bytes)).unwrap();
        // restored ring must continue overwriting exactly where the
        // original would
        b.push(t(9.0));
        c.push(t(9.0));
        let rb: Vec<f32> = b.items.iter().map(|s| s.reward).collect();
        let rc: Vec<f32> = c.items.iter().map(|s| s.reward).collect();
        assert_eq!(rb, rc);
        // and a smaller-capacity target rejects the contents
        let mut small: ReplayBuffer<Stored> = ReplayBuffer::new(2);
        assert!(small.snap_read(&mut SnapReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<Stored> = ReplayBuffer::new(0);
    }
}

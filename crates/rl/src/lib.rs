//! Deep-reinforcement-learning agents for BE request scheduling.
//!
//! * [`a2c`] — the Advantage Actor-Critic learner DCG-BE uses (§5.3.2):
//!   a GNN encoder feeds a per-node actor head (shared MLP producing one
//!   logit per candidate node, masked by the policy-context filter c_t)
//!   and a pooled critic head. Trained on-policy with n-step returns.
//! * [`sac`] — a discrete Soft Actor-Critic agent, the "GNN-SAC" baseline
//!   of Fig. 11(c): twin Q heads, target networks with Polyak averaging,
//!   entropy-regularized policy updates from a replay buffer.
//! * [`td3`] — a Twin-Delayed DDPG learner with *continuous* actions:
//!   per-candidate CPU/memory grant fractions, projected onto the
//!   discrete candidate set by a critic argmax. Used by the `Td3Be`
//!   scheduler backend and the `tango-train` harness.
//!
//! The discrete agents share the same action interface: given a
//! [`FeatureGraph`] over candidate nodes and a validity mask, return the
//! node to schedule the request on. Gradients flow through the
//! actor/critic/Q heads *and* the graph encoder. All agents serialize
//! their complete learner state (weights, Adam moments, RNG streams,
//! replay rings) through tango-snap for bit-identical resume.

pub mod a2c;
pub mod replay;
pub mod sac;
pub mod td3;

pub use a2c::{A2cAgent, A2cConfig};
pub use replay::ReplayBuffer;
pub use sac::{SacAgent, SacConfig};
pub use td3::{Td3Agent, Td3Config, Td3Stored, ACTION_DIM};

use tango_gnn::FeatureGraph;

/// Sample (graph, mask) → action interface shared by the agents, so the
/// scheduler can swap learners.
pub trait Agent {
    /// Choose a node for the current request. `None` when the mask has no
    /// valid entry.
    fn act(&mut self, graph: &FeatureGraph, mask: &[bool]) -> Option<usize>;

    /// Report the reward for the *previous* `act` and the state that
    /// followed it; the agent trains itself when it has enough samples.
    fn observe(&mut self, reward: f32, next_graph: &FeatureGraph, next_mask: &[bool], done: bool);
}

/// Masked, numerically-stable softmax over logits; invalid entries get
/// probability zero. Returns `None` when no entry is valid.
pub(crate) fn masked_softmax(logits: &[f32], mask: &[bool]) -> Option<Vec<f32>> {
    debug_assert_eq!(logits.len(), mask.len());
    let mut max = f32::NEG_INFINITY;
    for (i, &l) in logits.iter().enumerate() {
        if mask[i] && l > max {
            max = l;
        }
    }
    if max == f32::NEG_INFINITY {
        return None;
    }
    let mut probs = vec![0.0f32; logits.len()];
    let mut sum = 0.0f32;
    for i in 0..logits.len() {
        if mask[i] {
            let e = (logits[i] - max).exp();
            probs[i] = e;
            sum += e;
        }
    }
    if sum <= 0.0 {
        return None;
    }
    for p in &mut probs {
        *p /= sum;
    }
    Some(probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_softmax_zeroes_invalid() {
        let p = masked_softmax(&[1.0, 2.0, 3.0], &[true, false, true]).unwrap();
        assert_eq!(p[1], 0.0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[0]);
    }

    #[test]
    fn masked_softmax_all_invalid_is_none() {
        assert_eq!(masked_softmax(&[1.0, 2.0], &[false, false]), None);
    }

    #[test]
    fn masked_softmax_handles_extreme_logits() {
        let p = masked_softmax(&[1e30, -1e30, 0.0], &[true, true, true]).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert_eq!(p[1], 0.0);
    }
}

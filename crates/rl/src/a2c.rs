//! Advantage Actor-Critic over graph embeddings — the learning core of
//! DCG-BE (§5.3.2).
//!
//! Architecture (paper): the GNN embedding is the actor's input; the actor
//! emits one logit per candidate node (a shared 256/128/32 ReLU head
//! applied to each node embedding), the policy-context filter masks
//! infeasible nodes (`p̂(s) = p(s) ∗ c_t`), and the critic maps the mean-
//! pooled embedding to a state value. Adam, lr = 2e-4. Training fires every
//! `train_interval` collected samples, per Alg. 3 line 10.

use crate::masked_softmax;
use crate::Agent;
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::{Matrix, Mlp};
use tango_simcore::SimRng;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};

/// Hyper-parameters for [`A2cAgent`].
#[derive(Debug, Clone)]
pub struct A2cConfig {
    /// GNN structure to encode with (paper: GraphSAGE, p = 3).
    pub encoder_kind: EncoderKind,
    /// Node feature dimensionality (paper's state has 7 node features).
    pub feature_dim: usize,
    /// GNN hidden width.
    pub gnn_hidden: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Learning rate (actor, critic — Adam) and encoder (SGD).
    pub lr: f32,
    /// Train after this many collected samples (Alg. 3 line 10).
    pub train_interval: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            encoder_kind: EncoderKind::Sage { p: 3 },
            feature_dim: 7,
            gnn_hidden: 32,
            embed_dim: 16,
            gamma: 0.95,
            entropy_coef: 0.01,
            lr: 2e-4,
            train_interval: 32,
            seed: 17,
        }
    }
}

struct Transition {
    graph: FeatureGraph,
    mask: Vec<bool>,
    action: usize,
    reward: f32,
    done: bool,
}

impl SnapEncode for Transition {
    fn encode(&self, w: &mut SnapWriter) {
        self.graph.encode(w);
        self.mask.encode(w);
        self.action.encode(w);
        w.put_f32(self.reward);
        w.put_bool(self.done);
    }
}

impl SnapDecode for Transition {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Transition {
            graph: FeatureGraph::decode(r)?,
            mask: Vec::<bool>::decode(r)?,
            action: usize::decode(r)?,
            reward: r.f32()?,
            done: r.bool()?,
        })
    }
}

/// The A2C agent.
pub struct A2cAgent {
    cfg: A2cConfig,
    encoder: GnnEncoder,
    actor: Mlp,
    critic: Mlp,
    rng: SimRng,
    buffer: Vec<Transition>,
    /// The (graph, mask, action) of the last `act`, awaiting its reward.
    pending: Option<(FeatureGraph, Vec<bool>, usize)>,
    /// Diagnostics: number of completed training rounds.
    pub train_rounds: usize,
}

impl A2cAgent {
    /// Build an agent from config.
    pub fn new(cfg: A2cConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let encoder = GnnEncoder::paper_shape(
            cfg.encoder_kind,
            cfg.feature_dim,
            cfg.gnn_hidden,
            cfg.embed_dim,
            rng.next_u64(),
        );
        let mut head_rng = rng.fork();
        let actor = Mlp::new(&[cfg.embed_dim, 256, 128, 32, 1], cfg.lr, &mut head_rng);
        let critic = Mlp::new(&[cfg.embed_dim, 256, 128, 32, 1], cfg.lr, &mut head_rng);
        A2cAgent {
            cfg,
            encoder,
            actor,
            critic,
            rng,
            buffer: Vec::new(),
            pending: None,
            train_rounds: 0,
        }
    }

    /// Serialize the complete learner state — encoder, actor/critic
    /// heads (with Adam moments), the RNG stream, the on-policy buffer
    /// and the pending decision — so a restored agent continues
    /// bit-identically.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.encoder.snap_write(&mut w);
        self.actor.snap_write(&mut w);
        self.critic.snap_write(&mut w);
        for s in self.rng.state() {
            w.put_u64(s);
        }
        self.buffer.encode(&mut w);
        self.pending.encode(&mut w);
        self.train_rounds.encode(&mut w);
        w.into_bytes()
    }

    /// Restore state captured by [`A2cAgent::snapshot_bytes`] into an
    /// agent built from the same config.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.encoder.snap_read(&mut r)?;
        self.actor.snap_read(&mut r)?;
        self.critic.snap_read(&mut r)?;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.buffer = Vec::decode(&mut r)?;
        self.pending = Option::decode(&mut r)?;
        self.train_rounds = usize::decode(&mut r)?;
        r.expect_end("a2c agent trailing bytes")
    }

    /// Policy probabilities for a state (inference; exposed for tests and
    /// greedy evaluation).
    pub fn policy(&mut self, graph: &FeatureGraph, mask: &[bool]) -> Option<Vec<f32>> {
        let emb = self.encoder.forward(graph);
        let logits = self.actor.forward_inference(&emb);
        let flat: Vec<f32> = (0..logits.rows).map(|r| logits.get(r, 0)).collect();
        masked_softmax(&flat, mask)
    }

    /// State value estimate (inference).
    pub fn value(&mut self, graph: &FeatureGraph) -> f32 {
        let emb = self.encoder.forward(graph);
        let pooled = emb.mean_rows();
        self.critic.forward_inference(&pooled).get(0, 0)
    }

    fn train(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        // bootstrap from the last state's value unless that episode ended
        let mut ret = if self.buffer.last().is_none_or(|t| t.done) {
            0.0
        } else {
            let last_graph = self.buffer.last().expect("nonempty").graph.clone();
            self.value(&last_graph)
        };
        // n-step discounted returns, computed backwards
        let mut returns = vec![0.0f32; self.buffer.len()];
        for (i, t) in self.buffer.iter().enumerate().rev() {
            if t.done {
                ret = 0.0;
            }
            ret = t.reward + self.cfg.gamma * ret;
            returns[i] = ret;
        }

        let buffer = std::mem::take(&mut self.buffer);
        for (t, &ret) in buffer.iter().zip(&returns) {
            let n = t.graph.len();
            // --- forward (training mode, caches everywhere) ---
            let emb = self.encoder.forward(&t.graph);
            let logits_m = self.actor.forward(&emb);
            let logits: Vec<f32> = (0..n).map(|r| logits_m.get(r, 0)).collect();
            let Some(probs) = masked_softmax(&logits, &t.mask) else {
                continue;
            };
            let pooled = emb.mean_rows();
            let value = self.critic.forward(&pooled).get(0, 0);
            let advantage = ret - value;

            // --- actor gradient wrt logits ---
            // d(-logπ(a)·A)/dz_i = A·(π_i − 1{i=a}) on valid entries.
            // entropy bonus: d(-c_e·H)/dz_i = c_e·π_i(logπ_i + H)
            let entropy: f32 = probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum();
            let mut dlogits = Matrix::zeros(n, 1);
            for (i, &p) in probs.iter().enumerate() {
                if !t.mask[i] {
                    continue;
                }
                let onehot = if i == t.action { 1.0 } else { 0.0 };
                let mut g = advantage * (p - onehot);
                if p > 0.0 {
                    g += self.cfg.entropy_coef * p * (p.ln() + entropy);
                }
                dlogits.set(i, 0, g);
            }
            let d_emb_actor = self.actor.backward(&dlogits);

            // --- critic gradient: L = (V − R)² → dL/dV = 2(V − R) ---
            let dv = Matrix::from_vec(1, 1, vec![2.0 * (value - ret)]).expect("1x1");
            let d_pooled = self.critic.backward(&dv);
            // distribute pooled gradient back to every node embedding
            let mut d_emb = d_emb_actor;
            let inv_n = 1.0 / n as f32;
            for r in 0..n {
                for c in 0..d_pooled.cols {
                    let v = d_emb.get(r, c) + d_pooled.get(0, c) * inv_n;
                    d_emb.set(r, c, v);
                }
            }
            self.encoder.backward(&d_emb);
        }
        // one optimizer step over the accumulated batch gradients
        self.actor.step();
        self.critic.step();
        self.encoder.step(self.cfg.lr);
        self.train_rounds += 1;
    }
}

impl Agent for A2cAgent {
    fn act(&mut self, graph: &FeatureGraph, mask: &[bool]) -> Option<usize> {
        let probs = self.policy(graph, mask)?;
        let weights: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
        let action = self.rng.weighted_index(&weights)?;
        self.pending = Some((graph.clone(), mask.to_vec(), action));
        Some(action)
    }

    fn observe(
        &mut self,
        reward: f32,
        _next_graph: &FeatureGraph,
        _next_mask: &[bool],
        done: bool,
    ) {
        if let Some((graph, mask, action)) = self.pending.take() {
            self.buffer.push(Transition {
                graph,
                mask,
                action,
                reward,
                done,
            });
            if self.buffer.len() >= self.cfg.train_interval {
                self.train();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node graph where node features directly indicate reward: the
    /// agent should learn to pick the high-feature node.
    fn bandit_graph() -> FeatureGraph {
        let f = Matrix::from_vec(
            4,
            7,
            (0..4)
                .flat_map(|i| {
                    let mut row = vec![0.1f32; 7];
                    row[0] = i as f32 / 3.0; // "quality" feature
                    row
                })
                .collect(),
        )
        .unwrap();
        let mut g = FeatureGraph::new(f);
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn acts_within_mask() {
        let mut agent = A2cAgent::new(A2cConfig::default());
        let g = bandit_graph();
        let mask = vec![false, true, false, true];
        for _ in 0..50 {
            let a = agent.act(&g, &mask).unwrap();
            assert!(a == 1 || a == 3);
            agent.observe(0.0, &g, &mask, false);
        }
    }

    #[test]
    fn no_valid_action_returns_none() {
        let mut agent = A2cAgent::new(A2cConfig::default());
        let g = bandit_graph();
        assert_eq!(agent.act(&g, &[false; 4]), None);
    }

    #[test]
    fn learns_the_rewarding_arm() {
        let cfg = A2cConfig {
            lr: 5e-3,
            train_interval: 16,
            gamma: 0.0, // pure bandit
            seed: 3,
            ..A2cConfig::default()
        };
        let mut agent = A2cAgent::new(cfg);
        let g = bandit_graph();
        let mask = vec![true; 4];
        for _ in 0..600 {
            let a = agent.act(&g, &mask).unwrap();
            // node 3 pays 1.0, others pay 0
            let r = if a == 3 { 1.0 } else { 0.0 };
            agent.observe(r, &g, &mask, true);
        }
        let probs = agent.policy(&g, &mask).unwrap();
        assert!(
            probs[3] > 0.5,
            "policy did not concentrate: {probs:?} after {} rounds",
            agent.train_rounds
        );
    }

    #[test]
    fn training_fires_at_interval() {
        let cfg = A2cConfig {
            train_interval: 8,
            ..A2cConfig::default()
        };
        let mut agent = A2cAgent::new(cfg);
        let g = bandit_graph();
        let mask = vec![true; 4];
        for i in 0..16 {
            agent.act(&g, &mask).unwrap();
            agent.observe(0.5, &g, &mask, false);
            if i < 7 {
                assert_eq!(agent.train_rounds, 0);
            }
        }
        assert_eq!(agent.train_rounds, 2);
    }

    #[test]
    fn value_estimates_move_toward_returns() {
        let cfg = A2cConfig {
            lr: 5e-3,
            train_interval: 8,
            gamma: 0.0,
            ..A2cConfig::default()
        };
        let mut agent = A2cAgent::new(cfg);
        let g = bandit_graph();
        let mask = vec![true; 4];
        let v0 = agent.value(&g);
        for _ in 0..200 {
            agent.act(&g, &mask).unwrap();
            agent.observe(1.0, &g, &mask, true);
        }
        let v1 = agent.value(&g);
        assert!(
            (v1 - 1.0).abs() < (v0 - 1.0).abs(),
            "value did not improve: {v0} -> {v1}"
        );
    }
}

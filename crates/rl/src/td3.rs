//! Twin-Delayed DDPG (TD3) with continuous per-node resource actions.
//!
//! Where DCG-BE picks a node (discrete action) and leaves sizing to
//! D-VPA, the TD3 agent emits a *continuous* action per candidate node:
//! CPU and memory fractions in `[min_frac, 1]` of the request's nominal
//! demand. The scheduler grants the chosen node the scaled demand, so
//! placement and sizing are decided jointly — the TD3-Sched direction
//! from the related-work survey, grafted onto Tango's candidate-view
//! machinery.
//!
//! The three TD3 stabilizers are all here:
//!
//! 1. **Twin critics** `Q1`, `Q2` score `[embedding ; action]` rows; TD
//!    targets use `min(Q1ᵗ, Q2ᵗ)` to damp overestimation.
//! 2. **Delayed policy updates**: the actor (and all target networks)
//!    update every `policy_delay` critic rounds.
//! 3. **Target-policy smoothing**: target actions are perturbed with
//!    clipped Gaussian noise drawn from the agent's seeded [`SimRng`],
//!    so smoothing is deterministic and checkpointable.
//!
//! Node *selection* is the argmax of `Q1` over valid candidates at the
//! actor's (exploration-noised) action — a Wolpertinger-style greedy
//! projection of the continuous policy onto the discrete candidate set.

use crate::replay::ReplayBuffer;
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::{Matrix, Mlp};
use tango_simcore::SimRng;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};

/// Per-node action dimensionality: a CPU fraction and a memory fraction.
pub const ACTION_DIM: usize = 2;

/// Hyper-parameters for [`Td3Agent`].
#[derive(Debug, Clone)]
pub struct Td3Config {
    /// GNN structure (GraphSAGE by default, same encoder as DCG-BE).
    pub encoder_kind: EncoderKind,
    /// Node feature dimensionality.
    pub feature_dim: usize,
    /// GNN hidden width.
    pub gnn_hidden: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Polyak factor τ for target updates.
    pub tau: f32,
    /// Learning rate (heads — Adam) and encoder (SGD).
    pub lr: f32,
    /// Std-dev of the exploration noise added to emitted fractions.
    pub explore_noise: f32,
    /// Std-dev of the target-policy smoothing noise.
    pub smoothing_noise: f32,
    /// Clip bound for the smoothing noise (±).
    pub noise_clip: f32,
    /// Critic rounds per actor/target update (TD3's "delayed" part).
    pub policy_delay: usize,
    /// Floor on emitted fractions — a grant never squeezes a request
    /// below this share of its nominal demand.
    pub min_frac: f32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Mini-batch size per training round.
    pub batch_size: usize,
    /// Train every this many observed transitions.
    pub train_interval: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Td3Config {
    fn default() -> Self {
        Td3Config {
            encoder_kind: EncoderKind::Sage { p: 3 },
            feature_dim: 7,
            gnn_hidden: 32,
            embed_dim: 16,
            gamma: 0.95,
            tau: 0.05,
            lr: 2e-4,
            explore_noise: 0.1,
            smoothing_noise: 0.2,
            noise_clip: 0.25,
            policy_delay: 2,
            min_frac: 0.25,
            replay_capacity: 4_096,
            batch_size: 32,
            train_interval: 32,
            seed: 47,
        }
    }
}

/// One stored continuous-action transition.
#[derive(Clone)]
pub struct Td3Stored {
    /// State at decision time.
    pub graph: FeatureGraph,
    /// Validity mask at decision time.
    pub mask: Vec<bool>,
    /// Candidate node the request was placed on.
    pub node: usize,
    /// Granted `[cpu, mem]` fractions (post-noise, post-clamp).
    pub action: [f32; ACTION_DIM],
    /// Reward received.
    pub reward: f32,
    /// Next state.
    pub next_graph: FeatureGraph,
    /// Next validity mask.
    pub next_mask: Vec<bool>,
    /// Episode terminated after this transition.
    pub done: bool,
}

impl SnapEncode for Td3Stored {
    fn encode(&self, w: &mut SnapWriter) {
        self.graph.encode(w);
        self.mask.encode(w);
        self.node.encode(w);
        for a in self.action {
            w.put_f32(a);
        }
        w.put_f32(self.reward);
        self.next_graph.encode(w);
        self.next_mask.encode(w);
        w.put_bool(self.done);
    }
}

impl SnapDecode for Td3Stored {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let graph = FeatureGraph::decode(r)?;
        let mask = Vec::<bool>::decode(r)?;
        let node = usize::decode(r)?;
        let mut action = [0.0f32; ACTION_DIM];
        for a in &mut action {
            *a = r.f32()?;
        }
        Ok(Td3Stored {
            graph,
            mask,
            node,
            action,
            reward: r.f32()?,
            next_graph: FeatureGraph::decode(r)?,
            next_mask: Vec::<bool>::decode(r)?,
            done: r.bool()?,
        })
    }
}

/// The TD3 agent.
pub struct Td3Agent {
    cfg: Td3Config,
    encoder: GnnEncoder,
    actor: Mlp,
    actor_target: Mlp,
    q1: Mlp,
    q2: Mlp,
    q1_target: Mlp,
    q2_target: Mlp,
    rng: SimRng,
    replay: ReplayBuffer<Td3Stored>,
    pending: Option<(FeatureGraph, Vec<bool>, usize, [f32; ACTION_DIM])>,
    observed: usize,
    critic_rounds: usize,
    /// Diagnostics: completed training rounds.
    pub train_rounds: usize,
}

impl Td3Agent {
    /// Build an agent from config.
    pub fn new(cfg: Td3Config) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let encoder = GnnEncoder::paper_shape(
            cfg.encoder_kind,
            cfg.feature_dim,
            cfg.gnn_hidden,
            cfg.embed_dim,
            rng.next_u64(),
        );
        let mut head_rng = rng.fork();
        let actor = Mlp::new(&[cfg.embed_dim, 64, 32, ACTION_DIM], cfg.lr, &mut head_rng);
        let critic =
            |rng: &mut SimRng| Mlp::new(&[cfg.embed_dim + ACTION_DIM, 64, 32, 1], cfg.lr, rng);
        let q1 = critic(&mut head_rng);
        let q2 = critic(&mut head_rng);
        let actor_target = actor.clone();
        let q1_target = q1.clone();
        let q2_target = q2.clone();
        Td3Agent {
            replay: ReplayBuffer::new(cfg.replay_capacity),
            cfg,
            encoder,
            actor,
            actor_target,
            q1,
            q2,
            q1_target,
            q2_target,
            rng,
            pending: None,
            observed: 0,
            critic_rounds: 0,
            train_rounds: 0,
        }
    }

    /// tanh-squash a raw actor output into `[min_frac, 1]`.
    fn squash(&self, raw: f32) -> f32 {
        let unit = 0.5 * (raw.tanh() + 1.0);
        self.cfg.min_frac + (1.0 - self.cfg.min_frac) * unit
    }

    /// Per-node actions from a head over embeddings: squashed rows of
    /// the raw `N×ACTION_DIM` output.
    fn actions_from(&self, head: &Mlp, emb: &Matrix) -> Vec<[f32; ACTION_DIM]> {
        let raw = head.forward_inference(emb);
        (0..raw.rows)
            .map(|r| {
                let mut a = [0.0f32; ACTION_DIM];
                for (d, v) in a.iter_mut().enumerate() {
                    *v = self.squash(raw.get(r, d));
                }
                a
            })
            .collect()
    }

    /// Critic scores for per-node `[embedding ; action]` rows.
    fn critic_scores(head: &Mlp, emb: &Matrix, actions: &[[f32; ACTION_DIM]]) -> Vec<f32> {
        let n = emb.rows;
        let mut data = Vec::with_capacity(n * (emb.cols + ACTION_DIM));
        for (r, action) in actions.iter().enumerate().take(n) {
            data.extend_from_slice(emb.row(r));
            data.extend_from_slice(action);
        }
        let x = Matrix::from_vec(n, emb.cols + ACTION_DIM, data).expect("critic input shape");
        let out = head.forward_inference(&x);
        (0..n).map(|r| out.get(r, 0)).collect()
    }

    /// Choose a node and its `[cpu, mem]` grant fractions. `None` when
    /// the mask has no valid entry. Exploration noise is drawn for every
    /// node (valid or not) so the RNG stream is mask-independent.
    pub fn act(
        &mut self,
        graph: &FeatureGraph,
        mask: &[bool],
    ) -> Option<(usize, [f32; ACTION_DIM])> {
        debug_assert_eq!(graph.len(), mask.len());
        if !mask.iter().any(|&m| m) {
            return None;
        }
        let emb = self.encoder.forward(graph);
        let mut actions = self.actions_from(&self.actor, &emb);
        let (lo, hi) = (self.cfg.min_frac, 1.0);
        for a in actions.iter_mut() {
            for v in a.iter_mut() {
                let noise = self.rng.standard_normal() as f32 * self.cfg.explore_noise;
                *v = (*v + noise).clamp(lo, hi);
            }
        }
        let scores = Self::critic_scores(&self.q1, &emb, &actions);
        let node = (0..mask.len())
            .filter(|&i| mask[i])
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))?;
        let action = actions[node];
        self.pending = Some((graph.clone(), mask.to_vec(), node, action));
        Some((node, action))
    }

    /// Report the reward for the previous [`Td3Agent::act`] and the
    /// state that followed it; trains every `train_interval` transitions.
    pub fn observe(
        &mut self,
        reward: f32,
        next_graph: &FeatureGraph,
        next_mask: &[bool],
        done: bool,
    ) {
        if let Some((graph, mask, node, action)) = self.pending.take() {
            self.replay.push(Td3Stored {
                graph,
                mask,
                node,
                action,
                reward,
                next_graph: next_graph.clone(),
                next_mask: next_mask.to_vec(),
                done,
            });
            self.observed += 1;
            if self.observed.is_multiple_of(self.cfg.train_interval) {
                self.train();
            }
        }
    }

    /// Smoothed target value of a next state: actions from the target
    /// actor plus clipped noise, scored by `min(Q1ᵗ, Q2ᵗ)`, maxed over
    /// valid candidates.
    fn target_value(&mut self, graph: &FeatureGraph, mask: &[bool]) -> f32 {
        if !mask.iter().any(|&m| m) {
            return 0.0;
        }
        let emb = self.encoder.forward(graph);
        let mut actions = self.actions_from(&self.actor_target, &emb);
        let (lo, hi) = (self.cfg.min_frac, 1.0);
        let clip = self.cfg.noise_clip;
        for a in actions.iter_mut() {
            for v in a.iter_mut() {
                let noise = (self.rng.standard_normal() as f32 * self.cfg.smoothing_noise)
                    .clamp(-clip, clip);
                *v = (*v + noise).clamp(lo, hi);
            }
        }
        let s1 = Self::critic_scores(&self.q1_target, &emb, &actions);
        let s2 = Self::critic_scores(&self.q2_target, &emb, &actions);
        (0..mask.len())
            .filter(|&i| mask[i])
            .map(|i| s1[i].min(s2[i]))
            .fold(f32::NEG_INFINITY, f32::max)
    }

    fn train(&mut self) {
        if self.replay.len() < self.cfg.batch_size {
            return;
        }
        let batch = self.replay.sample(self.cfg.batch_size, &mut self.rng);
        // TD targets first (they run their own encoder forwards; no
        // gradients flow through them).
        let targets: Vec<f32> = batch
            .iter()
            .map(|s| {
                if s.done {
                    s.reward
                } else {
                    s.reward + self.cfg.gamma * self.target_value(&s.next_graph, &s.next_mask)
                }
            })
            .collect();

        // --- critic round: L = (Q(s, a) − y)² for both heads ---
        for (s, &y) in batch.iter().zip(&targets) {
            let emb = self.encoder.forward(&s.graph);
            let d = emb.cols;
            let mut row = Vec::with_capacity(d + ACTION_DIM);
            row.extend_from_slice(emb.row(s.node));
            row.extend_from_slice(&s.action);
            let x = Matrix::from_vec(1, d + ACTION_DIM, row).expect("critic input");
            let q1v = self.q1.forward(&x).get(0, 0);
            let q2v = self.q2.forward(&x).get(0, 0);
            let dq1 = Matrix::from_vec(1, 1, vec![2.0 * (q1v - y)]).expect("1x1");
            let dq2 = Matrix::from_vec(1, 1, vec![2.0 * (q2v - y)]).expect("1x1");
            let dx1 = self.q1.backward(&dq1);
            let dx2 = self.q2.backward(&dq2);
            // route the embedding slice of ∂L/∂x back through the encoder
            let mut d_emb = Matrix::zeros(emb.rows, d);
            for c in 0..d {
                d_emb.set(s.node, c, dx1.get(0, c) + dx2.get(0, c));
            }
            self.encoder.backward(&d_emb);
        }
        self.q1.step();
        self.q2.step();
        self.encoder.step(self.cfg.lr);
        self.critic_rounds += 1;

        // --- delayed actor + target update ---
        if self.critic_rounds.is_multiple_of(self.cfg.policy_delay) {
            for s in &batch {
                let emb = self.encoder.forward(&s.graph);
                let d = emb.cols;
                let raw = self.actor.forward(&emb);
                // deterministic (noise-free) action at the stored node
                let mut act = [0.0f32; ACTION_DIM];
                for (k, v) in act.iter_mut().enumerate() {
                    *v = self.squash(raw.get(s.node, k));
                }
                let mut row = Vec::with_capacity(d + ACTION_DIM);
                row.extend_from_slice(emb.row(s.node));
                row.extend_from_slice(&act);
                let x = Matrix::from_vec(1, d + ACTION_DIM, row).expect("actor-critic input");
                self.q1.forward(&x);
                // ascend Q1: dL/dQ = −1, take the action slice of dL/dx
                let dq = Matrix::from_vec(1, 1, vec![-1.0]).expect("1x1");
                let dx = self.q1.backward(&dq);
                let mut d_raw = Matrix::zeros(raw.rows, ACTION_DIM);
                for k in 0..ACTION_DIM {
                    // chain through the [min_frac, 1] tanh squash
                    let t = raw.get(s.node, k).tanh();
                    let dsquash = 0.5 * (1.0 - self.cfg.min_frac) * (1.0 - t * t);
                    d_raw.set(s.node, k, dx.get(0, d + k) * dsquash);
                }
                self.actor.backward(&d_raw);
            }
            self.actor.step();
            // the critic gradients accumulated by the actor pass are a
            // by-product; discard them (encoder was not back-propped here)
            self.q1.zero_grad();
            let tau = self.cfg.tau;
            let (ac, q1c, q2c) = (self.actor.clone(), self.q1.clone(), self.q2.clone());
            self.actor_target.polyak_from(&ac, tau);
            self.q1_target.polyak_from(&q1c, tau);
            self.q2_target.polyak_from(&q2c, tau);
        }
        self.train_rounds += 1;
    }

    /// Serialize the complete learner state — encoder, all six heads
    /// (with Adam moments), the RNG stream, the replay ring, the pending
    /// decision and the update counters — so a restored agent continues
    /// bit-identically.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.encoder.snap_write(&mut w);
        self.actor.snap_write(&mut w);
        self.actor_target.snap_write(&mut w);
        self.q1.snap_write(&mut w);
        self.q2.snap_write(&mut w);
        self.q1_target.snap_write(&mut w);
        self.q2_target.snap_write(&mut w);
        for s in self.rng.state() {
            w.put_u64(s);
        }
        self.replay.snap_write(&mut w);
        match &self.pending {
            None => w.put_u8(0),
            Some((g, m, node, a)) => {
                w.put_u8(1);
                g.encode(&mut w);
                m.encode(&mut w);
                node.encode(&mut w);
                for v in a {
                    w.put_f32(*v);
                }
            }
        }
        self.observed.encode(&mut w);
        self.critic_rounds.encode(&mut w);
        self.train_rounds.encode(&mut w);
        w.into_bytes()
    }

    /// Restore state captured by [`Td3Agent::snapshot_bytes`] into an
    /// agent built from the same config.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.encoder.snap_read(&mut r)?;
        self.actor.snap_read(&mut r)?;
        self.actor_target.snap_read(&mut r)?;
        self.q1.snap_read(&mut r)?;
        self.q2.snap_read(&mut r)?;
        self.q1_target.snap_read(&mut r)?;
        self.q2_target.snap_read(&mut r)?;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.replay.snap_read(&mut r)?;
        self.pending = match r.u8()? {
            0 => None,
            1 => {
                let g = FeatureGraph::decode(&mut r)?;
                let m = Vec::<bool>::decode(&mut r)?;
                let node = usize::decode(&mut r)?;
                let mut a = [0.0f32; ACTION_DIM];
                for v in &mut a {
                    *v = r.f32()?;
                }
                Some((g, m, node, a))
            }
            _ => return Err(SnapError::Corrupt("td3 pending tag")),
        };
        self.observed = usize::decode(&mut r)?;
        self.critic_rounds = usize::decode(&mut r)?;
        self.train_rounds = usize::decode(&mut r)?;
        r.expect_end("td3 agent trailing bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit_graph() -> FeatureGraph {
        let f = Matrix::from_vec(
            3,
            7,
            (0..3)
                .flat_map(|i| {
                    let mut row = vec![0.2f32; 7];
                    row[0] = i as f32 / 2.0;
                    row
                })
                .collect(),
        )
        .unwrap();
        let mut g = FeatureGraph::new(f);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    fn tiny_cfg() -> Td3Config {
        Td3Config {
            gnn_hidden: 8,
            embed_dim: 8,
            batch_size: 8,
            train_interval: 8,
            replay_capacity: 128,
            ..Td3Config::default()
        }
    }

    #[test]
    fn actions_stay_in_range_and_respect_mask() {
        let mut agent = Td3Agent::new(tiny_cfg());
        let g = bandit_graph();
        for _ in 0..40 {
            let (node, a) = agent.act(&g, &[false, true, true]).unwrap();
            assert!(node == 1 || node == 2);
            for v in a {
                assert!((0.25..=1.0).contains(&v), "fraction out of range: {v}");
            }
            agent.observe(0.1, &g, &[false, true, true], false);
        }
        assert!(agent.act(&g, &[false; 3]).is_none());
    }

    #[test]
    fn trains_on_interval_with_delayed_policy_updates() {
        let mut agent = Td3Agent::new(tiny_cfg());
        let g = bandit_graph();
        let mask = vec![true; 3];
        for _ in 0..64 {
            agent.act(&g, &mask).unwrap();
            agent.observe(0.5, &g, &mask, false);
        }
        assert!(agent.train_rounds >= 4, "rounds: {}", agent.train_rounds);
        assert_eq!(agent.critic_rounds, agent.train_rounds);
    }

    /// The TD3 determinism contract behind checkpoint/resume: snapshot,
    /// restore into a fresh agent, drive both with identical inputs, and
    /// every subsequent decision and weight byte must match.
    #[test]
    fn snapshot_resume_is_bit_identical() {
        let mut a = Td3Agent::new(tiny_cfg());
        let g = bandit_graph();
        let mask = vec![true; 3];
        for i in 0..40 {
            a.act(&g, &mask).unwrap();
            a.observe((i % 5) as f32 * 0.2, &g, &mask, i % 10 == 9);
        }
        let snap = a.snapshot_bytes();
        let mut b = Td3Agent::new(tiny_cfg());
        b.restore_bytes(&snap).unwrap();
        assert_eq!(b.snapshot_bytes(), snap, "restore is byte-stable");
        for i in 0..24 {
            let da = a.act(&g, &mask).unwrap();
            let db = b.act(&g, &mask).unwrap();
            assert_eq!(da.0, db.0);
            assert_eq!(da.1, db.1);
            let r = (i % 3) as f32 - 1.0;
            a.observe(r, &g, &mask, false);
            b.observe(r, &g, &mask, false);
        }
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let agent = Td3Agent::new(tiny_cfg());
        let snap = agent.snapshot_bytes();
        let mut b = Td3Agent::new(tiny_cfg());
        assert!(b.restore_bytes(&snap[..snap.len() - 3]).is_err());
        let mut grown = snap.clone();
        grown.extend_from_slice(&[0, 0, 0]);
        assert!(b.restore_bytes(&grown).is_err());
    }

    /// Two-arm continuous bandit: squeezing (low fraction) pays on one
    /// node, full demand on the other. TD3 should raise its Q estimate
    /// separation — sanity that gradients flow end to end.
    #[test]
    fn critic_learns_reward_structure() {
        let cfg = Td3Config {
            lr: 3e-3,
            gamma: 0.0,
            batch_size: 16,
            train_interval: 8,
            explore_noise: 0.3,
            seed: 11,
            ..tiny_cfg()
        };
        let mut agent = Td3Agent::new(cfg);
        let g = bandit_graph();
        let mask = vec![true; 3];
        for _ in 0..400 {
            let (node, _) = agent.act(&g, &mask).unwrap();
            let r = if node == 2 { 1.0 } else { 0.0 };
            agent.observe(r, &g, &mask, true);
        }
        assert!(agent.train_rounds > 20);
        // greedy decisions should now favour the paying arm
        let mut wins = 0;
        for _ in 0..20 {
            let (node, _) = agent.act(&g, &mask).unwrap();
            agent.observe(if node == 2 { 1.0 } else { 0.0 }, &g, &mask, true);
            if node == 2 {
                wins += 1;
            }
        }
        assert!(wins >= 12, "picked the paying arm {wins}/20 times");
    }
}

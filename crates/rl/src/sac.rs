//! Discrete Soft Actor-Critic over graph embeddings — the GNN-SAC baseline
//! of Fig. 11(c).
//!
//! Twin per-node Q heads with target copies (Polyak averaging), a masked
//! softmax policy head, and a fixed entropy temperature α. The paper notes
//! GNN-SAC "has strong exploration ability \[but\] struggles to calculate
//! strategy differences" compared to DCG-BE's advantage mechanism — with a
//! fixed temperature and off-policy targets this implementation shares
//! those characteristics.

use crate::masked_softmax;
use crate::replay::{ReplayBuffer, Stored};
use crate::Agent;
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::{Matrix, Mlp};
use tango_simcore::SimRng;

/// Hyper-parameters for [`SacAgent`].
#[derive(Debug, Clone)]
pub struct SacConfig {
    /// GNN structure (GraphSAGE by default, same encoder as DCG-BE).
    pub encoder_kind: EncoderKind,
    /// Node feature dimensionality.
    pub feature_dim: usize,
    /// GNN hidden width.
    pub gnn_hidden: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Entropy temperature α (fixed).
    pub alpha: f32,
    /// Polyak factor τ for target updates.
    pub tau: f32,
    /// Learning rate.
    pub lr: f32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Mini-batch size per training round.
    pub batch_size: usize,
    /// Train every this many observed transitions.
    pub train_interval: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SacConfig {
    fn default() -> Self {
        SacConfig {
            encoder_kind: EncoderKind::Sage { p: 3 },
            feature_dim: 7,
            gnn_hidden: 32,
            embed_dim: 16,
            gamma: 0.95,
            alpha: 0.1,
            tau: 0.05,
            lr: 2e-4,
            replay_capacity: 4_096,
            batch_size: 32,
            train_interval: 32,
            seed: 23,
        }
    }
}

/// The discrete SAC agent.
pub struct SacAgent {
    cfg: SacConfig,
    encoder: GnnEncoder,
    policy: Mlp,
    q1: Mlp,
    q2: Mlp,
    q1_target: Mlp,
    q2_target: Mlp,
    rng: SimRng,
    replay: ReplayBuffer,
    pending: Option<(FeatureGraph, Vec<bool>, usize)>,
    observed: usize,
    /// Diagnostics: completed training rounds.
    pub train_rounds: usize,
}

impl SacAgent {
    /// Build an agent from config.
    pub fn new(cfg: SacConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let encoder = GnnEncoder::paper_shape(
            cfg.encoder_kind,
            cfg.feature_dim,
            cfg.gnn_hidden,
            cfg.embed_dim,
            rng.next_u64(),
        );
        let mut head_rng = rng.fork();
        let head = |rng: &mut SimRng, lr: f32, d: usize| Mlp::new(&[d, 128, 64, 1], lr, rng);
        let policy = head(&mut head_rng, cfg.lr, cfg.embed_dim);
        let q1 = head(&mut head_rng, cfg.lr, cfg.embed_dim);
        let q2 = head(&mut head_rng, cfg.lr, cfg.embed_dim);
        let mut q1_target = q1.clone();
        let mut q2_target = q2.clone();
        q1_target.copy_params_from(&q1);
        q2_target.copy_params_from(&q2);
        SacAgent {
            replay: ReplayBuffer::new(cfg.replay_capacity),
            cfg,
            encoder,
            policy,
            q1,
            q2,
            q1_target,
            q2_target,
            rng,
            pending: None,
            observed: 0,
            train_rounds: 0,
        }
    }

    /// Serialize the complete learner state — encoder, all five heads
    /// (with Adam moments), the RNG stream, the replay ring and the
    /// pending decision — so a restored agent continues bit-identically.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        use tango_snap::{SnapEncode, SnapWriter};
        let mut w = SnapWriter::new();
        self.encoder.snap_write(&mut w);
        self.policy.snap_write(&mut w);
        self.q1.snap_write(&mut w);
        self.q2.snap_write(&mut w);
        self.q1_target.snap_write(&mut w);
        self.q2_target.snap_write(&mut w);
        for s in self.rng.state() {
            w.put_u64(s);
        }
        self.replay.snap_write(&mut w);
        self.pending.encode(&mut w);
        self.observed.encode(&mut w);
        self.train_rounds.encode(&mut w);
        w.into_bytes()
    }

    /// Restore state captured by [`SacAgent::snapshot_bytes`] into an
    /// agent built from the same config.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapReader};
        let mut r = SnapReader::new(bytes);
        self.encoder.snap_read(&mut r)?;
        self.policy.snap_read(&mut r)?;
        self.q1.snap_read(&mut r)?;
        self.q2.snap_read(&mut r)?;
        self.q1_target.snap_read(&mut r)?;
        self.q2_target.snap_read(&mut r)?;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.replay.snap_read(&mut r)?;
        self.pending = Option::decode(&mut r)?;
        self.observed = usize::decode(&mut r)?;
        self.train_rounds = usize::decode(&mut r)?;
        r.expect_end("sac agent trailing bytes")
    }

    /// Policy probabilities (inference).
    pub fn policy_probs(&mut self, graph: &FeatureGraph, mask: &[bool]) -> Option<Vec<f32>> {
        let emb = self.encoder.forward(graph);
        let logits = self.policy.forward_inference(&emb);
        let flat: Vec<f32> = (0..logits.rows).map(|r| logits.get(r, 0)).collect();
        masked_softmax(&flat, mask)
    }

    fn per_node(&self, head: &Mlp, emb: &Matrix) -> Vec<f32> {
        let out = head.forward_inference(emb);
        (0..out.rows).map(|r| out.get(r, 0)).collect()
    }

    /// Soft state value under the *target* Q nets:
    /// V(s) = Σ_a π(a|s)[min(Q1ᵗ,Q2ᵗ)(s,a) − α·logπ(a|s)].
    fn soft_value(&mut self, graph: &FeatureGraph, mask: &[bool]) -> f32 {
        let emb = self.encoder.forward(graph);
        let logits = self.policy.forward_inference(&emb);
        let flat: Vec<f32> = (0..logits.rows).map(|r| logits.get(r, 0)).collect();
        let Some(probs) = masked_softmax(&flat, mask) else {
            return 0.0;
        };
        let q1 = self.per_node(&self.q1_target, &emb);
        let q2 = self.per_node(&self.q2_target, &emb);
        probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(i, &p)| p * (q1[i].min(q2[i]) - self.cfg.alpha * p.ln()))
            .sum()
    }

    fn train(&mut self) {
        if self.replay.len() < self.cfg.batch_size {
            return;
        }
        let batch = self.replay.sample(self.cfg.batch_size, &mut self.rng);
        // Pre-compute TD targets (no gradients flow through them).
        let targets: Vec<f32> = batch
            .iter()
            .map(|s| {
                if s.done {
                    s.reward
                } else {
                    s.reward + self.cfg.gamma * self.soft_value(&s.next_graph, &s.next_mask)
                }
            })
            .collect();

        for (s, &y) in batch.iter().zip(&targets) {
            let n = s.graph.len();
            let emb = self.encoder.forward(&s.graph);

            // --- Q updates: L = (Q(s,a) − y)² for both heads ---
            let q1_out = self.q1.forward(&emb);
            let q2_out = self.q2.forward(&emb);
            let mut dq1 = Matrix::zeros(n, 1);
            let mut dq2 = Matrix::zeros(n, 1);
            dq1.set(s.action, 0, 2.0 * (q1_out.get(s.action, 0) - y));
            dq2.set(s.action, 0, 2.0 * (q2_out.get(s.action, 0) - y));
            let d_emb_q1 = self.q1.backward(&dq1);
            let d_emb_q2 = self.q2.backward(&dq2);

            // --- policy update ---
            // L_π = Σ_a π_a (α·logπ_a − minQ_a); dL/dz_i = π_i (f_i − L)
            // with f_i = α·logπ_i − minQ_i (Q treated constant).
            let logits_m = self.policy.forward(&emb);
            let logits: Vec<f32> = (0..n).map(|r| logits_m.get(r, 0)).collect();
            let mut d_emb = d_emb_q1;
            d_emb.add_assign(&d_emb_q2);
            if let Some(probs) = masked_softmax(&logits, &s.mask) {
                let q1v = self.per_node(&self.q1, &emb);
                let q2v = self.per_node(&self.q2, &emb);
                let f: Vec<f32> = (0..n)
                    .map(|i| {
                        if probs[i] > 0.0 {
                            self.cfg.alpha * probs[i].ln() - q1v[i].min(q2v[i])
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let l: f32 = (0..n).map(|i| probs[i] * f[i]).sum();
                let mut dpi = Matrix::zeros(n, 1);
                for i in 0..n {
                    if probs[i] > 0.0 {
                        dpi.set(i, 0, probs[i] * (f[i] - l));
                    }
                }
                let d_emb_pi = self.policy.backward(&dpi);
                d_emb.add_assign(&d_emb_pi);
            }
            self.encoder.backward(&d_emb);
        }
        self.q1.step();
        self.q2.step();
        self.policy.step();
        self.encoder.step(self.cfg.lr);
        // Polyak target sync
        let (q1c, q2c) = (self.q1.clone(), self.q2.clone());
        self.q1_target.polyak_from(&q1c, self.cfg.tau);
        self.q2_target.polyak_from(&q2c, self.cfg.tau);
        self.train_rounds += 1;
    }
}

impl Agent for SacAgent {
    fn act(&mut self, graph: &FeatureGraph, mask: &[bool]) -> Option<usize> {
        let probs = self.policy_probs(graph, mask)?;
        let weights: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
        let action = self.rng.weighted_index(&weights)?;
        self.pending = Some((graph.clone(), mask.to_vec(), action));
        Some(action)
    }

    fn observe(&mut self, reward: f32, next_graph: &FeatureGraph, next_mask: &[bool], done: bool) {
        if let Some((graph, mask, action)) = self.pending.take() {
            self.replay.push(Stored {
                graph,
                mask,
                action,
                reward,
                next_graph: next_graph.clone(),
                next_mask: next_mask.to_vec(),
                done,
            });
            self.observed += 1;
            if self.observed.is_multiple_of(self.cfg.train_interval) {
                self.train();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit_graph() -> FeatureGraph {
        let f = Matrix::from_vec(
            3,
            7,
            (0..3)
                .flat_map(|i| {
                    let mut row = vec![0.2f32; 7];
                    row[0] = i as f32 / 2.0;
                    row
                })
                .collect(),
        )
        .unwrap();
        let mut g = FeatureGraph::new(f);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    #[test]
    fn respects_mask_and_handles_empty() {
        let mut agent = SacAgent::new(SacConfig::default());
        let g = bandit_graph();
        for _ in 0..30 {
            let a = agent.act(&g, &[false, true, false]).unwrap();
            assert_eq!(a, 1);
            agent.observe(0.0, &g, &[false, true, false], false);
        }
        assert_eq!(agent.act(&g, &[false; 3]), None);
    }

    #[test]
    fn trains_after_interval_and_learns_bandit() {
        let cfg = SacConfig {
            lr: 3e-3,
            alpha: 0.02,
            gamma: 0.0,
            batch_size: 16,
            train_interval: 16,
            seed: 5,
            ..SacConfig::default()
        };
        let mut agent = SacAgent::new(cfg);
        let g = bandit_graph();
        let mask = vec![true; 3];
        for _ in 0..800 {
            let a = agent.act(&g, &mask).unwrap();
            let r = if a == 2 { 1.0 } else { 0.0 };
            agent.observe(r, &g, &mask, true);
        }
        assert!(agent.train_rounds > 10);
        let probs = agent.policy_probs(&g, &mask).unwrap();
        assert!(
            probs[2] > 0.45,
            "policy did not favour arm 2: {probs:?} ({} rounds)",
            agent.train_rounds
        );
    }

    #[test]
    fn soft_value_is_zero_with_no_valid_action() {
        let mut agent = SacAgent::new(SacConfig::default());
        let g = bandit_graph();
        assert_eq!(agent.soft_value(&g, &[false; 3]), 0.0);
    }
}

//! Deterministic data-parallel primitives over `std::thread::scope`.
//!
//! Tango's hot loops are data-parallel by construction: each master
//! solves its own per-request-type dispatch graph (§5.2), the GNN
//! encoder's aggregation and linear maps are independent per row (§5.3),
//! and the per-node tick phase touches each node in isolation. This
//! crate gives those loops a shared runtime with one hard guarantee:
//!
//! **Determinism contract.** Work is split into *statically chunked*
//! contiguous ranges (`ceil(len / workers)` items each) and results are
//! merged in *input order*. Every closure must be a pure function of
//! `(index, item)` — worker-local scratch handed out by
//! [`Pool::par_map_collect_with`] may only carry reusable buffers, never
//! values that leak between items. Under that contract the output is
//! bit-identical for every thread count, including `threads == 1`, which
//! runs inline on the caller with zero synchronization overhead.
//!
//! There is deliberately **no work stealing**: dynamic scheduling would
//! make which-worker-ran-what (and therefore any per-worker scratch
//! reuse pattern) timing-dependent. Static chunking keeps the mapping a
//! pure function of `(len, threads)`; the cost — imbalance when item
//! costs vary — is bounded by the fan-outs we run (many small, similar
//! items), and is the price of reproducible runs.
//!
//! Workers are scoped (`std::thread::scope`), so closures may borrow the
//! caller's stack freely and no pool state outlives a call.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A parallelism budget: how many OS threads a fan-out may use.
///
/// `Pool` is a plain value (no worker handles); threads are spawned
/// scoped per call and joined before the call returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        global()
    }
}

impl Pool {
    /// A pool using up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: every primitive runs inline.
    pub fn single() -> Self {
        Pool { threads: 1 }
    }

    /// Worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This pool, further limited so each worker gets at least
    /// `min_per_worker` of `units` of work. Keeps tiny inputs inline —
    /// spawning four threads for a 4×4 matmul costs more than the
    /// matmul. Thresholding never affects results (the contract makes
    /// every thread count bit-identical), only where time is spent.
    pub fn limit(&self, units: usize, min_per_worker: usize) -> Pool {
        let cap = units / min_per_worker.max(1);
        Pool {
            threads: self.threads.min(cap.max(1)),
        }
    }

    /// How many workers a fan-out over `len` items actually uses.
    fn workers_for(&self, len: usize) -> usize {
        self.threads.min(len.max(1))
    }

    /// Run `f` over statically chunked row ranges of `data`, in
    /// parallel. `data.len()` must be a multiple of `stride` (one row =
    /// `stride` elements; chunk boundaries always fall on row
    /// boundaries). `f(first_row, chunk)` receives the global index of
    /// its first row. Chunk 0 runs on the calling thread.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        stride: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        debug_assert!(
            stride > 0 && data.len().is_multiple_of(stride),
            "ragged rows"
        );
        let rows = data.len() / stride.max(1);
        let workers = self.workers_for(rows);
        if workers == 1 {
            f(0, data);
            return;
        }
        let rows_per = rows.div_ceil(workers);
        let mut chunks = data.chunks_mut(rows_per * stride);
        let first = chunks.next().expect("nonempty data has a first chunk");
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .enumerate()
                .map(|(i, chunk)| {
                    let f = &f;
                    scope.spawn(move || f((i + 1) * rows_per, chunk))
                })
                .collect();
            f(0, first);
            for h in handles {
                h.join().expect("tango-par worker panicked");
            }
        });
    }

    /// Like [`Pool::par_chunks_mut`] (stride 1) over two equal-length
    /// slices chunked identically: `f(first_index, a_chunk, b_chunk)`.
    /// The zip form lets a fan-out write results next to its inputs
    /// (e.g. solve a batch of flow graphs into a result slice).
    pub fn par_zip_chunks_mut<A: Send, B: Send>(
        &self,
        a: &mut [A],
        b: &mut [B],
        f: impl Fn(usize, &mut [A], &mut [B]) + Sync,
    ) {
        assert_eq!(a.len(), b.len(), "par_zip_chunks_mut length mismatch");
        if a.is_empty() {
            return;
        }
        let workers = self.workers_for(a.len());
        if workers == 1 {
            f(0, a, b);
            return;
        }
        let per = a.len().div_ceil(workers);
        let mut ca = a.chunks_mut(per);
        let mut cb = b.chunks_mut(per);
        let first = (ca.next().expect("nonempty"), cb.next().expect("nonempty"));
        std::thread::scope(|scope| {
            let handles: Vec<_> = ca
                .zip(cb)
                .enumerate()
                .map(|(i, (xa, xb))| {
                    let f = &f;
                    scope.spawn(move || f((i + 1) * per, xa, xb))
                })
                .collect();
            f(0, first.0, first.1);
            for h in handles {
                h.join().expect("tango-par worker panicked");
            }
        });
    }

    /// Run `f` over caller-chosen contiguous *parts* of three
    /// equal-length slices, in parallel: `f(first_index, a, b, c)` once
    /// per part. `bounds` lists the ascending end offset of each part;
    /// the last bound must equal the slice length. Part 0 runs on the
    /// calling thread.
    ///
    /// This is the shard primitive for structure-aligned fan-outs (one
    /// part per group of clusters, never splitting a cluster), where the
    /// even `ceil(len/workers)` chunking of [`Pool::par_zip_chunks_mut`]
    /// would cut through a group. The determinism contract is the same —
    /// each part writes only its own elements, so the part layout can
    /// never affect results, only where time is spent.
    pub fn par_parts_zip3_mut<A: Send, B: Send, C: Send>(
        &self,
        bounds: &[usize],
        a: &mut [A],
        b: &mut [B],
        c: &mut [C],
        f: impl Fn(usize, &mut [A], &mut [B], &mut [C]) + Sync,
    ) {
        assert_eq!(a.len(), b.len(), "par_parts_zip3_mut length mismatch");
        assert_eq!(a.len(), c.len(), "par_parts_zip3_mut length mismatch");
        if a.is_empty() {
            assert!(
                bounds.is_empty() || bounds == [0],
                "nonempty bounds over empty slices"
            );
            return;
        }
        assert_eq!(
            bounds.last().copied(),
            Some(a.len()),
            "last bound must equal the slice length"
        );
        if self.threads == 1 || bounds.len() == 1 {
            let mut start = 0;
            for &end in bounds {
                assert!(end >= start, "bounds must be ascending");
                f(
                    start,
                    &mut a[start..end],
                    &mut b[start..end],
                    &mut c[start..end],
                );
                start = end;
            }
            return;
        }
        let mut parts = Vec::with_capacity(bounds.len());
        let (mut ra, mut rb, mut rc) = (a, b, c);
        let mut start = 0;
        for &end in bounds {
            assert!(end >= start, "bounds must be ascending");
            let (pa, ta) = ra.split_at_mut(end - start);
            let (pb, tb) = rb.split_at_mut(end - start);
            let (pc, tc) = rc.split_at_mut(end - start);
            parts.push((start, pa, pb, pc));
            (ra, rb, rc) = (ta, tb, tc);
            start = end;
        }
        std::thread::scope(|scope| {
            let mut parts = parts.into_iter();
            let head = parts.next().expect("nonempty bounds have a first part");
            let handles: Vec<_> = parts
                .map(|(first, pa, pb, pc)| {
                    let f = &f;
                    scope.spawn(move || f(first, pa, pb, pc))
                })
                .collect();
            f(head.0, head.1, head.2, head.3);
            for h in handles {
                h.join().expect("tango-par worker panicked");
            }
        });
    }

    /// Map every item through `f`, collecting results in input order.
    pub fn par_map_collect<I: Sync, R: Send>(
        &self,
        items: &[I],
        f: impl Fn(usize, &I) -> R + Sync,
    ) -> Vec<R> {
        self.par_map_collect_with(items, || (), |(), i, it| f(i, it))
    }

    /// Map every item through `f`, giving each worker its own scratch
    /// state from `init`, collecting results in input order.
    ///
    /// The scratch exists so workers can reuse allocations (graphs,
    /// solver workspaces) across the items of their chunk. Per the crate
    /// contract, `f` must produce a result that depends only on
    /// `(index, item)` — it must reset whatever scratch state it reads.
    pub fn par_map_collect_with<S, I: Sync, R: Send>(
        &self,
        items: &[I],
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &I) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.workers_for(items.len());
        if workers == 1 {
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, it)| f(&mut scratch, i, it))
                .collect();
        }
        let per = items.len().div_ceil(workers);
        let mut chunks = items.chunks(per);
        let first = chunks.next().expect("nonempty items have a first chunk");
        let run_chunk = |base: usize, chunk: &[I]| -> Vec<R> {
            let mut scratch = init();
            chunk
                .iter()
                .enumerate()
                .map(|(j, it)| f(&mut scratch, base + j, it))
                .collect()
        };
        let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .enumerate()
                .map(|(i, chunk)| {
                    let run_chunk = &run_chunk;
                    scope.spawn(move || run_chunk((i + 1) * per, chunk))
                })
                .collect();
            let head = run_chunk(0, first);
            let mut parts = vec![head];
            for h in handles {
                parts.push(h.join().expect("tango-par worker panicked"));
            }
            parts
        });
        // fixed merge order: chunk 0, chunk 1, ... regardless of finish order
        let mut out = Vec::with_capacity(items.len());
        for part in parts.iter_mut() {
            out.append(part);
        }
        out
    }
}

/// Global thread budget: 0 = not yet resolved.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TANGO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide thread budget: `TANGO_THREADS` if set, else
/// [`std::thread::available_parallelism`], else 1. Resolution is lazy and
/// idempotent; [`set_threads`] overrides it at any time.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let t = default_threads();
            THREADS.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Override the process-wide thread budget (clamped to ≥ 1). Intended
/// for benches sweeping thread counts and tests pinning both sides of a
/// determinism comparison; the simulation runtime carries its own
/// per-system [`Pool`] resolved from its config instead.
pub fn set_threads(threads: usize) {
    THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The pool the compute kernels (matmul, CSR aggregation) share.
pub fn global() -> Pool {
    Pool::new(threads())
}

/// Resolve a config-level thread request: `TANGO_THREADS` wins, then the
/// explicit config value, then [`std::thread::available_parallelism`].
pub fn resolve(config: Option<usize>) -> usize {
    if let Ok(v) = std::env::var("TANGO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    match config {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for t in [1, 2, 3, 4, 7, 64] {
            let got = Pool::new(t).par_map_collect(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads = {t}");
        }
    }

    #[test]
    fn map_collect_with_reuses_worker_scratch() {
        let items: Vec<usize> = (0..97).collect();
        let got = Pool::new(4).par_map_collect_with(&items, Vec::<usize>::new, |scratch, i, &x| {
            // scratch is reset per item, per the contract
            scratch.clear();
            scratch.extend(0..x);
            scratch.len() + i - x // == i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn chunks_mut_covers_every_row_once() {
        for t in [1, 2, 5, 16] {
            let mut data = vec![0u32; 10 * 7]; // 10 rows of stride 7
            Pool::new(t).par_chunks_mut(&mut data, 7, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(7).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (0..10u32).flat_map(|r| [r + 1; 7]).collect();
            assert_eq!(data, want, "threads = {t}");
        }
    }

    #[test]
    fn zip_chunks_align() {
        let mut a: Vec<u64> = (0..33).collect();
        let mut b = vec![0u64; 33];
        Pool::new(4).par_zip_chunks_mut(&mut a, &mut b, |first, xa, xb| {
            for (j, (x, y)) in xa.iter_mut().zip(xb.iter_mut()).enumerate() {
                assert_eq!(*x as usize, first + j);
                *y = *x * 2;
            }
        });
        assert_eq!(b, (0..33).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn parts_zip3_respects_caller_bounds() {
        for t in [1, 2, 4, 16] {
            let mut a: Vec<u64> = (0..20).collect();
            let mut b = vec![0u64; 20];
            let mut c = vec![0u64; 20];
            // ragged parts: [0..3), [3..10), [10..11), [11..20)
            let bounds = [3usize, 10, 11, 20];
            Pool::new(t).par_parts_zip3_mut(
                &bounds,
                &mut a,
                &mut b,
                &mut c,
                |first, xa, xb, xc| {
                    for (j, ((x, y), z)) in
                        xa.iter().zip(xb.iter_mut()).zip(xc.iter_mut()).enumerate()
                    {
                        assert_eq!(*x as usize, first + j);
                        *y = *x * 3;
                        *z = first as u64;
                    }
                },
            );
            assert_eq!(b, (0..20).map(|x| x * 3).collect::<Vec<u64>>(), "t = {t}");
            let want_c: Vec<u64> = (0..20u64)
                .map(|i| match i {
                    0..=2 => 0,
                    3..=9 => 3,
                    10 => 10,
                    _ => 11,
                })
                .collect();
            assert_eq!(c, want_c, "t = {t}");
        }
    }

    #[test]
    #[should_panic(expected = "last bound must equal")]
    fn parts_zip3_rejects_short_bounds() {
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut c = [0u8; 4];
        Pool::new(2).par_parts_zip3_mut(&[2], &mut a, &mut b, &mut c, |_, _, _, _| {});
    }

    #[test]
    fn empty_inputs_are_noops() {
        let p = Pool::new(8);
        assert!(p.par_map_collect(&Vec::<u8>::new(), |_, &x| x).is_empty());
        p.par_chunks_mut(&mut Vec::<u8>::new(), 1, |_, _| panic!("no chunks"));
        p.par_zip_chunks_mut(&mut [0u8; 0], &mut [0u8; 0], |_, _, _| panic!("no chunks"));
        p.par_parts_zip3_mut(
            &[],
            &mut [0u8; 0],
            &mut [0u8; 0],
            &mut [0u8; 0],
            |_, _, _, _| panic!("no parts"),
        );
    }

    #[test]
    fn limit_keeps_small_work_inline() {
        let p = Pool::new(8);
        assert_eq!(p.limit(10, 100).threads(), 1);
        assert_eq!(p.limit(1000, 100).threads(), 8);
        assert_eq!(p.limit(250, 100).threads(), 2);
        assert_eq!(p.limit(0, 0).threads(), 1);
    }

    #[test]
    fn pool_clamps_to_at_least_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::single().threads(), 1);
    }

    /// The determinism contract, end to end: identical output at every
    /// thread count for a float reduction whose result would differ if
    /// chunking leaked into per-item evaluation.
    #[test]
    fn thread_count_never_changes_results() {
        let items: Vec<f64> = (0..513).map(|i| (i as f64) * 0.123 + 1.0).collect();
        let reference = Pool::single().par_map_collect(&items, |i, &x| {
            (0..64).fold(x, |acc, k| acc + (acc * 1e-3) + (i + k) as f64 * 1e-6)
        });
        for t in [2, 3, 4, 8, 32] {
            let got = Pool::new(t).par_map_collect(&items, |i, &x| {
                (0..64).fold(x, |acc, k| acc + (acc * 1e-3) + (i + k) as f64 * 1e-6)
            });
            // bitwise, not approximate
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {t}");
            }
        }
    }
}

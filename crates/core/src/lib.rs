//! Tango: harmonious management and scheduling for mixed services
//! co-located among distributed edge-clouds — a full reproduction of the
//! ICPP 2023 paper as a Rust library.
//!
//! The crate wires the substrates together into the system of Fig. 3:
//!
//! * per-cluster **LC traffic dispatchers** running DSS-LC (or a baseline)
//!   over state-storage snapshots;
//! * a central **BE traffic dispatcher** running DCG-BE (or a baseline);
//! * **HRM** on every worker: usage regulations, D-VPA, QoS re-assurance;
//! * the **dual-space** evaluation substrate: behaviour-level K8s nodes
//!   with CGroup-enforced processor sharing, a geographic WAN, and a
//!   Google-trace-shaped workload generator.
//!
//! Entry points: [`TangoConfig`] (presets for the paper's physical
//! testbed, the 104-cluster dual space, and the CERES/DSACO comparison
//! systems) and [`EdgeCloudSystem::run`], which returns a [`RunReport`]
//! with the per-period series every figure of §7 plots.
//!
//! ```
//! use tango::{EdgeCloudSystem, TangoConfig};
//! use tango_types::SimTime;
//!
//! let mut cfg = TangoConfig::physical_testbed();
//! cfg.clusters = 2;
//! cfg.be_policy = tango::BePolicy::LoadGreedy; // fast for doctests
//! let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(2), "demo");
//! assert!(report.lc_arrived > 0);
//! ```

pub mod config;
#[deny(missing_docs)]
pub mod ctrl_rt;
#[deny(missing_docs)]
pub mod ctx;
#[deny(missing_docs)]
pub mod dispatch;
#[deny(missing_docs)]
pub mod fault_rt;
#[deny(missing_docs)]
pub mod lifecycle;
#[deny(missing_docs)]
pub mod migration;
pub mod policy;
pub mod report;
#[deny(missing_docs)]
pub mod runtime;
#[deny(missing_docs)]
pub mod snapshot;
#[deny(missing_docs)]
pub mod sync_loop;
pub mod system;
#[deny(missing_docs)]
pub mod train_hooks;
pub(crate) mod view_cache;

pub use config::{
    Ablations, AllocatorKind, BePolicy, CloudConfig, DefragConfig, LcPolicy, TangoConfig,
    WorkloadSpec,
};
pub use report::{RunAudit, RunReport};
pub use runtime::run_parallel;
pub use snapshot::{config_fingerprint, Checkpoint, CheckpointPolicy, Resumed};
pub use system::{EdgeCloudSystem, Event};
pub use tango_faults::{FaultEvent, FaultPlan, FaultSummary, NodeChurn, NodeRef};
pub use tango_metrics::{NoopTrace, TraceEvent, TraceLane, TraceRecorder, TraceSink};
pub use tango_snap::SnapError;

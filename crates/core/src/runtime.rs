//! Shared runtime primitives — the cluster control-plane record, the
//! node-level allocator, static-limit derivation — plus parallel
//! experiment execution.
//!
//! [`ClusterRt`] and [`Allocator`] used to be private appendages of the
//! `system.rs` monolith; they live here so every stage module (lifecycle,
//! dispatch, sync, fault) shares one documented definition instead of
//! reaching into the god-file.

use crate::config::{AllocatorKind, TangoConfig};
use crate::report::RunReport;
use crate::system::EdgeCloudSystem;
use std::collections::VecDeque;
use tango_hrm::{AdmitOutcome, HrmAllocator, StaticAllocator};
use tango_kube::Node;
use tango_types::{
    ClusterId, NodeId, Request, RequestId, Resources, ServiceClass, SimTime, TangoError,
};
use tango_workload::ServiceCatalog;

/// Per-cluster control-plane state: the master's identity and its two
/// dispatch queues.
///
/// Invariants:
/// * `master` and `workers` are fixed at build time; crash/recovery never
///   mutates them — failover is *routing* (see `fault_rt::acting_master_for`),
///   so a recovered master resumes its own cluster without state surgery.
/// * `lc_q` / `be_q` hold requests that are **queued at this master**, in
///   arrival order; a request id appears in at most one queue
///   system-wide (master queues, the central BE queue, or a node wait
///   queue — never two at once).
/// * Queues age even while the master is down: expiry runs every dispatch
///   round regardless of control-plane health.
pub struct ClusterRt {
    /// Cluster id (index into the system's cluster vector).
    pub(crate) id: ClusterId,
    /// The cluster's master node.
    pub(crate) master: NodeId,
    /// Worker nodes, in creation order.
    pub(crate) workers: Vec<NodeId>,
    /// LC requests awaiting this master's next dispatch round.
    pub(crate) lc_q: VecDeque<RequestId>,
    /// BE requests awaiting forwarding (or local scheduling in
    /// `local_only` mode).
    pub(crate) be_q: VecDeque<RequestId>,
}

impl ClusterRt {
    /// Build an empty cluster record.
    pub(crate) fn new(id: ClusterId, master: NodeId, workers: Vec<NodeId>) -> Self {
        ClusterRt {
            id,
            master,
            workers,
            lc_q: VecDeque::new(),
            be_q: VecDeque::new(),
        }
    }

    /// Cluster id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The master node's id.
    pub fn master(&self) -> NodeId {
        self.master
    }

    /// Worker node ids, in creation order.
    pub fn workers(&self) -> &[NodeId] {
        &self.workers
    }
}

/// The node-level admission/allocation mode, fixed per run.
///
/// Invariants:
/// * Exactly one variant exists for the whole system; per-node state
///   (limits, cgroups) lives in the nodes, not here.
/// * Only [`Allocator::Hrm`] ever performs D-VPA scaling or evicts BE
///   work; under [`Allocator::Static`] `dvpa_ops()` stays 0 and
///   `rebalance` is a no-op — the Fig. 9 "turbulent allocation"
///   comparison depends on that asymmetry.
pub enum Allocator {
    /// HRM regulations + D-VPA elastic limits (§4).
    Hrm(HrmAllocator),
    /// K8s-native fixed limits.
    Static(StaticAllocator),
}

impl Allocator {
    /// Build the allocator configured in `cfg` for `catalog`'s services.
    pub(crate) fn from_config(cfg: &TangoConfig, catalog: &ServiceCatalog) -> Self {
        match cfg.allocator {
            AllocatorKind::Hrm => {
                let floors = catalog
                    .specs()
                    .iter()
                    .map(|s| (s.id, s.min_request))
                    .collect();
                Allocator::Hrm(HrmAllocator::new(floors))
            }
            AllocatorKind::Static => Allocator::Static(StaticAllocator),
        }
    }

    /// Try to admit `req` on `node` (the §4.1 regulations under HRM;
    /// clamp-into-fixed-limits under static allocation).
    pub(crate) fn try_admit(
        &mut self,
        node: &mut Node,
        req: &Request,
        work_milli_ms: u64,
        now: SimTime,
    ) -> Result<AdmitOutcome, TangoError> {
        match self {
            Allocator::Hrm(h) => h.try_admit(node, req, work_milli_ms, now),
            Allocator::Static(s) => s.try_admit(node, req, work_milli_ms, now),
        }
    }

    /// Admit a migrated BE pod resuming from residual work (the §4.1
    /// regulations with D-VPA growth under HRM; clamp-into-fixed-limits
    /// under static allocation).
    pub(crate) fn try_admit_migrated(
        &mut self,
        node: &mut Node,
        request: tango_types::RequestId,
        service: tango_types::ServiceId,
        demand: tango_types::Resources,
        remaining_work: f64,
        now: SimTime,
    ) -> Result<(), tango_types::TangoError> {
        match self {
            Allocator::Hrm(h) => {
                h.try_admit_migrated(node, request, service, demand, remaining_work, now)
            }
            Allocator::Static(s) => {
                s.try_admit_migrated(node, request, service, demand, remaining_work, now)
            }
        }
    }

    /// Post-completion rebalance (D-VPA shrink/regrow). No-op under
    /// static allocation.
    pub(crate) fn rebalance(&mut self, node: &mut Node, now: SimTime) {
        if let Allocator::Hrm(h) = self {
            h.rebalance(node, now);
        }
    }

    /// D-VPA scaling operations performed so far (0 under static
    /// allocation).
    pub(crate) fn dvpa_ops(&self) -> u64 {
        match self {
            Allocator::Hrm(h) => h.dvpa.ops,
            Allocator::Static(_) => 0,
        }
    }
}

/// K8s-native fixed limits "according to the total resource usage ratio
/// in the trace" (§7.1): share ∝ arrival-rate × work, normalized to a
/// true partition (Σ limits ≤ capacity per dimension — fixed allocation
/// means fragmentation, which is exactly the §7.1 "turbulent allocation"
/// the baseline exhibits).
pub(crate) fn static_limits(cfg: &TangoConfig, catalog: &ServiceCatalog) -> Vec<Resources> {
    let lc_count = catalog.lc_ids().len().max(1) as f64;
    let be_count = catalog.be_ids().len().max(1) as f64;
    let weights: Vec<f64> = catalog
        .specs()
        .iter()
        .map(|s| {
            let rate = match s.class {
                ServiceClass::Lc => cfg.workload.lc_rps / lc_count,
                ServiceClass::Be => cfg.workload.be_rps / be_count,
            };
            rate * s.work_milli_ms as f64
        })
        .collect();
    let total: f64 = weights.iter().sum::<f64>().max(1e-9);
    let mut limits: Vec<Resources> = catalog
        .specs()
        .iter()
        .zip(&weights)
        .map(|(s, &w)| {
            let share = w / total;
            cfg.worker_capacity
                .scale_f64(share)
                .max(&s.min_request)
                .min(&cfg.worker_capacity)
        })
        .collect();
    for kind in tango_types::ResourceKind::ALL {
        let sum: u64 = limits.iter().map(|l| l.get(kind)).sum();
        let cap = cfg.worker_capacity.get(kind);
        if sum > cap && sum > 0 {
            let scale = cap as f64 / sum as f64;
            for l in &mut limits {
                l.set(kind, ((l.get(kind) as f64 * scale) as u64).max(1));
            }
        }
    }
    limits
}

/// One experiment to run.
#[derive(Clone)]
pub struct RunSpec {
    /// Report label.
    pub label: String,
    /// System configuration.
    pub config: TangoConfig,
    /// Simulated duration.
    pub duration: SimTime,
}

/// Run every spec on its own thread (bounded by available parallelism);
/// results come back in input order.
///
/// Tango the system is heavily asynchronous (§6: multiprocessing, thread
/// pools); the simulation keeps each *run's* event loop single-threaded
/// for exact determinism and instead parallelizes across runs — which is
/// what the evaluation needs: Fig. 12 alone is a 4×4 grid of policy
/// pairings.
pub fn run_parallel(specs: Vec<RunSpec>) -> Vec<RunReport> {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut reports: Vec<Option<RunReport>> = (0..specs.len()).map(|_| None).collect();
    // chunked fan-out so we never oversubscribe wildly
    for (chunk_idx, chunk) in specs.chunks(max_threads).enumerate() {
        let offset = chunk_idx * max_threads;
        let results: Vec<(usize, RunReport)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let report =
                            EdgeCloudSystem::new(spec.config).run(spec.duration, &spec.label);
                        (offset + i, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run panicked"))
                .collect()
        });
        for (i, r) in results {
            reports[i] = Some(r);
        }
    }
    reports.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::testutil::small_cfg;
    use crate::config::BePolicy;

    #[test]
    fn parallel_runs_match_sequential() {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 2;
        cfg.topology.clusters = 2;
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.workload.lc_rps = 20.0;
        cfg.workload.be_rps = 4.0;
        let dur = SimTime::from_secs(3);

        let specs = vec![
            RunSpec {
                label: "a".into(),
                config: cfg.clone(),
                duration: dur,
            },
            RunSpec {
                label: "b".into(),
                config: cfg.clone(),
                duration: dur,
            },
        ];
        let par = run_parallel(specs);
        let seq = EdgeCloudSystem::new(cfg).run(dur, "seq");
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].label, "a");
        assert_eq!(par[1].label, "b");
        // identical configs -> identical deterministic results
        assert_eq!(par[0].lc_arrived, seq.lc_arrived);
        assert_eq!(par[0].be_throughput, par[1].be_throughput);
        assert_eq!(par[0].lc_completed, seq.lc_completed);
    }

    #[test]
    fn static_limits_form_a_partition_with_floors() {
        let mut cfg = small_cfg();
        cfg.allocator = AllocatorKind::Static;
        let catalog = ServiceCatalog::standard();
        let limits = static_limits(&cfg, &catalog);
        assert_eq!(limits.len(), catalog.len());
        // per-dimension sums never exceed worker capacity (the
        // fragmentation property of fixed allocation)
        for kind in tango_types::ResourceKind::ALL {
            let sum: u64 = limits.iter().map(|l| l.get(kind)).sum();
            assert!(
                sum <= cfg.worker_capacity.get(kind),
                "{kind:?}: {sum} > capacity"
            );
        }
        // every service gets a nonzero slice
        assert!(limits.iter().all(|l| l.cpu_milli >= 1 && l.memory_mib >= 1));
    }

    #[test]
    fn hrm_uses_dvpa_and_static_does_not() {
        let hrm_report = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(5), "hrm");
        assert!(hrm_report.dvpa_ops > 0);

        let mut cfg = small_cfg();
        cfg.allocator = AllocatorKind::Static;
        cfg.reassurance = None;
        let static_report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "static");
        assert_eq!(static_report.dvpa_ops, 0);
    }
}

//! Parallel experiment execution.
//!
//! Tango the system is heavily asynchronous (§6: multiprocessing, thread
//! pools); the simulation keeps each *run* single-threaded for exact
//! determinism and instead parallelizes across runs — which is what the
//! evaluation needs: Fig. 12 alone is a 4×4 grid of policy pairings.
//! `run_parallel` fans runs out over OS threads with std's scoped
//! threads and returns reports in input order.

use crate::config::TangoConfig;
use crate::report::RunReport;
use crate::system::EdgeCloudSystem;
use tango_types::SimTime;

/// One experiment to run.
#[derive(Clone)]
pub struct RunSpec {
    /// Report label.
    pub label: String,
    /// System configuration.
    pub config: TangoConfig,
    /// Simulated duration.
    pub duration: SimTime,
}

/// Run every spec on its own thread (bounded by available parallelism);
/// results come back in input order.
pub fn run_parallel(specs: Vec<RunSpec>) -> Vec<RunReport> {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut reports: Vec<Option<RunReport>> = (0..specs.len()).map(|_| None).collect();
    // chunked fan-out so we never oversubscribe wildly
    for (chunk_idx, chunk) in specs.chunks(max_threads).enumerate() {
        let offset = chunk_idx * max_threads;
        let results: Vec<(usize, RunReport)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let report =
                            EdgeCloudSystem::new(spec.config).run(spec.duration, &spec.label);
                        (offset + i, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run panicked"))
                .collect()
        });
        for (i, r) in results {
            reports[i] = Some(r);
        }
    }
    reports.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BePolicy;

    #[test]
    fn parallel_runs_match_sequential() {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 2;
        cfg.topology.clusters = 2;
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.workload.lc_rps = 20.0;
        cfg.workload.be_rps = 4.0;
        let dur = SimTime::from_secs(3);

        let specs = vec![
            RunSpec {
                label: "a".into(),
                config: cfg.clone(),
                duration: dur,
            },
            RunSpec {
                label: "b".into(),
                config: cfg.clone(),
                duration: dur,
            },
        ];
        let par = run_parallel(specs);
        let seq = EdgeCloudSystem::new(cfg).run(dur, "seq");
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].label, "a");
        assert_eq!(par[1].label, "b");
        // identical configs -> identical deterministic results
        assert_eq!(par[0].lc_arrived, seq.lc_arrived);
        assert_eq!(par[0].be_throughput, par[1].be_throughput);
        assert_eq!(par[0].lc_completed, seq.lc_completed);
    }
}

//! Policy construction and the DSACO-style LC scheduler.

use crate::config::{Ablations, BePolicy, LcPolicy};
use tango_gnn::EncoderKind;
use tango_rl::{Agent, SacAgent, SacConfig};
use tango_sched::dcg_be::{build_graph, GreedyBe, RoundRobinBe};
use tango_sched::{
    BeBackend, BeScheduler, DcgBe, DcgBeConfig, DssLc, GnnSacBe, KsNative, LcBackend, LcScheduler,
    LoadGreedy, SchedulerBackend, Scoring, Td3Be, Td3BeConfig, TypeBatch,
};
use tango_types::{NodeId, RequestId};

/// Instantiate an LC scheduler for one master node.
pub fn make_lc_scheduler(
    policy: LcPolicy,
    seed: u64,
    ablations: &Ablations,
) -> Box<dyn LcScheduler + Send> {
    match policy {
        LcPolicy::DssLc => {
            if ablations.dss_overflow_routing {
                Box::new(DssLc::new(seed))
            } else {
                Box::new(DssLc::without_overflow_routing(seed))
            }
        }
        LcPolicy::LoadGreedy => Box::new(LoadGreedy),
        LcPolicy::KsNative => Box::new(KsNative::default()),
        LcPolicy::Scoring => Box::new(Scoring::default()),
        LcPolicy::Dsaco => Box::new(DsacoLc::new(seed)),
    }
}

/// Instantiate the central BE scheduler.
pub fn make_be_scheduler(
    policy: BePolicy,
    seed: u64,
    ablations: &Ablations,
) -> Box<dyn BeScheduler + Send> {
    match policy {
        BePolicy::DcgBe(kind) => Box::new(DcgBe::new(DcgBeConfig {
            encoder_kind: kind,
            seed,
            eta: ablations.dcg_eta,
            context_filter: ablations.dcg_context_filter,
            ..DcgBeConfig::default()
        })),
        BePolicy::GnnSac => Box::new(GnnSacBe::new(EncoderKind::Sage { p: 3 }, 1e-3, seed)),
        BePolicy::Td3 => Box::new(Td3Be::new(Td3BeConfig {
            seed,
            ..Td3BeConfig::default()
        })),
        BePolicy::LoadGreedy => Box::new(GreedyBe),
        BePolicy::KsNative => Box::new(RoundRobinBe::default()),
    }
}

/// Instantiate an LC policy behind the unified [`SchedulerBackend`]
/// surface the dispatch stage consumes.
pub fn make_lc_backend(
    policy: LcPolicy,
    seed: u64,
    ablations: &Ablations,
) -> Box<dyn SchedulerBackend + Send> {
    Box::new(LcBackend::new(make_lc_scheduler(policy, seed, ablations)))
}

/// Instantiate the central BE policy behind the unified
/// [`SchedulerBackend`] surface.
pub fn make_be_backend(
    policy: BePolicy,
    seed: u64,
    ablations: &Ablations,
) -> Box<dyn SchedulerBackend + Send> {
    Box::new(BeBackend::new(make_be_scheduler(policy, seed, ablations)))
}

/// DSACO-style distributed LC scheduling \[34\]: each master runs its own
/// soft-actor-critic over the geo-nearby candidate graph and offloads one
/// request at a time. Rewarded bandit-style by the load of the node it
/// picked — intelligent offloading, but with no HRM underneath (the
/// pairing the paper's Fig. 13 isolates).
pub struct DsacoLc {
    agent: SacAgent,
}

impl DsacoLc {
    /// Create a per-master DSACO scheduler.
    pub fn new(seed: u64) -> Self {
        let cfg = SacConfig {
            feature_dim: tango_sched::dcg_be::FEATURE_DIM,
            lr: 1e-3,
            seed,
            ..SacConfig::default()
        };
        DsacoLc {
            agent: SacAgent::new(cfg),
        }
    }
}

impl LcScheduler for DsacoLc {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();
        let mut out = Vec::with_capacity(batch.requests.len());
        let demand = batch
            .nodes
            .first()
            .map(|n| n.min_request)
            .unwrap_or_default();
        for &req in &batch.requests {
            let graph = build_graph(&demand, &batch.nodes);
            let mask: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
            let Some(idx) = self.agent.act(&graph, &mask) else {
                break;
            };
            remaining[idx] -= 1;
            out.push((req, batch.nodes[idx].node));
            // bandit reward: free-capacity fraction after placement,
            // discounted by the offloading delay — the latency/load
            // trade-off DSACO's critic optimizes.
            let cap_total = batch.nodes[idx].capacity_total().max(1);
            let load_part = remaining[idx] as f32 / cap_total as f32;
            let delay_ms = batch.nodes[idx].delay.as_millis_f64() as f32;
            let reward = load_part * (-delay_ms / 50.0).exp();
            self.agent.observe(reward, &graph, &mask, true);
        }
        out
    }

    fn name(&self) -> &'static str {
        "dsaco"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(self.agent.snapshot_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.agent
            .restore_bytes(bytes)
            .map_err(|_| "dsaco agent blob rejected")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::{ClusterId, Resources, ServiceId, SimTime};

    fn cand(id: u32, cap: u64) -> tango_sched::CandidateNode {
        tango_sched::CandidateNode {
            node: NodeId(id),
            cluster: ClusterId(0),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(cap * 500, cap * 256),
            available_be: Resources::cpu_mem(cap * 500, cap * 256),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_millis(5),
            link_capacity: 100,
            slack: 1.0,
            alive: true,
        }
    }

    #[test]
    fn factory_builds_every_lc_policy() {
        for p in [
            LcPolicy::DssLc,
            LcPolicy::LoadGreedy,
            LcPolicy::KsNative,
            LcPolicy::Scoring,
            LcPolicy::Dsaco,
        ] {
            let s = make_lc_scheduler(p, 1, &Ablations::default());
            assert_eq!(s.name(), p.name());
        }
    }

    #[test]
    fn factory_builds_every_be_policy() {
        for p in [
            BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
            BePolicy::GnnSac,
            BePolicy::Td3,
            BePolicy::LoadGreedy,
            BePolicy::KsNative,
        ] {
            let s = make_be_scheduler(p, 1, &Ablations::default());
            assert_eq!(s.name(), p.name());
        }
    }

    #[test]
    fn dsaco_respects_capacity() {
        let mut s = DsacoLc::new(3);
        let batch = TypeBatch {
            service: ServiceId(0),
            requests: (0..10).map(RequestId).collect(),
            nodes: vec![cand(1, 2), cand(2, 3)].into(),
        };
        let out = s.assign(&batch);
        assert_eq!(out.len(), 5, "5 slots total");
        let to1 = out.iter().filter(|&&(_, n)| n == NodeId(1)).count();
        let to2 = out.iter().filter(|&&(_, n)| n == NodeId(2)).count();
        assert!(to1 <= 2 && to2 <= 3);
    }

    #[test]
    fn dsaco_with_no_nodes_assigns_nothing() {
        let mut s = DsacoLc::new(3);
        let batch = TypeBatch {
            service: ServiceId(0),
            requests: vec![RequestId(0)],
            nodes: vec![].into(),
        };
        assert!(s.assign(&batch).is_empty());
    }
}

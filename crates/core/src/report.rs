//! Run reports: the numbers every §7 figure is drawn from.

use tango_metrics::PeriodRecord;

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label (policy pairing / system name).
    pub label: String,
    /// Per-800ms-period rows.
    pub periods: Vec<PeriodRecord>,
    /// QoS-guarantee satisfaction rate φ (Eq. 1), against arrivals.
    pub qos_satisfaction: f64,
    /// BE long-term throughput φ′ (completed BE requests).
    pub be_throughput: u64,
    /// Total abandoned requests.
    pub abandoned: u64,
    /// Mean overall resource utilization across sampled periods.
    pub mean_utilization: f64,
    /// p95 latency over all completed LC requests, ms.
    pub lc_p95_ms: f64,
    /// Total LC requests that arrived.
    pub lc_arrived: u64,
    /// Total LC requests completed.
    pub lc_completed: u64,
    /// D-VPA scaling operations performed (0 under the static allocator).
    pub dvpa_ops: u64,
    /// BE containers evicted by LC preemption.
    pub be_evictions: u64,
}

impl RunReport {
    /// Per-period series as CSV (header + one row per 800 ms period),
    /// ready for external plotting.
    pub fn periods_csv(&self) -> String {
        let mut out = String::from(
            "period,lc_arrived,lc_completed,lc_satisfied,be_completed,abandoned,util_overall,util_lc,util_be,lc_p95_ms\n",
        );
        for p in &self.periods {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.2}\n",
                p.index,
                p.lc_arrived,
                p.lc_completed,
                p.lc_satisfied,
                p.be_completed,
                p.abandoned,
                p.util_overall,
                p.util_lc,
                p.util_be,
                p.lc_p95_ms
            ));
        }
        out
    }

    /// Write the per-period CSV to a file.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.periods_csv())
    }

    /// Render a compact one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: qos={:.3} thpt={} util={:.3} p95={:.1}ms abandoned={} (lc {}/{} done)",
            self.label,
            self.qos_satisfaction,
            self.be_throughput,
            self.mean_utilization,
            self.lc_p95_ms,
            self.abandoned,
            self.lc_completed,
            self.lc_arrived,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_fields() {
        let r = RunReport {
            label: "tango".into(),
            periods: vec![],
            qos_satisfaction: 0.95,
            be_throughput: 1234,
            abandoned: 5,
            mean_utilization: 0.61,
            lc_p95_ms: 212.5,
            lc_arrived: 1000,
            lc_completed: 990,
            dvpa_ops: 10,
            be_evictions: 2,
        };
        let s = r.summary();
        assert!(s.contains("tango"));
        assert!(s.contains("0.950"));
        assert!(s.contains("1234"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = RunReport {
            label: "x".into(),
            periods: vec![
                PeriodRecord {
                    index: 0,
                    lc_arrived: 10,
                    lc_completed: 9,
                    lc_satisfied: 8,
                    be_completed: 3,
                    abandoned: 1,
                    util_overall: 0.5,
                    util_lc: 0.2,
                    util_be: 0.3,
                    lc_p95_ms: 123.45,
                },
                PeriodRecord::default(),
            ],
            qos_satisfaction: 0.8,
            be_throughput: 3,
            abandoned: 1,
            mean_utilization: 0.5,
            lc_p95_ms: 123.45,
            lc_arrived: 10,
            lc_completed: 9,
            dvpa_ops: 0,
            be_evictions: 0,
        };
        let csv = r.periods_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("period,lc_arrived"));
        assert!(lines[1].starts_with("0,10,9,8,3,1,0.5000"));
    }
}

//! Run reports: the numbers every §7 figure is drawn from.

use tango_faults::FaultSummary;
use tango_metrics::PeriodRecord;

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label (policy pairing / system name).
    pub label: String,
    /// Per-800ms-period rows.
    pub periods: Vec<PeriodRecord>,
    /// QoS-guarantee satisfaction rate φ (Eq. 1), against arrivals.
    pub qos_satisfaction: f64,
    /// BE long-term throughput φ′ (completed BE requests).
    pub be_throughput: u64,
    /// Total abandoned requests.
    pub abandoned: u64,
    /// Mean overall resource utilization across sampled periods.
    pub mean_utilization: f64,
    /// p95 latency over all completed LC requests, ms.
    pub lc_p95_ms: f64,
    /// Total LC requests that arrived.
    pub lc_arrived: u64,
    /// Total LC requests completed.
    pub lc_completed: u64,
    /// D-VPA scaling operations performed (0 under the static allocator).
    pub dvpa_ops: u64,
    /// BE containers evicted by LC preemption.
    pub be_evictions: u64,
    /// Fault accounting: crashes, recoveries, downtime, rescheduled work,
    /// fault-window QoS violations. All zero on a calm-weather run.
    pub faults: FaultSummary,
    /// Pod migrations started by the defragmentation pass. Observational
    /// (excluded from the digest); zero whenever defrag is off.
    pub migrations_started: u64,
    /// Pod migrations that landed and resumed at their destination.
    pub migrations_completed: u64,
    /// Total KiB shipped across the edge→cloud boundary (placement
    /// payloads + migration checkpoints); zero without a cloud tier.
    pub cloud_egress_kib: u64,
}

/// Conservation audit over every request a run injected: each `Arrival`
/// must land in exactly one bucket. Produced by
/// `EdgeCloudSystem::run_audited`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunAudit {
    /// Requests injected by the trace.
    pub total: u64,
    /// Terminal: completed.
    pub completed: u64,
    /// Terminal: abandoned (queue deadline / patience).
    pub abandoned: u64,
    /// Terminal: failed (requeue budget exhausted).
    pub failed: u64,
    /// Non-terminal at the horizon (still queued, in flight or running).
    pub pending: u64,
    /// Requests whose state says "running on node X" while X is down —
    /// must be zero: crashes interrupt everything on the node.
    pub running_on_down_nodes: u64,
    /// Requests mid-migration at the horizon (subset of `pending`): their
    /// residual work rides the in-flight checkpoint, attached to neither
    /// endpoint, so crashes on either side can't lose or duplicate them.
    pub in_migration: u64,
}

impl RunAudit {
    /// Every request is in exactly one bucket.
    pub fn conserved(&self) -> bool {
        self.total == self.completed + self.abandoned + self.failed + self.pending
    }
}

impl RunReport {
    /// Deterministic 64-bit digest over the report's behavioral fields
    /// (floats folded in bitwise, periods and fault ledger included).
    /// Two reports digest equal iff those fields are bit-identical — the
    /// refactor-equivalence golden test pins this value for a seeded run
    /// so any behavioral drift in the staged runtime is caught exactly.
    /// Purely observational additions (`detection_lag_ms`,
    /// `proxy_fallbacks`, the migration counters and egress totals) are
    /// deliberately *excluded* so pinned goldens survive control-plane
    /// and migration instrumentation; they get their own assertions in
    /// the ctrl-plane and migration tests.
    pub fn digest(&self) -> u64 {
        // FNV-1a, the same deterministic fold the bench harness stamps
        // its JSON with. No dependence on label text: the digest pins
        // behavior, not naming.
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        put(self.qos_satisfaction.to_bits());
        put(self.be_throughput);
        put(self.abandoned);
        put(self.mean_utilization.to_bits());
        put(self.lc_p95_ms.to_bits());
        put(self.lc_arrived);
        put(self.lc_completed);
        put(self.dvpa_ops);
        put(self.be_evictions);
        let f = &self.faults;
        for v in [
            f.node_crashes,
            f.node_recoveries,
            f.master_failovers,
            f.links_degraded,
            f.links_restored,
            f.partitions,
            f.heals,
            f.lc_interrupted,
            f.be_interrupted,
            f.wait_drained,
            f.bounced_deliveries,
            f.rescheduled,
            f.down_node_dispatches,
            f.total_downtime.as_micros(),
            f.fault_qos_violations,
        ] {
            put(v);
        }
        put(self.periods.len() as u64);
        for p in &self.periods {
            put(p.index);
            put(p.lc_arrived);
            put(p.lc_completed);
            put(p.lc_satisfied);
            put(p.be_completed);
            put(p.abandoned);
            put(p.util_overall.to_bits());
            put(p.util_lc.to_bits());
            put(p.util_be.to_bits());
            put(p.lc_p95_ms.to_bits());
            put(p.fault_qos_violations);
        }
        h
    }

    /// Per-period series as CSV (header + one row per 800 ms period),
    /// ready for external plotting.
    pub fn periods_csv(&self) -> String {
        let mut out = String::from(
            "period,lc_arrived,lc_completed,lc_satisfied,be_completed,abandoned,util_overall,util_lc,util_be,lc_p95_ms,fault_qos_violations,detection_lag_ms,proxy_fallbacks,migrations_started,migrations_completed,cloud_egress_kib\n",
        );
        for p in &self.periods {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.2},{},{:.2},{},{},{},{}\n",
                p.index,
                p.lc_arrived,
                p.lc_completed,
                p.lc_satisfied,
                p.be_completed,
                p.abandoned,
                p.util_overall,
                p.util_lc,
                p.util_be,
                p.lc_p95_ms,
                p.fault_qos_violations,
                p.detection_lag_ms,
                p.proxy_fallbacks,
                p.migrations_started,
                p.migrations_completed,
                p.cloud_egress_kib
            ));
        }
        out
    }

    /// Write the per-period CSV to a file.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.periods_csv())
    }

    /// Render a compact one-line summary. Fault metrics are appended only
    /// when the run actually saw faults.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: qos={:.3} thpt={} util={:.3} p95={:.1}ms abandoned={} (lc {}/{} done)",
            self.label,
            self.qos_satisfaction,
            self.be_throughput,
            self.mean_utilization,
            self.lc_p95_ms,
            self.abandoned,
            self.lc_completed,
            self.lc_arrived,
        );
        let f = &self.faults;
        if f.node_crashes > 0 || f.links_degraded > 0 || f.partitions > 0 {
            s.push_str(&format!(
                " [faults: crashes={} downtime={:.0}ms rescheduled={} fault_qos_viol={}]",
                f.node_crashes,
                f.total_downtime.as_millis_f64(),
                f.rescheduled,
                f.fault_qos_violations,
            ));
        }
        if self.migrations_started > 0 {
            s.push_str(&format!(
                " [migrations: {}/{} landed egress={}KiB]",
                self.migrations_completed, self.migrations_started, self.cloud_egress_kib,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::SimTime;

    fn base_report() -> RunReport {
        RunReport {
            label: "tango".into(),
            periods: vec![],
            qos_satisfaction: 0.95,
            be_throughput: 1234,
            abandoned: 5,
            mean_utilization: 0.61,
            lc_p95_ms: 212.5,
            lc_arrived: 1000,
            lc_completed: 990,
            dvpa_ops: 10,
            be_evictions: 2,
            faults: FaultSummary::default(),
            migrations_started: 0,
            migrations_completed: 0,
            cloud_egress_kib: 0,
        }
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = base_report().summary();
        assert!(s.contains("tango"));
        assert!(s.contains("0.950"));
        assert!(s.contains("1234"));
        // calm-weather run: no fault block
        assert!(!s.contains("faults:"));
    }

    #[test]
    fn summary_surfaces_recovery_metrics_when_faults_happened() {
        let mut r = base_report();
        r.faults.node_crashes = 3;
        r.faults.rescheduled = 17;
        r.faults.total_downtime = SimTime::from_millis(2_500);
        r.faults.fault_qos_violations = 4;
        let s = r.summary();
        assert!(s.contains("crashes=3"));
        assert!(s.contains("downtime=2500ms"));
        assert!(s.contains("rescheduled=17"));
        assert!(s.contains("fault_qos_viol=4"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = RunReport {
            label: "x".into(),
            periods: vec![
                PeriodRecord {
                    index: 0,
                    lc_arrived: 10,
                    lc_completed: 9,
                    lc_satisfied: 8,
                    be_completed: 3,
                    abandoned: 1,
                    util_overall: 0.5,
                    util_lc: 0.2,
                    util_be: 0.3,
                    lc_p95_ms: 123.45,
                    fault_qos_violations: 2,
                    detection_lag_ms: 150.0,
                    proxy_fallbacks: 4,
                    migrations_started: 2,
                    migrations_completed: 1,
                    cloud_egress_kib: 64,
                },
                PeriodRecord::default(),
            ],
            qos_satisfaction: 0.8,
            be_throughput: 3,
            abandoned: 1,
            mean_utilization: 0.5,
            lc_p95_ms: 123.45,
            lc_arrived: 10,
            lc_completed: 9,
            dvpa_ops: 0,
            be_evictions: 0,
            faults: FaultSummary::default(),
            migrations_started: 2,
            migrations_completed: 1,
            cloud_egress_kib: 64,
        };
        let csv = r.periods_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("period,lc_arrived"));
        assert!(lines[0]
            .ends_with("proxy_fallbacks,migrations_started,migrations_completed,cloud_egress_kib"));
        assert!(lines[1].starts_with("0,10,9,8,3,1,0.5000"));
        assert!(lines[1].ends_with(",2,150.00,4,2,1,64"));
    }

    #[test]
    fn audit_conservation_accounts_every_bucket() {
        let mut a = RunAudit {
            total: 10,
            completed: 6,
            abandoned: 2,
            failed: 1,
            pending: 1,
            running_on_down_nodes: 0,
            in_migration: 0,
        };
        assert!(a.conserved());
        a.pending = 0;
        assert!(!a.conserved());
    }
}

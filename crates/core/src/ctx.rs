//! The typed borrow-view the stage modules operate on.
//!
//! `EdgeCloudSystem` owns all state; for each event it splits itself into
//! a [`SystemCtx`] — one field-level mutable borrow per subsystem — and
//! hands that to the stage function that owns the event. The borrow rules
//! are the architecture:
//!
//! * **Shared substrate** (`cfg`, `catalog`, `topology`, `nodes`,
//!   `clusters`, `store`, `detector`, `reassurer`, `counters`,
//!   `allocator`) is visible to every stage; the field split lets a stage
//!   hold, say, `&mut nodes` and `&mut detector` simultaneously without a
//!   `&mut self` free-for-all.
//! * **Stage-owned state** (`lifecycle`, `dispatch`, `sync`, `fault`)
//!   belongs to one stage module; other stages may read or update it only
//!   through that module's `pub(crate)` functions (e.g. dispatch calls
//!   `lifecycle::requeue_or_abandon`, never touches `requests` directly
//!   from its own logic).
//! * **Trace** is an optional sink; `SystemCtx::emit` is the only
//!   emission point and builds events lazily, so an untraced run pays a
//!   single branch per hook.

use crate::ctrl_rt::CtrlState;
use crate::dispatch::DispatchState;
use crate::lifecycle::LifecycleState;
use crate::runtime::{Allocator, ClusterRt};
use crate::sync_loop::SyncState;
use tango_faults::FaultState;
use tango_hrm::Reassurer;
use tango_kube::Node;
use tango_metrics::{ExperimentCounters, QosDetector, StateStorage, TraceEvent, TraceSink};
use tango_net::NetworkTopology;
use tango_types::SimTime;
use tango_workload::ServiceCatalog;

/// Field-split view over one [`EdgeCloudSystem`](crate::EdgeCloudSystem),
/// alive for the duration of one event. Constructed only by the event
/// router; stage modules receive `&mut SystemCtx` and communicate through
/// it.
pub struct SystemCtx<'a> {
    /// Run configuration (immutable for the whole run).
    pub(crate) cfg: &'a crate::config::TangoConfig,
    /// Service catalog (immutable for the whole run).
    pub(crate) catalog: &'a ServiceCatalog,
    /// WAN/LAN topology; mutated only by the fault stage (degradations,
    /// partitions).
    pub(crate) topology: &'a mut NetworkTopology,
    /// All nodes, masters and workers, indexed by `NodeId`.
    pub(crate) nodes: &'a mut Vec<Node>,
    /// Per-cluster control-plane records, indexed by `ClusterId`.
    pub(crate) clusters: &'a mut Vec<ClusterRt>,
    /// The state storage masters read candidate views from.
    pub(crate) store: &'a mut StateStorage,
    /// Per-(node, service) QoS latency windows.
    pub(crate) detector: &'a mut QosDetector,
    /// Algorithm 1 re-assurance (None = ablated off).
    pub(crate) reassurer: &'a mut Option<Reassurer>,
    /// Experiment accounting (per-period series).
    pub(crate) counters: &'a mut ExperimentCounters,
    /// Node-level admission/allocation.
    pub(crate) allocator: &'a mut Allocator,
    /// Lifecycle stage state (requests, reservations, node wait queues).
    pub(crate) lifecycle: &'a mut LifecycleState,
    /// Dispatch stage state (policy backends, central BE queue).
    pub(crate) dispatch: &'a mut DispatchState,
    /// Sync stage scratch (per-node draft buffer).
    pub(crate) sync: &'a mut SyncState,
    /// Fault runtime state (down flags, crash epochs, ledger).
    pub(crate) fault: &'a mut FaultState,
    /// Control-plane state (state mirror, keep-alive detector, proxy
    /// accounting).
    pub(crate) ctrl: &'a mut CtrlState,
    /// Migration stage state (in-flight transfers, defrag cadence,
    /// cloud egress accounting).
    pub(crate) migration: &'a mut crate::migration::MigrationState,
    /// Deterministic worker pool for the embarrassingly-parallel phases.
    pub(crate) pool: &'a tango_par::Pool,
    /// Run horizon (completions projected past it are never scheduled).
    pub(crate) horizon: SimTime,
    /// Optional stage-boundary trace sink.
    pub(crate) trace: Option<&'a mut (dyn TraceSink + Send)>,
}

impl SystemCtx<'_> {
    /// Emit a trace event if a sink is attached. The event is built
    /// lazily so untraced runs pay only this branch.
    #[inline]
    pub(crate) fn emit(&mut self, at: SimTime, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(at, build());
        }
    }
}

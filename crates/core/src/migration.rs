//! Migration stage: live BE pod migration and the periodic
//! defragmentation pass (the KubeDSM direction).
//!
//! Every `DefragConfig::every_n_ticks` sync ticks the stage snapshots all
//! live workers into [`MigrationCandidate`]s and asks the configured
//! [`MigrationPlanner`] for a batch of moves. Executing a move is
//! **detach-at-initiation**: the pod's residual work leaves the source
//! node the instant the transfer starts, the request enters
//! `RequestState::Migrating { src, dst, done_at }`, and a
//! [`Event::MigrateArrive`] fires when the checkpoint lands. The transfer
//! time is distance-honest: the source node's `snapshot_dynamic` byte
//! size (its checkpoint stream) over the `src → dst` link.
//!
//! Crash-safety is by construction:
//! * **source crashes mid-transfer** — the work already left the node, so
//!   the crash interrupts nothing of it; the in-flight entry survives and
//!   the pod lands at its destination on time;
//! * **destination crashes mid-transfer** — the arrival bounces on the
//!   crash-epoch check (exactly like a `Deliver`) and the request goes
//!   back to its scheduler: never lost, never duplicated;
//! * **destination filled up meanwhile** — admission fails and the pod
//!   restarts via its scheduler (§4.1 restart semantics).
//!
//! Egress accounting: every KiB that crosses the edge→cloud boundary —
//! BE placement payloads and migration checkpoints alike — is charged
//! against the optional [`CloudConfig::egress_budget_kib`]; exhausting it
//! structurally removes cloud rows from every candidate view.
//!
//! [`CloudConfig::egress_budget_kib`]: crate::config::CloudConfig::egress_budget_kib

use crate::config::TangoConfig;
use crate::ctx::SystemCtx;
use crate::lifecycle;
use crate::system::Event;
use tango_sched::{
    KubeDsm, MigratablePod, MigrationCandidate, MigrationDecision, MigrationPlanner,
};
use tango_snap::SnapWriter;
use tango_types::{
    ClusterId, FxHashMap, NodeId, RequestId, RequestState, Resources, ServiceId, SimTime,
};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// One pod checkpoint in flight between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InFlight {
    /// Service type (the destination admits into its container).
    pub(crate) service: ServiceId,
    /// Effective demand it charged on the source.
    pub(crate) demand: Resources,
    /// Residual work carried over, millicore-milliseconds.
    pub(crate) remaining_work: f64,
    /// Where it detached from.
    pub(crate) src: NodeId,
    /// Where it resumes.
    pub(crate) dst: NodeId,
    /// Checkpoint size billed to the transfer (and to egress when the
    /// destination is the cloud tier).
    pub(crate) payload_kib: u64,
    /// When the transfer lands.
    pub(crate) done_at: SimTime,
}

/// State owned by the migration stage.
pub struct MigrationState {
    /// The cloud tier's cluster id, when one is attached.
    pub(crate) cloud: Option<ClusterId>,
    /// Egress budget in KiB (`None` = unmetered).
    pub(crate) budget_kib: Option<u64>,
    /// Total KiB charged across the edge→cloud boundary so far.
    pub(crate) egress_kib: u64,
    /// Defrag cadence in sync ticks (0 when defrag is off).
    pub(crate) every_n_ticks: u32,
    /// Migration batch limit per pass.
    pub(crate) max_moves: usize,
    /// Sync ticks since the last pass.
    pub(crate) ticks: u32,
    /// The batch planner (`None` = defrag off).
    pub(crate) planner: Option<Box<dyn MigrationPlanner + Send>>,
    /// Pod checkpoints currently in flight, by request id.
    pub(crate) in_flight: FxHashMap<RequestId, InFlight>,
}

impl MigrationState {
    /// Build the stage from the run configuration. `cloud_cluster` is the
    /// cluster id the builder attached the cloud tier under.
    pub(crate) fn from_config(cfg: &TangoConfig, cloud_cluster: Option<ClusterId>) -> Self {
        let (every_n_ticks, max_moves, planner) = match &cfg.defrag {
            Some(d) => (
                d.every_n_ticks.max(1),
                d.max_moves,
                Some(Box::new(KubeDsm {
                    hot_threshold: d.hot_threshold,
                    cold_threshold: d.cold_threshold,
                }) as Box<dyn MigrationPlanner + Send>),
            ),
            None => (0, 0, None),
        };
        MigrationState {
            cloud: cloud_cluster,
            budget_kib: cfg.cloud.as_ref().and_then(|c| c.egress_budget_kib),
            egress_kib: 0,
            every_n_ticks,
            max_moves,
            ticks: 0,
            planner,
            in_flight: FxHashMap::default(),
        }
    }

    /// Whether the cloud tier is still accepting new work (budget not
    /// exhausted). Meaningless when no tier is attached.
    pub(crate) fn cloud_open(&self) -> bool {
        self.budget_kib.is_none_or(|b| self.egress_kib < b)
    }

    /// The candidate-view gate: the cloud cluster and whether its rows
    /// are currently admissible. Part of `ViewInputs`, so membership
    /// stays a pure function of the inputs (the `set_verify` invariant).
    pub(crate) fn cloud_gate(&self) -> Option<(ClusterId, bool)> {
        self.cloud.map(|c| (c, self.cloud_open()))
    }
}

/// Charge `kib` of edge→cloud egress. Crossing the budget structurally
/// removes cloud rows from every candidate view — a one-way flip, since
/// egress only accumulates.
pub(crate) fn charge_egress(ctx: &mut SystemCtx<'_>, now: SimTime, kib: u64) {
    let was_open = ctx.migration.cloud_open();
    ctx.migration.egress_kib += kib;
    ctx.counters.on_cloud_egress(now, kib);
    if was_open && !ctx.migration.cloud_open() {
        ctx.dispatch.views.invalidate_structure();
    }
}

/// The defragmentation pass, called once per `Sync` tick (no-op unless
/// configured and due). Runs after the sync phase has advanced every live
/// node to `now`, so candidate utilization is current.
pub(crate) fn defrag_tick(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    if ctx.migration.planner.is_none() {
        return;
    }
    ctx.migration.ticks += 1;
    if ctx.migration.ticks < ctx.migration.every_n_ticks {
        return;
    }
    ctx.migration.ticks = 0;
    let now = sched.now();

    // Candidate view over every live worker, node-id order (nodes were
    // advanced by the sync phase; crashed and undetected-dead nodes are
    // excluded — a planner must not move pods onto or off of them).
    let cloud = ctx.migration.cloud;
    let cloud_open = ctx.migration.cloud_open();
    let mut view: Vec<MigrationCandidate> = Vec::new();
    for node in ctx.nodes.iter() {
        if node.is_master || ctx.fault.is_down(node.id) || ctx.fault.is_phys_down(node.id) {
            continue;
        }
        let is_cloud = Some(node.cluster) == cloud;
        if is_cloud && !cloud_open {
            continue; // budget exhausted: the tier takes no new pods
        }
        let available_be = node
            .idle()
            .saturating_sub(&ctx.lifecycle.reserved.get(node.id));
        view.push(MigrationCandidate {
            node: node.id,
            cluster: node.cluster,
            total: node.capacity(),
            available_be,
            utilization: node.utilization(),
            is_cloud,
            alive: true,
            be_pods: node
                .running_be_pods()
                .map(|(request, service, demand)| MigratablePod {
                    request,
                    service,
                    demand,
                })
                .collect(),
        });
    }

    let max_moves = ctx.migration.max_moves;
    let mut planner = ctx.migration.planner.take().expect("checked above");
    let decisions = planner.plan(&view, max_moves);
    ctx.migration.planner = Some(planner);
    for d in decisions {
        execute_migration(ctx, d, now, sched);
    }
}

/// Start one planned migration: measure the checkpoint, detach the pod,
/// mark the request `Migrating`, and schedule the arrival. Decisions
/// whose endpoints died or whose pod finished since planning are vetoed
/// silently.
fn execute_migration(
    ctx: &mut SystemCtx<'_>,
    d: MigrationDecision,
    now: SimTime,
    sched: &mut Sched<'_>,
) {
    if ctx.fault.is_down(d.src)
        || ctx.fault.is_phys_down(d.src)
        || ctx.fault.is_down(d.dst)
        || ctx.fault.is_phys_down(d.dst)
    {
        return;
    }
    let Some(req) = ctx.lifecycle.requests.get(&d.request) else {
        return;
    };
    if req.is_done() || !matches!(req.state, RequestState::Running { target } if target == d.src) {
        return;
    }
    let service = req.service;
    // Transfer payload: the source node's dynamic snapshot — the
    // checkpoint stream a live migration would actually ship — measured
    // before the pod detaches.
    let payload_kib = {
        let mut w = SnapWriter::new();
        ctx.nodes[d.src.index()].snapshot_dynamic(&mut w);
        (w.into_bytes().len() as u64).div_ceil(1024).max(1)
    };
    // Detach integrates progress to `now` first; a pod that completed at
    // exactly this instant is no longer detachable and the move is moot.
    let Some(rr) = ctx.nodes[d.src.index()].detach_request(d.request, now) else {
        return;
    };
    let src_cluster = ctx.nodes[d.src.index()].cluster;
    let dst_cluster = ctx.nodes[d.dst.index()].cluster;
    let done_at = now
        + ctx
            .topology
            .transfer_time(src_cluster, dst_cluster, payload_kib);
    if let Some(r) = ctx.lifecycle.requests.get_mut(&d.request) {
        r.mark_migrating(d.src, d.dst, done_at);
    }
    ctx.counters.on_migration_started(now);
    if Some(dst_cluster) == ctx.migration.cloud && Some(src_cluster) != ctx.migration.cloud {
        charge_egress(ctx, now, payload_kib);
    }
    ctx.migration.in_flight.insert(
        d.request,
        InFlight {
            service,
            demand: rr.demand,
            remaining_work: rr.remaining_work,
            src: d.src,
            dst: d.dst,
            payload_kib,
            done_at,
        },
    );
    sched.schedule_at(
        done_at,
        Event::MigrateArrive(d.request, d.dst, ctx.fault.epoch(d.dst)),
    );
    // The source's completion projections changed with the detach.
    lifecycle::schedule_node_check(ctx, d.src, sched);
}

/// `MigrateArrive`: the pod checkpoint reached its destination (or
/// bounced off a crash that happened while it was in flight).
pub(crate) fn on_migrate_arrive(
    ctx: &mut SystemCtx<'_>,
    rid: RequestId,
    dst: NodeId,
    epoch: u64,
    sched: &mut Sched<'_>,
) {
    let now = sched.now();
    let Some(mig) = ctx.migration.in_flight.remove(&rid) else {
        return; // stale arrival (already handled elsewhere)
    };
    debug_assert_eq!(mig.dst, dst);
    let Some(req) = ctx.lifecycle.requests.get(&rid) else {
        return;
    };
    if req.is_done() {
        return;
    }
    if ctx.fault.is_down(dst) || ctx.fault.epoch(dst) != epoch {
        // Destination crashed (or crash-recovered) while the checkpoint
        // was in flight. The work already left the source, so it simply
        // restarts from its scheduler: never lost, never duplicated.
        ctx.fault.summary.bounced_deliveries += 1;
        ctx.fault.summary.rescheduled += 1;
        lifecycle::requeue_or_abandon(ctx, rid, now);
        return;
    }
    match ctx.allocator.try_admit_migrated(
        &mut ctx.nodes[dst.index()],
        rid,
        mig.service,
        mig.demand,
        mig.remaining_work,
        now,
    ) {
        Ok(()) => {
            if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                r.mark_running(dst, now);
            }
            ctx.counters.on_migration_completed(now);
            lifecycle::schedule_node_check(ctx, dst, sched);
            // A committed migration moved placement structure out from
            // under every cached candidate view.
            ctx.dispatch.views.invalidate_structure();
        }
        Err(_) => {
            // The destination filled up (or died undetected) while the
            // checkpoint was in flight: veto — the pod restarts via its
            // scheduler with its nominal work (§4.1 restart semantics).
            lifecycle::requeue_or_abandon(ctx, rid, now);
        }
    }
}

//! Train-mode episode hooks: run the system as one episode of an RL
//! training loop, carrying the learned BE policy across episodes.
//!
//! The training harness (`tango-train`) rebuilds a fresh
//! [`EdgeCloudSystem`] per episode from a generated scenario config —
//! queues empty, nodes clean, trace re-seeded — and threads exactly one
//! thing through: the BE scheduler's learner blob (network weights,
//! optimizer moments, RNG streams, replay ring). These hooks are that
//! thread: inject a blob before the episode, extract it after, and
//! variants of the run/finish drivers that hand the blob back alongside
//! the report.

use crate::report::RunReport;
use crate::snapshot::{Checkpoint, CheckpointPolicy, Resumed};
use crate::system::{EdgeCloudSystem, Event};
use std::collections::VecDeque;
use tango_simcore::Engine;
use tango_snap::SnapError;
use tango_types::SimTime;

impl EdgeCloudSystem {
    /// Overlay a BE policy blob captured by
    /// [`snapshot_be_policy`](Self::snapshot_be_policy) onto the freshly
    /// built backend — the episode-reset hook: everything else about the
    /// system starts clean, the learner continues where it left off.
    pub fn restore_be_policy(&mut self, blob: &[u8]) -> Result<(), SnapError> {
        self.dispatch
            .be
            .restore_state(blob)
            .map_err(SnapError::Unsupported)
    }

    /// The BE policy's complete learner state.
    pub fn snapshot_be_policy(&self) -> Result<Vec<u8>, SnapError> {
        self.dispatch
            .be
            .snapshot_state()
            .map_err(SnapError::Unsupported)
    }

    /// Run one training episode: like [`run`](Self::run), but hand back
    /// the BE policy blob as trained by this episode's traffic.
    pub fn run_episode(
        mut self,
        duration: SimTime,
        label: &str,
    ) -> Result<(RunReport, Vec<u8>), SnapError> {
        let mut engine: Engine<Event> = Engine::new();
        self.prime(&mut engine, duration);
        engine.run_until(&mut self, duration);
        let blob = self.snapshot_be_policy()?;
        Ok((self.finish(label), blob))
    }

    /// Run one training episode with mid-episode whole-world checkpoints
    /// (same cadence contract as
    /// [`run_checkpointed`](Self::run_checkpointed)): returns the report,
    /// the trained BE policy blob, and the retained checkpoints. Each
    /// checkpoint embeds the policy blob via the dispatch section, so
    /// restoring one resumes training mid-episode bit-identically.
    pub fn run_episode_checkpointed(
        mut self,
        duration: SimTime,
        label: &str,
        policy: CheckpointPolicy,
    ) -> Result<(RunReport, Vec<u8>, Vec<Checkpoint>), SnapError> {
        let mut engine: Engine<Event> = Engine::new();
        self.prime(&mut engine, duration);
        let step = SimTime::from_micros(
            self.cfg.sync_interval.as_micros() * policy.every_n_ticks.max(1) as u64,
        );
        let mut checkpoints: VecDeque<Checkpoint> = VecDeque::new();
        let mut at = step;
        while at < duration {
            engine.run_until(&mut self, at);
            checkpoints.push_back(Checkpoint {
                at,
                bytes: self.snapshot(&engine)?,
            });
            if policy.keep_last_k > 0 && checkpoints.len() > policy.keep_last_k {
                checkpoints.pop_front();
            }
            at += step;
        }
        engine.run_until(&mut self, duration);
        let blob = self.snapshot_be_policy()?;
        Ok((self.finish(label), blob, checkpoints.into()))
    }
}

impl Resumed {
    /// Finish a restored episode and hand back the BE policy blob along
    /// with the report — the resume path of
    /// [`EdgeCloudSystem::run_episode_checkpointed`].
    pub fn finish_episode(mut self, label: &str) -> Result<(RunReport, Vec<u8>), SnapError> {
        let horizon = self.sys.horizon;
        self.engine.run_until(&mut self.sys, horizon);
        let blob = self.sys.snapshot_be_policy()?;
        Ok((self.sys.finish(label), blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{testutil::small_cfg, BePolicy};

    fn train_cfg() -> crate::config::TangoConfig {
        let mut cfg = small_cfg();
        cfg.be_policy = BePolicy::Td3;
        cfg.workload.be_rps = 8.0;
        cfg
    }

    #[test]
    fn blob_thread_reproduces_continuous_run() {
        // two half-duration episodes threading the blob must leave the
        // learner in a deterministic state: repeating the same pair of
        // episodes yields byte-identical blobs
        let d = SimTime::from_secs(1);
        let run_pair = || {
            let (_, blob1) = EdgeCloudSystem::new(train_cfg())
                .run_episode(d, "ep1")
                .unwrap();
            let mut sys2 = EdgeCloudSystem::new(train_cfg());
            sys2.restore_be_policy(&blob1).unwrap();
            let (report, blob2) = sys2.run_episode(d, "ep2").unwrap();
            (report.digest(), blob2)
        };
        let (da, ba) = run_pair();
        let (db, bb) = run_pair();
        assert_eq!(da, db);
        assert_eq!(ba, bb);
    }

    #[test]
    fn mid_episode_checkpoint_resumes_to_same_blob() {
        let d = SimTime::from_secs(2);
        let (report, blob, checkpoints) = EdgeCloudSystem::new(train_cfg())
            .run_episode_checkpointed(d, "ep", CheckpointPolicy::default())
            .unwrap();
        assert!(!checkpoints.is_empty());
        let mid = &checkpoints[checkpoints.len() / 2];
        let resumed = EdgeCloudSystem::restore(train_cfg(), &mid.bytes).unwrap();
        let (r2, blob2) = resumed.finish_episode("ep").unwrap();
        assert_eq!(r2.digest(), report.digest());
        assert_eq!(blob2, blob);
    }
}

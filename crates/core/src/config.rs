//! System configuration and the paper's experiment presets.

pub use tango_ctrl::KeepAliveConfig;
use tango_faults::FaultPlan;
use tango_gnn::EncoderKind;
use tango_hrm::ReassuranceConfig;
use tango_net::TopologyConfig;
use tango_types::{Resources, SimTime};
use tango_workload::{Pattern, PatternKind};

/// Which LC traffic-dispatch policy to run (Fig. 11(a,b), Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcPolicy {
    /// The paper's DSS-LC (Alg. 2).
    DssLc,
    /// Lowest-load greedy.
    LoadGreedy,
    /// K8s default round-robin.
    KsNative,
    /// Weighted scoring \[42\].
    Scoring,
    /// DSACO-style distributed SAC offloading \[34\].
    Dsaco,
}

impl LcPolicy {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            LcPolicy::DssLc => "dss-lc",
            LcPolicy::LoadGreedy => "load-greedy",
            LcPolicy::KsNative => "k8s-native",
            LcPolicy::Scoring => "scoring",
            LcPolicy::Dsaco => "dsaco",
        }
    }
}

/// Which BE traffic-dispatch policy to run (Fig. 11(c,d), Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BePolicy {
    /// The paper's DCG-BE (Alg. 3) with a chosen GNN structure.
    DcgBe(EncoderKind),
    /// GNN-SAC baseline.
    GnnSac,
    /// TD3 continuous-action scheduler: placement plus per-request
    /// CPU/memory grant sizing in one action.
    Td3,
    /// Lowest-load greedy.
    LoadGreedy,
    /// K8s default round-robin.
    KsNative,
}

impl BePolicy {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            BePolicy::DcgBe(_) => "dcg-be",
            BePolicy::GnnSac => "gnn-sac",
            BePolicy::Td3 => "td3-be",
            BePolicy::LoadGreedy => "load-greedy",
            BePolicy::KsNative => "k8s-native",
        }
    }
}

/// Node-level resource allocation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// HRM: regulations + D-VPA elastic limits (§4).
    Hrm,
    /// K8s-native fixed limits ("turbulent allocation").
    Static,
}

/// Workload shape for a run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which §7.1 pattern.
    pub pattern: PatternKind,
    /// Mean LC requests/second across the system.
    pub lc_rps: f64,
    /// Mean BE requests/second across the system.
    pub be_rps: f64,
    /// Apply the Fig. 1 diurnal modulation.
    pub diurnal: bool,
}

impl WorkloadSpec {
    /// Build the trace [`Pattern`].
    pub fn pattern(&self) -> Pattern {
        Pattern::new(self.pattern, self.lc_rps, self.be_rps)
    }
}

/// Ablation switches for the design choices DESIGN.md calls out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ablations {
    /// DSS-LC routes its overload set over the λ-augmented graph
    /// (Eq. 7–8). Off = overflow stays queued at the master.
    pub dss_overflow_routing: bool,
    /// DCG-BE's policy-context filter c_t. Off = the agent may pick
    /// infeasible nodes and eat the bounce.
    pub dcg_context_filter: bool,
    /// η weight between short- and long-term BE reward (paper: 1.0).
    pub dcg_eta: f32,
}

impl Default for Ablations {
    fn default() -> Self {
        Ablations {
            dss_overflow_routing: true,
            dcg_context_filter: true,
            dcg_eta: 1.0,
        }
    }
}

/// The elastic cloud tier: one extra cluster of high-capacity,
/// high-RTT workers appended after the edge clusters. Cloud nodes are
/// schedulable BE targets (with distance-honest latency) and the
/// spill destination of the defragmentation pass; LC dispatch never
/// routes to them — an LC request's QoS budget cannot absorb the WAN
/// round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudConfig {
    /// Cloud worker count (one datacenter cluster).
    pub workers: usize,
    /// Per-cloud-worker capacity. Uniform — no heterogeneity jitter;
    /// datacenter fleets are homogeneous.
    pub worker_capacity: Resources,
    /// Base one-way edge→cloud latency before the distance term.
    pub one_way_base: SimTime,
    /// Extra one-way latency per km of edge-to-centroid distance (µs/km).
    pub us_per_km: f64,
    /// Uniform edge↔cloud link bandwidth, Mbps.
    pub bandwidth_mbps: u64,
    /// Optional egress-cost budget in KiB. Every BE payload placed on the
    /// cloud and every migration transfer into it is charged; once the
    /// budget is exhausted, cloud nodes stop appearing as scheduling
    /// targets (work already there finishes). `None` = unmetered.
    pub egress_budget_kib: Option<u64>,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            workers: 8,
            worker_capacity: Resources::new(16_000, 32_768, 10_000, 1_000_000),
            one_way_base: SimTime::from_millis(40),
            us_per_km: 5.0,
            bandwidth_mbps: 1_000,
            egress_budget_kib: None,
        }
    }
}

/// The migration-aware defragmentation pass: every `every_n_ticks` sync
/// ticks the configured [`tango_sched::MigrationPlanner`] sees all
/// workers and plans batch BE migrations — evacuating hot edge nodes
/// into cold edge nodes first and spilling the remainder to the cloud
/// tier when one is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragConfig {
    /// Run the pass every N sync ticks (values below 1 behave as 1).
    pub every_n_ticks: u32,
    /// Migration batch limit per pass.
    pub max_moves: usize,
    /// Workers at or above this demand utilization are evacuation
    /// sources.
    pub hot_threshold: f64,
    /// Workers below this demand utilization are repack receivers.
    pub cold_threshold: f64,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            every_n_ticks: 4,
            max_moves: 16,
            hot_threshold: 0.85,
            cold_threshold: 0.6,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct TangoConfig {
    /// Number of edge-cloud clusters.
    pub clusters: usize,
    /// Worker count range per cluster (min, max) — the paper's virtual
    /// clusters have 3–20 workers to reflect edge heterogeneity.
    pub workers_per_cluster: (usize, usize),
    /// Worker node capacity (jittered ±25% per node for heterogeneity).
    pub worker_capacity: Resources,
    /// Master node capacity.
    pub master_capacity: Resources,
    /// Network topology parameters.
    pub topology: TopologyConfig,
    /// LC dispatch policy.
    pub lc_policy: LcPolicy,
    /// BE dispatch policy.
    pub be_policy: BePolicy,
    /// Allocation mode.
    pub allocator: AllocatorKind,
    /// QoS re-assurance (None disables Algorithm 1 — the Fig. 10
    /// ablation).
    pub reassurance: Option<ReassuranceConfig>,
    /// Workload shape.
    pub workload: WorkloadSpec,
    /// Geo-nearby radius for LC dispatch (paper: 500 km).
    pub geo_radius_km: f64,
    /// Dispatch round interval per master.
    pub dispatch_interval: SimTime,
    /// Re-assurance tick interval (the 100 ms window cadence).
    pub reassure_interval: SimTime,
    /// State-storage sync / metrics sampling interval.
    pub sync_interval: SimTime,
    /// Reporting period (paper: 800 ms).
    pub period: SimTime,
    /// Queued LC requests older than this are abandoned.
    pub lc_patience: SimTime,
    /// Queued BE requests older than this are abandoned.
    pub be_patience: SimTime,
    /// Evicted/requeued more than this → failed.
    pub max_requeues: u32,
    /// Restrict dispatch to the local cluster (the CERES baseline's
    /// "local resource management only").
    pub local_only: bool,
    /// Ablation switches (all on by default).
    pub ablations: Ablations,
    /// Fault scenario (empty by default — a calm-weather run). Compiled
    /// into timed crash/recover/degrade events when the run starts.
    pub faults: FaultPlan,
    /// Elastic cloud tier. `None` (the default) keeps the pure edge
    /// system: no extra cluster, golden digests unchanged.
    pub cloud: Option<CloudConfig>,
    /// Migration-aware defragmentation pass. `None` (the default)
    /// disables batch migration entirely.
    pub defrag: Option<DefragConfig>,
    /// Keep-alive failure detection. `None` (the default) keeps the
    /// oracle model: the control plane learns of a crash the instant the
    /// fault plan fires it. `Some` makes crashes *physical* first — the
    /// control plane keeps scheduling onto the dead node until the
    /// detector accumulates enough missed sync-tick probes, and only the
    /// detector trip triggers rescheduling and reservation teardown.
    pub detection: Option<KeepAliveConfig>,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the deterministic parallel runtime
    /// (`tango-par`). Resolution order: the `TANGO_THREADS` environment
    /// variable, then this field, then `available_parallelism()`. Any
    /// value produces bit-identical results — it only changes wall-clock
    /// time.
    pub parallelism: Option<usize>,
}

impl TangoConfig {
    /// The physical-testbed preset (§6.1): 4 clusters × (1 master with
    /// 8 CPU/16 GB + 4 workers with 4 CPU/8 GB).
    pub fn physical_testbed() -> Self {
        TangoConfig {
            clusters: 4,
            workers_per_cluster: (4, 4),
            worker_capacity: Resources::new(4_000, 8_192, 1_000, 100_000),
            master_capacity: Resources::new(8_000, 16_384, 1_000, 200_000),
            topology: TopologyConfig {
                clusters: 4,
                // physical clusters sit in one metro region
                lat_range: (30.0, 33.0),
                lon_range: (118.0, 122.0),
                ..TopologyConfig::default()
            },
            lc_policy: LcPolicy::DssLc,
            be_policy: BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
            allocator: AllocatorKind::Hrm,
            reassurance: Some(ReassuranceConfig::default()),
            workload: WorkloadSpec {
                pattern: PatternKind::P3,
                lc_rps: 60.0,
                be_rps: 12.0,
                diurnal: false,
            },
            geo_radius_km: 500.0,
            dispatch_interval: SimTime::from_millis(10),
            reassure_interval: SimTime::from_millis(100),
            sync_interval: SimTime::from_millis(100),
            period: SimTime::from_millis(800),
            lc_patience: SimTime::from_millis(1_000),
            be_patience: SimTime::from_secs(60),
            max_requeues: 3,
            local_only: false,
            ablations: Ablations::default(),
            faults: FaultPlan::default(),
            cloud: None,
            defrag: None,
            detection: None,
            seed: 42,
            parallelism: None,
        }
    }

    /// The dual-space preset (§6.1): `clusters` clusters of 3–20 workers
    /// spread over a country-scale region. The paper runs 104 (4 physical
    /// plus 100 virtual); that is expensive in a unit-test context, so
    /// the cluster count is a parameter and the benches use the full
    /// scale.
    pub fn dual_space(clusters: usize) -> Self {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = clusters;
        cfg.workers_per_cluster = (3, 20);
        cfg.topology = TopologyConfig {
            clusters,
            ..TopologyConfig::default()
        };
        // Sized so that the busiest (Zipf-skewed) clusters saturate: the
        // regime where cross-cluster scheduling matters.
        cfg.workload.lc_rps = 150.0 * clusters as f64;
        cfg.workload.be_rps = 20.0 * clusters as f64;
        cfg
    }

    /// The full §6.1 evaluation scale: 104 clusters with the worker draw
    /// narrowed to (5, 13) so the whole system lands at the paper's
    /// ~1000 nodes. BE dispatch runs load-greedy here — the learning
    /// policy is orthogonal to runtime scale, and the non-learning preset
    /// keeps the scale snapshottable for the checkpoint/restore tests.
    pub fn paper_scale() -> Self {
        let mut cfg = TangoConfig::dual_space(104);
        cfg.workers_per_cluster = (5, 13);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg
    }

    /// The Tango system proper: DSS-LC + DCG-BE + HRM + re-assurance.
    pub fn as_tango(mut self) -> Self {
        self.lc_policy = LcPolicy::DssLc;
        self.be_policy = BePolicy::DcgBe(EncoderKind::Sage { p: 3 });
        self.allocator = AllocatorKind::Hrm;
        self.reassurance = Some(ReassuranceConfig::default());
        self.local_only = false;
        self
    }

    /// The CERES comparison point \[40\]: elastic *local* resource
    /// management, no cross-cluster traffic scheduling.
    pub fn as_ceres(mut self) -> Self {
        self.lc_policy = LcPolicy::KsNative;
        self.be_policy = BePolicy::KsNative;
        self.allocator = AllocatorKind::Hrm;
        self.reassurance = None;
        self.local_only = true;
        self
    }

    /// The DSACO comparison point \[34\]: intelligent distributed
    /// offloading, no mixed-workload resource management.
    pub fn as_dsaco(mut self) -> Self {
        self.lc_policy = LcPolicy::Dsaco;
        self.be_policy = BePolicy::LoadGreedy;
        self.allocator = AllocatorKind::Static;
        self.reassurance = None;
        self.local_only = false;
        self
    }

    /// Plain K8s: round-robin everything, static limits.
    pub fn as_k8s_native(mut self) -> Self {
        self.lc_policy = LcPolicy::KsNative;
        self.be_policy = BePolicy::KsNative;
        self.allocator = AllocatorKind::Static;
        self.reassurance = None;
        self
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// The small two-cluster configuration the core unit tests share:
    /// fast, deterministic, non-learning policies.
    pub(crate) fn small_cfg() -> TangoConfig {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 2;
        cfg.topology.clusters = 2;
        cfg.workload.lc_rps = 30.0;
        cfg.workload.be_rps = 4.0;
        // keep unit tests fast: non-learning policies by default
        cfg.lc_policy = LcPolicy::DssLc;
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_testbed_matches_paper() {
        let cfg = TangoConfig::physical_testbed();
        assert_eq!(cfg.clusters, 4);
        assert_eq!(cfg.workers_per_cluster, (4, 4));
        assert_eq!(cfg.worker_capacity.cpu_milli, 4_000);
        assert_eq!(cfg.master_capacity.memory_mib, 16_384);
        assert_eq!(cfg.period, SimTime::from_millis(800));
        assert_eq!(cfg.geo_radius_km, 500.0);
    }

    #[test]
    fn dual_space_is_heterogeneous() {
        let cfg = TangoConfig::dual_space(104);
        assert_eq!(cfg.clusters, 104);
        assert_eq!(cfg.workers_per_cluster, (3, 20));
        assert_eq!(cfg.topology.clusters, 104);
    }

    #[test]
    fn paper_scale_lands_near_a_thousand_nodes() {
        let cfg = TangoConfig::paper_scale();
        assert_eq!(cfg.clusters, 104);
        let sys = crate::EdgeCloudSystem::new(cfg);
        let n = sys.node_count();
        assert!(
            (950..=1050).contains(&n),
            "paper_scale built {n} nodes, wanted ~1000"
        );
    }

    #[test]
    fn baseline_presets_toggle_the_right_knobs() {
        let base = TangoConfig::physical_testbed();
        let tango = base.clone().as_tango();
        assert_eq!(tango.lc_policy, LcPolicy::DssLc);
        assert!(tango.reassurance.is_some());

        let ceres = base.clone().as_ceres();
        assert!(ceres.local_only);
        assert_eq!(ceres.allocator, AllocatorKind::Hrm);

        let dsaco = base.clone().as_dsaco();
        assert_eq!(dsaco.lc_policy, LcPolicy::Dsaco);
        assert_eq!(dsaco.allocator, AllocatorKind::Static);
        assert!(!dsaco.local_only);

        let k8s = base.as_k8s_native();
        assert_eq!(k8s.lc_policy, LcPolicy::KsNative);
        assert_eq!(k8s.allocator, AllocatorKind::Static);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(LcPolicy::DssLc.name(), "dss-lc");
        assert_eq!(BePolicy::GnnSac.name(), "gnn-sac");
        assert_eq!(BePolicy::Td3.name(), "td3-be");
        assert_eq!(BePolicy::DcgBe(EncoderKind::Gcn).name(), "dcg-be");
    }
}

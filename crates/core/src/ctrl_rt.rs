//! Control-plane runtime stage: keep-alive failure detection, the
//! cluster-state mirror refresh, and external-proxy accounting.
//!
//! This module is the bridge between the simulation core and the
//! `tango-ctrl` crate. It owns three hooks:
//!
//! * `keepalive_tick` runs at the **top** of every sync tick. Alive
//!   nodes answer their probe (heartbeat recorded, suspicion decays);
//!   physically-down-but-undetected nodes miss, and when the miss count
//!   trips the threshold the crash becomes *detected*: limbo work and
//!   node-waiting requests go back to the schedulers, reservations are
//!   wiped, candidate views rebuild, and the detection lag (sim-time from
//!   physical crash to trip) is recorded. With `cfg.detection = None`
//!   this is a no-op and faults stay oracle-driven.
//! * `after_sync` runs at the **end** of every sync tick. It folds new
//!   proxy fallbacks into the period counters and, when a mirror is
//!   attached, publishes a full-or-delta frame keyed on the candidate
//!   view cache's structure/value clocks — a calm tick publishes nothing.
//! * The [`EdgeCloudSystem`] attach methods wire a [`MirrorHandle`] or an
//!   external LC decision source ([`ProxyBackend`]) into a built system
//!   before `run`.

use crate::config::TangoConfig;
use crate::ctx::SystemCtx;
use crate::lifecycle;
use crate::system::EdgeCloudSystem;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tango_ctrl::{
    DecisionSource, HealthDetector, MirrorHandle, MirrorNode, ProxyBackend, ProxyStats,
};
use tango_metrics::TraceEvent;
use tango_types::{ClusterId, NodeId, RequestId, ServiceClass, SimTime};

/// Control-plane state owned by the system: the optional keep-alive
/// detector, the optional state mirror, and proxy fallback bookkeeping.
#[derive(Default)]
pub struct CtrlState {
    /// Attached state mirror, if any (`EdgeCloudSystem::attach_mirror`).
    pub(crate) mirror: Option<MirrorHandle>,
    /// Keep-alive detector, present iff `cfg.detection` is set.
    pub(crate) detector: Option<HealthDetector>,
    /// Stats handles of every attached [`ProxyBackend`], in attach order.
    pub(crate) proxy_stats: Vec<Arc<ProxyStats>>,
    /// Fallback total already folded into the period counters.
    pub(crate) fallbacks_seen: u64,
}

impl CtrlState {
    /// Build from the run configuration: a detector when
    /// `cfg.detection` is set, nothing attached otherwise.
    pub(crate) fn from_config(cfg: &TangoConfig, n_nodes: usize) -> Self {
        CtrlState {
            mirror: None,
            detector: cfg
                .detection
                .clone()
                .map(|kc| HealthDetector::new(kc, n_nodes)),
            proxy_stats: Vec::new(),
            fallbacks_seen: 0,
        }
    }
}

/// Keep-alive probe round at the top of a sync tick. No-op without a
/// detector (oracle fault model).
pub(crate) fn keepalive_tick(ctx: &mut SystemCtx<'_>, now: SimTime) {
    // Take the detector out so the loop can hand `ctx` to lifecycle
    // helpers without aliasing the ctrl borrow.
    let Some(mut det) = ctx.ctrl.detector.take() else {
        return;
    };
    for i in 0..ctx.nodes.len() {
        let node = NodeId(i as u32);
        if ctx.fault.is_down(node) {
            continue; // already detected; recovery resets suspicion
        }
        if !ctx.fault.is_phys_down(node) {
            ctx.nodes[i].record_heartbeat(now);
            det.observe_heartbeat(node);
            continue;
        }
        // Physically down, not yet detected: a missed probe.
        if det.observe_miss(node) && ctx.fault.mark_detected(node) {
            on_detected(ctx, node, now);
        }
    }
    ctx.ctrl.detector = Some(det);
}

/// The detector tripped on `node`: the control plane now knows about the
/// crash, so everything the oracle path does at crash time happens here.
fn on_detected(ctx: &mut SystemCtx<'_>, node: NodeId, now: SimTime) {
    let lag = ctx.fault.down_duration(node, now);
    ctx.counters.on_detection(now, lag);
    ctx.emit(now, || TraceEvent::Fault {
        kind: "detected",
        node: Some(node),
    });
    // Work interrupted by the physical crash was parked in limbo; it is
    // only now, at detection, that the schedulers get it back.
    for (class, rid) in ctx.fault.take_limbo(node) {
        match class {
            ServiceClass::Lc => ctx.fault.summary.lc_interrupted += 1,
            ServiceClass::Be => ctx.fault.summary.be_interrupted += 1,
        }
        ctx.fault.summary.rescheduled += 1;
        lifecycle::requeue_or_abandon(ctx, rid, now);
    }
    // Requests waiting *at* the node drain back to their origin queues.
    let waiting: Vec<RequestId> = ctx.lifecycle.node_wait[node.index()].drain(..).collect();
    ctx.fault.summary.wait_drained += waiting.len() as u64;
    ctx.fault.summary.rescheduled += waiting.len() as u64;
    for rid in waiting {
        lifecycle::requeue_or_abandon(ctx, rid, now);
    }
    ctx.lifecycle.reserved.clear_node(node);
    // The detected-down flag is a structural view input.
    ctx.dispatch.views.invalidate_structure();
}

/// End-of-sync control-plane bookkeeping: proxy fallback deltas into the
/// period counters, then a mirror frame if a mirror is attached.
pub(crate) fn after_sync(ctx: &mut SystemCtx<'_>, now: SimTime) {
    let total: u64 = ctx
        .ctrl
        .proxy_stats
        .iter()
        .map(|s| s.fallbacks.load(Ordering::Relaxed))
        .sum();
    let fresh = total.saturating_sub(ctx.ctrl.fallbacks_seen);
    if fresh > 0 {
        ctx.counters.on_proxy_fallbacks(now, fresh);
        ctx.ctrl.fallbacks_seen = total;
    }
    let Some(mirror) = ctx.ctrl.mirror.clone() else {
        return;
    };
    let mut rows = Vec::with_capacity(ctx.nodes.len());
    for node in ctx.nodes.iter() {
        let i = node.id.index();
        // Rows exist for every node from the first sync on; an
        // undetected-crashed node keeps its stale pre-crash row — the
        // mirror reflects what the control plane believes, not ground
        // truth.
        let (total, available, be_held, slack, pending, updated_at) = match ctx.store.row(i) {
            Some(r) => (
                r.total,
                r.available,
                r.be_held,
                r.slack.to_vec(),
                r.pending.to_vec(),
                r.updated_at,
            ),
            None => (
                node.capacity(),
                tango_types::Resources::ZERO,
                tango_types::Resources::ZERO,
                Vec::new(),
                Vec::new(),
                SimTime::ZERO,
            ),
        };
        rows.push(MirrorNode {
            node: node.id,
            cluster: node.cluster,
            is_master: node.is_master,
            total,
            available,
            be_held,
            reserved: ctx.lifecycle.reserved.get(node.id),
            slack,
            pending,
            updated_at,
            alive: !ctx.fault.is_down(node.id),
            last_heartbeat: node.last_heartbeat(),
        });
    }
    mirror.publish(
        now,
        ctx.dispatch.views.structure_clock(),
        ctx.dispatch.views.value_clock(),
        rows,
    );
}

impl EdgeCloudSystem {
    /// Attach a cluster-state mirror. From the next sync tick on, every
    /// tick publishes a versioned full-or-delta frame of the believed
    /// cluster state; calm ticks (no structural or value change since
    /// the last publish) publish nothing. Returns the shared read
    /// handle. Attaching a mirror never changes scheduling decisions.
    pub fn attach_mirror(&mut self) -> MirrorHandle {
        let handle = self.ctrl.mirror.get_or_insert_with(MirrorHandle::new);
        handle.clone()
    }

    /// Route `cluster`'s LC dispatch rounds through an external decision
    /// `source`, falling back to the configured local policy whenever the
    /// source declines, replies malformed, or blows the sim-time
    /// `deadline`. Returns the proxy's outcome counters. The wrapped
    /// backend cannot be checkpointed — snapshotting a run with a proxy
    /// attached fails loudly.
    pub fn attach_lc_proxy(
        &mut self,
        cluster: ClusterId,
        source: Box<dyn DecisionSource + Send>,
        deadline: SimTime,
    ) -> Arc<ProxyStats> {
        let ci = cluster.index();
        let inner = self.dispatch.lc.remove(ci);
        let proxy = ProxyBackend::new(inner, source, cluster, deadline);
        let stats = proxy.stats();
        self.dispatch.lc.insert(ci, Box::new(proxy));
        self.ctrl.proxy_stats.push(Arc::clone(&stats));
        stats
    }
}

//! Request lifecycle stage: arrival, queue aging, abandonment, delivery,
//! admission, completion, and the dispatcher's reservation table.
//!
//! Everything between "a trace request exists" and "the request reached a
//! terminal state" that is not a *scheduling decision* lives here. The
//! stage owns [`LifecycleState`]; dispatch and fault stages mutate
//! request state only through the `pub(crate)` functions of this module
//! (requeue, abandon, reservation release), which keeps the single-home
//! invariant — a request id sits in at most one queue system-wide — in
//! one file.

use crate::ctx::SystemCtx;
use crate::system::Event;
use std::collections::VecDeque;
use tango_metrics::TraceEvent;
use tango_types::{
    ClusterId, FxHashMap, NodeId, Request, RequestId, RequestOutcome, Resources, ServiceClass,
    ServiceId, SimTime,
};
use tango_workload::ServiceCatalog;

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// The dispatcher's in-flight reservation table: demands dispatched but
/// not yet resolved at their target, per node. Without it, the per-type
/// graphs (and the 100 ms snapshot staleness) would double-book nodes
/// within a dispatch round.
///
/// Dense by node id, with a per-node change stamp off a monotonic clock.
/// The stamps are the candidate-view cache's dirty bits: a view that saw
/// clock `c` refreshes exactly the rows whose `stamp > c` (reservations
/// are the only input that changes *between* structural invalidations).
/// A zero entry and an absent entry are indistinguishable — both read as
/// `Resources::ZERO` — matching the former map's semantics, where fully
/// released entries lingered at zero and crashes removed them outright.
#[derive(Debug, Default)]
pub(crate) struct ReservationTable {
    held: Vec<Resources>,
    stamps: Vec<u64>,
    clock: u64,
    /// Ring of `(clock, node)` change records, ascending by clock — the
    /// candidate-view cache's incremental dirty list. Bounded: once the
    /// ring wraps, readers whose last-seen clock predates the oldest
    /// retained record fall back to a full stamp scan.
    journal: std::collections::VecDeque<(u64, NodeId)>,
    /// Highest clock value already discarded from the journal.
    journal_base: u64,
}

/// Change records retained before the journal starts forgetting. At
/// paper scale a dispatch round touches a few hundred reservations, so
/// this covers dozens of rounds of reader lag.
const JOURNAL_CAP: usize = 32 * 1024;

impl ReservationTable {
    /// Table covering nodes `0..n`.
    pub(crate) fn new(n_nodes: usize) -> Self {
        ReservationTable {
            held: vec![Resources::ZERO; n_nodes],
            stamps: vec![0; n_nodes],
            clock: 0,
            journal: std::collections::VecDeque::with_capacity(JOURNAL_CAP),
            journal_base: 0,
        }
    }

    /// Current reservation against a node (zero when none).
    pub(crate) fn get(&self, node: NodeId) -> Resources {
        self.held
            .get(node.index())
            .copied()
            .unwrap_or(Resources::ZERO)
    }

    /// The monotonic change clock; bumped by every mutation.
    pub(crate) fn clock(&self) -> u64 {
        self.clock
    }

    /// When the node's reservation last changed.
    pub(crate) fn stamp(&self, node: NodeId) -> u64 {
        self.stamps.get(node.index()).copied().unwrap_or(0)
    }

    fn touch(&mut self, i: usize) {
        self.clock += 1;
        self.stamps[i] = self.clock;
        if self.journal.len() == JOURNAL_CAP {
            if let Some((c, _)) = self.journal.pop_front() {
                self.journal_base = c;
            }
        }
        self.journal.push_back((self.clock, NodeId(i as u32)));
    }

    /// The nodes touched since clock `seen`, oldest first (a node appears
    /// once per touch), as `(count, iterator)`. `None` when the journal
    /// has already forgotten part of that range — the caller must fall
    /// back to a full stamp scan.
    pub(crate) fn changes_since(
        &self,
        seen: u64,
    ) -> Option<(usize, impl Iterator<Item = NodeId> + '_)> {
        if seen < self.journal_base {
            return None;
        }
        let start = self.journal.partition_point(|&(c, _)| c <= seen);
        let n = self.journal.len() - start;
        Some((n, self.journal.range(start..).map(|&(_, node)| node)))
    }

    /// Add to a node's reservation.
    pub(crate) fn add(&mut self, node: NodeId, demand: Resources) {
        let i = node.index();
        self.held[i] += demand;
        self.touch(i);
    }

    /// Release (part of) a node's reservation.
    pub(crate) fn release(&mut self, node: NodeId, demand: Resources) {
        let i = node.index();
        self.held[i] = self.held[i].saturating_sub(&demand);
        self.touch(i);
    }

    /// Wipe a node's reservation wholesale (crash path).
    pub(crate) fn clear_node(&mut self, node: NodeId) {
        let i = node.index();
        self.held[i] = Resources::ZERO;
        self.touch(i);
    }

    /// Nonzero entries in node-id order (snapshot codec).
    pub(crate) fn iter_nonzero(&self) -> impl Iterator<Item = (NodeId, Resources)> + '_ {
        self.held
            .iter()
            .enumerate()
            .filter(|(_, r)| **r != Resources::ZERO)
            .map(|(i, &r)| (NodeId(i as u32), r))
    }

    /// Replace the table's contents with decoded entries (restore path).
    pub(crate) fn load(&mut self, entries: &[(NodeId, Resources)]) {
        self.held.fill(Resources::ZERO);
        for &(node, r) in entries {
            let i = node.index();
            if i >= self.held.len() {
                self.held.resize(i + 1, Resources::ZERO);
                self.stamps.resize(i + 1, 0);
            }
            self.held[i] = r;
        }
        // one bump marks every row newer than any pre-restore view; the
        // bulk change is not journaled, so force readers to a full scan
        self.clock += 1;
        self.stamps.fill(self.clock);
        self.journal.clear();
        self.journal_base = self.clock;
    }
}

/// State owned by the lifecycle stage.
pub struct LifecycleState {
    /// Every request the trace has injected, by id, including terminal
    /// ones (the audit walks this map).
    pub(crate) requests: FxHashMap<RequestId, Request>,
    /// Next request id to allocate.
    pub(crate) next_request_id: u64,
    /// The dispatcher's in-flight reservation table.
    pub(crate) reserved: ReservationTable,
    /// Per-node LC wait queues: the R′_k requests that DSS-LC routes to a
    /// node beyond its instantaneous capacity wait *at the node* (§5.2.2)
    /// rather than bouncing back to the master.
    pub(crate) node_wait: Vec<VecDeque<RequestId>>,
    /// BE containers evicted by LC preemption so far.
    pub(crate) be_evictions: u64,
}

impl LifecycleState {
    /// Fresh state for a system with `n_nodes` nodes.
    pub(crate) fn new(n_nodes: usize) -> Self {
        LifecycleState {
            requests: FxHashMap::default(),
            next_request_id: 0,
            reserved: ReservationTable::new(n_nodes),
            node_wait: (0..n_nodes).map(|_| VecDeque::new()).collect(),
            be_evictions: 0,
        }
    }

    pub(crate) fn alloc_request_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        id
    }

    /// Release (part of) a node's in-flight reservation.
    pub(crate) fn release_reservation(&mut self, node: NodeId, demand: Resources) {
        self.reserved.release(node, demand);
    }
}

/// `Arrival`: queue the request at its origin master (LC or BE queue).
pub(crate) fn on_arrival(
    ctx: &mut SystemCtx<'_>,
    service: ServiceId,
    origin: ClusterId,
    demand: Resources,
    now: SimTime,
) {
    let spec = ctx.catalog.get(service);
    let class = spec.class;
    let id = ctx.lifecycle.alloc_request_id();
    let req = Request::new(id, service, class, origin, now, demand);
    if class.is_lc() {
        ctx.counters.on_lc_arrival(now);
        ctx.clusters[origin.index()].lc_q.push_back(id);
    } else {
        ctx.clusters[origin.index()].be_q.push_back(id);
    }
    ctx.lifecycle.requests.insert(id, req);
    ctx.emit(now, || TraceEvent::Arrival {
        request: id,
        service,
        origin,
    });
}

/// Mark a request abandoned (shed from a queue).
pub(crate) fn abandon(ctx: &mut SystemCtx<'_>, rid: RequestId, now: SimTime) {
    if let Some(req) = ctx.lifecycle.requests.get_mut(&rid) {
        req.mark_done(RequestOutcome::Abandoned, now);
        ctx.counters.on_abandon(now);
        ctx.emit(now, || TraceEvent::Abandoned { request: rid });
    }
}

/// Deadline past which a queued request is hopeless: an LC request older
/// than its QoS target γ can no longer satisfy it even if it completed
/// instantly, so it is shed (the "abandoned requests" metric of §7.2);
/// BE requests wait out their patience.
pub(crate) fn queue_deadline(
    catalog: &ServiceCatalog,
    req: &Request,
    patience: SimTime,
) -> SimTime {
    match req.class {
        ServiceClass::Lc => catalog.get(req.service).qos_target.min(patience),
        ServiceClass::Be => patience,
    }
}

/// Remove hopeless queue entries, returning them for abandonment.
pub(crate) fn expire_queue(
    catalog: &ServiceCatalog,
    queue: &mut VecDeque<RequestId>,
    requests: &FxHashMap<RequestId, Request>,
    patience: SimTime,
    now: SimTime,
) -> Vec<RequestId> {
    let mut expired = Vec::new();
    queue.retain(|rid| {
        let keep = requests
            .get(rid)
            .map(|r| now.saturating_since(r.arrival) <= queue_deadline(catalog, r, patience))
            .unwrap_or(false);
        if !keep {
            expired.push(*rid);
        }
        keep
    });
    expired
}

/// Hand a bounced/evicted/interrupted request back to its scheduler: LC
/// requests have a bounce budget; evicted/bounced BE work is "restarted
/// at a later time" (§4.1) and is only bounded by its patience window.
pub(crate) fn requeue_or_abandon(ctx: &mut SystemCtx<'_>, rid: RequestId, now: SimTime) {
    let Some(req) = ctx.lifecycle.requests.get_mut(&rid) else {
        return;
    };
    if req.is_done() {
        return;
    }
    req.mark_requeued();
    if req.class.is_lc() && req.requeues > ctx.cfg.max_requeues {
        req.mark_done(RequestOutcome::Failed, now);
        ctx.counters.on_abandon(now);
        ctx.emit(now, || TraceEvent::Abandoned { request: rid });
        return;
    }
    let origin = req.origin;
    match req.class {
        ServiceClass::Lc => ctx.clusters[origin.index()].lc_q.push_back(rid),
        ServiceClass::Be => {
            if ctx.cfg.local_only {
                ctx.clusters[origin.index()].be_q.push_back(rid);
            } else {
                ctx.dispatch.central_q.push_back(rid);
            }
        }
    }
}

/// Schedule the node's next projected completion check (skipped past the
/// horizon — scheduling those would livelock the engine at the horizon
/// instant).
pub(crate) fn schedule_node_check(ctx: &mut SystemCtx<'_>, node: NodeId, sched: &mut Sched<'_>) {
    let n = &mut ctx.nodes[node.index()];
    if let Some(t) = n.next_completion(sched.now()) {
        if t <= ctx.horizon {
            sched.schedule_at(t, Event::NodeCheck(node, n.generation()));
        }
    }
}

/// Try to admit a queued/delivered request on a node: applies the
/// re-assurance factor ("encapsulated in the packet of scheduled
/// requests", §3 ➎), runs the configured allocator, and on success
/// updates the request state and processes evictions.
pub(crate) fn try_admit_at(
    ctx: &mut SystemCtx<'_>,
    rid: RequestId,
    node_id: NodeId,
    now: SimTime,
) -> bool {
    if ctx.fault.is_down(node_id) {
        return false; // callers guard this; last line of defense
    }
    let Some(req) = ctx.lifecycle.requests.get(&rid) else {
        return true; // vanished: treat as handled
    };
    if req.is_done() {
        return true;
    }
    let service = req.service;
    let work = ctx.catalog.get(service).work_milli_ms;
    let factor = ctx
        .reassurer
        .as_ref()
        .map(|r| r.factor(node_id, service))
        .unwrap_or(1.0);
    let eff_demand = req
        .demand
        .scale_f64(factor)
        .max(&Resources::new(1, 1, 0, 0));
    let mut admit_req = req.clone();
    admit_req.demand = eff_demand;

    let node = &mut ctx.nodes[node_id.index()];
    let result = ctx.allocator.try_admit(node, &admit_req, work, now);
    let admitted = result.is_ok();
    ctx.emit(now, || TraceEvent::Admission {
        request: rid,
        node: node_id,
        admitted,
    });
    match result {
        Ok(outcome) => {
            if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                r.demand = eff_demand;
                r.mark_running(node_id, now);
            }
            ctx.lifecycle.be_evictions += outcome.evicted.len() as u64;
            let evicted_ids: Vec<RequestId> =
                outcome.evicted.iter().map(|(_, rr)| rr.request).collect();
            for erid in evicted_ids {
                requeue_or_abandon(ctx, erid, now);
            }
            true
        }
        Err(_) => false,
    }
}

/// The configured patience window for a service class.
pub(crate) fn patience_for(ctx: &SystemCtx<'_>, class: ServiceClass) -> SimTime {
    match class {
        ServiceClass::Lc => ctx.cfg.lc_patience,
        ServiceClass::Be => ctx.cfg.be_patience,
    }
}

/// Admit as many node-waiting LC requests as now fit (FIFO), expiring
/// the ones past their patience.
pub(crate) fn drain_node_wait(ctx: &mut SystemCtx<'_>, node_id: NodeId, sched: &mut Sched<'_>) {
    if ctx.fault.is_down(node_id) {
        return; // the wait queue was drained back at crash time
    }
    let now = sched.now();
    let mut admitted_any = false;
    while let Some(&rid) = ctx.lifecycle.node_wait[node_id.index()].front() {
        let (demand, expired) = match ctx.lifecycle.requests.get(&rid) {
            Some(r) => (
                r.demand,
                now.saturating_since(r.arrival)
                    > queue_deadline(ctx.catalog, r, patience_for(ctx, r.class)),
            ),
            None => (Resources::ZERO, true),
        };
        if expired {
            ctx.lifecycle.node_wait[node_id.index()].pop_front();
            ctx.lifecycle.release_reservation(node_id, demand);
            abandon(ctx, rid, now);
            continue;
        }
        if try_admit_at(ctx, rid, node_id, now) {
            ctx.lifecycle.node_wait[node_id.index()].pop_front();
            ctx.lifecycle.release_reservation(node_id, demand);
            admitted_any = true;
        } else {
            break; // head of line still does not fit
        }
    }
    if admitted_any {
        schedule_node_check(ctx, node_id, sched);
    }
}

/// `Deliver`: a dispatched payload reached its target worker (or bounced
/// off a crash that happened while it was in flight).
pub(crate) fn on_deliver(
    ctx: &mut SystemCtx<'_>,
    rid: RequestId,
    node_id: NodeId,
    epoch: u64,
    sched: &mut Sched<'_>,
) {
    let now = sched.now();
    let Some(req) = ctx.lifecycle.requests.get(&rid) else {
        return;
    };
    if req.is_done() {
        return;
    }
    if ctx.fault.is_down(node_id) || ctx.fault.epoch(node_id) != epoch {
        // The target crashed while the payload was in flight (a stale
        // epoch means it also already recovered). Its reservation entry
        // was wiped wholesale at crash time, so do not release anything —
        // just bounce the request back to its scheduler.
        ctx.fault.summary.bounced_deliveries += 1;
        ctx.fault.summary.rescheduled += 1;
        ctx.emit(now, || TraceEvent::Delivery {
            request: rid,
            node: node_id,
            bounced: true,
        });
        requeue_or_abandon(ctx, rid, now);
        return;
    }
    let class = req.class;
    let demand = req.demand;
    ctx.emit(now, || TraceEvent::Delivery {
        request: rid,
        node: node_id,
        bounced: false,
    });
    if try_admit_at(ctx, rid, node_id, now) {
        ctx.lifecycle.release_reservation(node_id, demand);
        schedule_node_check(ctx, node_id, sched);
    } else {
        match class {
            // R′_k semantics (§5.2.2): LC requests routed beyond the
            // node's instantaneous capacity wait at the node. The
            // reservation stays until they run or expire.
            ServiceClass::Lc => {
                ctx.lifecycle.node_wait[node_id.index()].push_back(rid);
            }
            // Alg. 3: BE requests that cannot be processed in time
            // return to the central scheduling queue.
            ServiceClass::Be => {
                ctx.lifecycle.release_reservation(node_id, demand);
                requeue_or_abandon(ctx, rid, now);
            }
        }
    }
}

/// `NodeCheck`: a projected completion — advance the node, collect
/// completions, feed the QoS detector, reclaim resources.
pub(crate) fn on_node_check(
    ctx: &mut SystemCtx<'_>,
    node_id: NodeId,
    generation: u64,
    sched: &mut Sched<'_>,
) {
    let now = sched.now();
    if ctx.fault.is_down(node_id) {
        return; // crash bumped the generation; this check is void
    }
    {
        let node = &mut ctx.nodes[node_id.index()];
        if node.generation() != generation {
            return; // stale projection; a newer check is scheduled
        }
        node.advance(now);
    }
    let completions = ctx.nodes[node_id.index()].take_completions();
    if !completions.is_empty() {
        let node_cap = ctx.nodes[node_id.index()].capacity();
        for done in &completions {
            let Some(req) = ctx.lifecycle.requests.get_mut(&done.request) else {
                continue;
            };
            req.mark_done(RequestOutcome::Completed, now);
            let latency = now.saturating_since(req.arrival);
            match done.class {
                ServiceClass::Lc => {
                    let within = ctx.catalog.get(done.service).meets_qos(latency);
                    if !within && ctx.fault.any_fault_active() {
                        // attribute the miss to the open fault window
                        ctx.counters.on_fault_qos_violation(now);
                    }
                    ctx.counters.on_lc_complete(now, latency, within);
                    ctx.detector.record(node_id, done.service, now, latency);
                }
                ServiceClass::Be => {
                    ctx.counters.on_be_complete(now);
                    let d = req.demand;
                    ctx.dispatch.be_completed_frac += d.cpu_milli as f64
                        / node_cap.cpu_milli.max(1) as f64
                        + d.memory_mib as f64 / node_cap.memory_mib.max(1) as f64;
                }
            }
            ctx.emit(now, || TraceEvent::Completion {
                request: done.request,
                node: node_id,
                latency,
            });
        }
        ctx.allocator
            .rebalance(&mut ctx.nodes[node_id.index()], now);
        // freed resources may unblock node-waiting LC requests
        drain_node_wait(ctx, node_id, sched);
    }
    schedule_node_check(ctx, node_id, sched);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::testutil::small_cfg;
    use crate::system::EdgeCloudSystem;
    use tango_types::ClusterId;

    #[test]
    fn queue_deadline_shed_rule() {
        let catalog = ServiceCatalog::standard();
        let lc_svc = catalog.lc_ids()[0];
        let be_svc = catalog.be_ids()[0];
        let patience = SimTime::from_secs(60);
        let mk = |svc: ServiceId| {
            let spec = catalog.get(svc);
            Request::new(
                RequestId(1),
                svc,
                spec.class,
                ClusterId(0),
                SimTime::ZERO,
                spec.min_request,
            )
        };
        // LC deadline is its QoS target (smaller than patience)
        let lc_deadline = queue_deadline(&catalog, &mk(lc_svc), patience);
        assert_eq!(lc_deadline, catalog.get(lc_svc).qos_target);
        // BE deadline is the patience window
        let be_deadline = queue_deadline(&catalog, &mk(be_svc), patience);
        assert_eq!(be_deadline, patience);
    }

    #[test]
    fn expire_queue_sheds_only_hopeless_entries() {
        let catalog = ServiceCatalog::standard();
        let lc_svc = catalog.lc_ids()[0];
        let target = catalog.get(lc_svc).qos_target;
        let mut requests = FxHashMap::default();
        let mut queue = VecDeque::new();
        for (i, arrival) in [(0u64, SimTime::ZERO), (1, target)].into_iter() {
            let spec = catalog.get(lc_svc);
            let req = Request::new(
                RequestId(i),
                lc_svc,
                spec.class,
                ClusterId(0),
                arrival,
                spec.min_request,
            );
            requests.insert(RequestId(i), req);
            queue.push_back(RequestId(i));
        }
        // at now = target + 1µs: request 0 (arrived at 0) is past its
        // target; request 1 (arrived at `target`) is still viable
        let now = target + SimTime::from_micros(1);
        let expired = expire_queue(&catalog, &mut queue, &requests, SimTime::from_secs(60), now);
        assert_eq!(expired, vec![RequestId(0)]);
        assert_eq!(queue, VecDeque::from(vec![RequestId(1)]));
    }

    #[test]
    fn short_run_completes_requests_and_meets_some_qos() {
        let report = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(10), "test");
        assert!(report.lc_arrived > 100, "arrived {}", report.lc_arrived);
        assert!(
            report.lc_completed as f64 > report.lc_arrived as f64 * 0.5,
            "completed {}/{}",
            report.lc_completed,
            report.lc_arrived
        );
        assert!(
            report.qos_satisfaction > 0.5,
            "qos {}",
            report.qos_satisfaction
        );
        assert!(report.be_throughput > 0);
        assert!(report.mean_utilization > 0.0);
        assert!(!report.periods.is_empty());
    }

    #[test]
    fn overload_causes_abandonment_or_queueing() {
        let mut cfg = small_cfg();
        cfg.workload.lc_rps = 2_000.0; // way beyond 8 small workers
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "overload");
        assert!(
            report.abandoned > 0 || report.lc_completed < report.lc_arrived,
            "overload must leave a trace"
        );
    }
}

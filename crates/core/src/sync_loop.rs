//! Sync stage: the periodic state-storage push + metrics sampling cycle
//! (the Prometheus/QoS-detector loop of Fig. 3) and the Algorithm 1
//! re-assurance tick.

use crate::ctx::SystemCtx;
use crate::system::Event;
use tango_metrics::{NodeRole, NodeSnapshot};
use tango_types::{FxHashMap, Resources, ServiceId};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// Per-node accounting draft produced by the parallel sync phase.
#[derive(Clone, Default)]
pub(crate) struct SyncDraft {
    pub(crate) available: Resources,
    pub(crate) be_held: Resources,
    pub(crate) overall: f64,
    pub(crate) lc_frac: f64,
    pub(crate) be_frac: f64,
}

/// State owned by the sync stage: the reusable per-node draft buffer.
#[derive(Default)]
pub struct SyncState {
    pub(crate) drafts: Vec<SyncDraft>,
}

/// `Sync`: push node snapshots to the state storage and sample
/// utilization.
pub(crate) fn on_sync(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    // Phase 1 (parallel): per-node state advance and usage accounting.
    // Nodes are independent here, so the pool chunks them statically;
    // drafts land in node order regardless of thread count. The QoS
    // slack lookups, pending-queue summaries, storage pushes and the
    // utilization sample stay sequential below — they touch cross-node
    // state (detector windows prune on read, the store is shared).
    let drafts = &mut ctx.sync.drafts;
    drafts.clear();
    drafts.resize(ctx.nodes.len(), SyncDraft::default());
    let down: &[bool] = ctx.fault.down_slice();
    ctx.pool
        .par_zip_chunks_mut(ctx.nodes, drafts, |_, nodes, drafts| {
            for (node, draft) in nodes.iter_mut().zip(drafts.iter_mut()) {
                if down[node.id.index()] {
                    // Crashed node: it advertises zero capacity (the
                    // snapshot keeps schedulers honest between the
                    // crash and the next sync) and contributes zero
                    // utilization — its containers are dead.
                    draft.available = Resources::ZERO;
                    continue;
                }
                node.advance(now);
                let (lc_held, be_held) = node.demand_usage();
                let cap = node.capacity();
                draft.available = cap.saturating_sub(&lc_held).saturating_sub(&be_held);
                draft.be_held = be_held;
                if !node.is_master {
                    let (lc, be) = node.actual_usage();
                    draft.overall = (lc + be).utilization_against(&cap);
                    draft.lc_frac = lc.utilization_against(&cap);
                    draft.be_frac = be.utilization_against(&cap);
                }
            }
        });
    // Phase 2 (sequential): snapshot pushes in node order.
    let lc_services = ctx.catalog.lc_ids();
    for (node, draft) in ctx.nodes.iter().zip(ctx.sync.drafts.iter()) {
        let mut slack = FxHashMap::default();
        for &svc in &lc_services {
            let target = ctx.catalog.get(svc).qos_target;
            if let Some(s) = ctx.detector.slack(node.id, svc, target, now) {
                slack.insert(svc, s);
            }
        }
        let mut pending = FxHashMap::default();
        if node.is_master {
            let cluster = &ctx.clusters[node.cluster.index()];
            for rid in cluster.lc_q.iter().chain(cluster.be_q.iter()) {
                if let Some(r) = ctx.lifecycle.requests.get(rid) {
                    *pending.entry(r.service).or_insert(0u32) += 1;
                }
            }
        }
        ctx.store.push(NodeSnapshot {
            node: node.id,
            cluster: node.cluster,
            role: if node.is_master {
                NodeRole::Master
            } else {
                NodeRole::Worker
            },
            total: node.capacity(),
            available: draft.available,
            be_held: draft.be_held,
            slack,
            pending,
            updated_at: now,
        });
    }
    // utilization sample over workers (drafts are zero for masters)
    let n_workers = ctx.nodes.iter().filter(|n| !n.is_master).count();
    if n_workers > 0 {
        let n = n_workers as f64;
        let overall: f64 = ctx.sync.drafts.iter().map(|d| d.overall).sum();
        let lc_frac: f64 = ctx.sync.drafts.iter().map(|d| d.lc_frac).sum();
        let be_frac: f64 = ctx.sync.drafts.iter().map(|d| d.be_frac).sum();
        ctx.counters
            .sample_utilization(now, overall / n, lc_frac / n, be_frac / n);
    }
    sched.schedule_in(ctx.cfg.sync_interval, Event::Sync);
}

/// `Reassure`: Algorithm 1 over the QoS detector.
pub(crate) fn on_reassure(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    if let Some(reassurer) = ctx.reassurer.as_mut() {
        let catalog = ctx.catalog;
        let targets = |svc: ServiceId| catalog.get(svc).qos_target;
        reassurer.tick(ctx.detector, &targets, now);
    }
    sched.schedule_in(ctx.cfg.reassure_interval, Event::Reassure);
}

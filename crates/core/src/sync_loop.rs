//! Sync stage: the periodic state-storage push + metrics sampling cycle
//! (the Prometheus/QoS-detector loop of Fig. 3) and the Algorithm 1
//! re-assurance tick.
//!
//! The per-node phase is **sharded per cluster** over `tango-par`: shards
//! are groups of whole clusters (never splitting one), and each shard
//! owns its nodes' state advance, usage accounting *and* QoS slack
//! queries — possible because the detector stores one window row per node
//! and slack reads only mutate that row. Results are written in place
//! into per-node drafts, so the shard layout cannot affect them; the
//! cross-cluster "merge" — store rows, pending-queue summaries and the
//! utilization sample — runs sequentially in fixed node order, which is
//! the deterministic batched merge of the `tango-par` contract.

use crate::ctx::SystemCtx;
use crate::system::Event;
use tango_metrics::NodeRole;
use tango_types::{Resources, ServiceId, SimTime};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// Per-node accounting draft produced by the sharded sync phase. Buffers
/// are reused across syncs; every field is rewritten each round.
#[derive(Clone, Default)]
pub(crate) struct SyncDraft {
    pub(crate) available: Resources,
    pub(crate) be_held: Resources,
    pub(crate) overall: f64,
    pub(crate) lc_frac: f64,
    pub(crate) be_frac: f64,
    /// Per-LC-service slack pairs, for the node's store row.
    pub(crate) slack: Vec<(ServiceId, f64)>,
    /// Physically down but not yet detected: phase 2 must keep the
    /// node's stale pre-crash store row instead of overwriting it —
    /// schedulers keep routing to the node until the keep-alive
    /// detector trips, which is exactly the cost detection lag measures.
    pub(crate) stale: bool,
}

/// State owned by the sync stage: reusable per-node drafts plus the shard
/// plan and per-sync scratch buffers.
#[derive(Default)]
pub struct SyncState {
    pub(crate) drafts: Vec<SyncDraft>,
    /// Ascending end offset of each cluster's contiguous node range
    /// (nodes are laid out master-then-workers per cluster).
    cluster_bounds: Vec<usize>,
    /// Shard plan scratch: end offsets of each shard (whole clusters).
    shard_bounds: Vec<usize>,
    /// `(service, qos_target)` for every LC service, cached once.
    lc_targets: Vec<(ServiceId, SimTime)>,
    /// Dense per-service pending counters (masters), reused.
    pending_counts: Vec<u32>,
    /// Sparse pending pairs for the current row, reused.
    pending_pairs: Vec<(ServiceId, u32)>,
}

/// Group whole clusters into at most `parts` contiguous shards of
/// roughly equal node counts. Pure function of the bounds and the thread
/// budget — and even if it were not, shard layout cannot affect results,
/// only load balance.
fn plan_shards(cluster_bounds: &[usize], parts: usize, out: &mut Vec<usize>) {
    out.clear();
    let n = cluster_bounds.last().copied().unwrap_or(0);
    if n == 0 {
        return;
    }
    let parts = parts.clamp(1, cluster_bounds.len());
    let target = n.div_ceil(parts);
    let mut next_cut = target;
    for &end in cluster_bounds {
        if end >= next_cut && out.len() + 1 < parts && end < n {
            out.push(end);
            next_cut = end + target;
        }
    }
    out.push(n);
}

/// `Sync`: push node snapshots to the state storage and sample
/// utilization.
pub(crate) fn on_sync(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    // Keep-alive probe round first: a detector trip this tick marks the
    // node detected-down before phase 1 reads the down flags, so the
    // store row zeroes on the same tick the control plane learns of the
    // crash. No-op under the oracle fault model.
    crate::ctrl_rt::keepalive_tick(ctx, now);
    let n = ctx.nodes.len();
    ctx.detector.ensure_nodes(n);
    let sync = &mut *ctx.sync;
    if sync.drafts.len() != n {
        sync.drafts.clear();
        sync.drafts.resize_with(n, SyncDraft::default);
    }
    if sync.cluster_bounds.len() != ctx.clusters.len() {
        sync.cluster_bounds = ctx
            .clusters
            .iter()
            .map(|c| c.master.index() + 1 + c.workers.len())
            .collect();
        debug_assert_eq!(sync.cluster_bounds.last().copied().unwrap_or(0), n);
    }
    if sync.lc_targets.is_empty() {
        sync.lc_targets = ctx
            .catalog
            .lc_ids()
            .iter()
            .map(|&s| (s, ctx.catalog.get(s).qos_target))
            .collect();
    }
    plan_shards(
        &sync.cluster_bounds,
        ctx.pool.threads(),
        &mut sync.shard_bounds,
    );

    // Phase 1 (sharded): per-node state advance, usage accounting, and
    // QoS slack queries. Each shard exclusively owns its clusters' nodes,
    // drafts and detector rows; every write is node-local, so drafts land
    // identically at any thread count.
    let down: &[bool] = ctx.fault.down_slice();
    let phys_down: &[bool] = ctx.fault.phys_down_slice();
    let lc_targets = &sync.lc_targets;
    ctx.pool.par_parts_zip3_mut(
        &sync.shard_bounds,
        ctx.nodes,
        &mut sync.drafts,
        ctx.detector.rows_mut(),
        |_, nodes, drafts, det_rows| {
            for ((node, draft), det) in nodes
                .iter_mut()
                .zip(drafts.iter_mut())
                .zip(det_rows.iter_mut())
            {
                draft.slack.clear();
                for &(svc, target) in lc_targets {
                    if let Some(s) = det.slack(svc, target, now) {
                        draft.slack.push((svc, s));
                    }
                }
                draft.stale = false;
                if down[node.id.index()] {
                    // Crashed node: it advertises zero capacity (the
                    // snapshot keeps schedulers honest between the
                    // crash and the next sync) and contributes zero
                    // utilization — its containers are dead.
                    draft.available = Resources::ZERO;
                    draft.be_held = Resources::ZERO;
                    draft.overall = 0.0;
                    draft.lc_frac = 0.0;
                    draft.be_frac = 0.0;
                    continue;
                }
                if phys_down[node.id.index()] {
                    // Physically dead but not yet detected: no probe
                    // answer, so the store keeps the stale pre-crash row
                    // and the node contributes zero utilization. The
                    // schedulers keep believing the old row until the
                    // keep-alive detector trips.
                    draft.overall = 0.0;
                    draft.lc_frac = 0.0;
                    draft.be_frac = 0.0;
                    draft.stale = true;
                    continue;
                }
                node.advance(now);
                let (lc_held, be_held) = node.demand_usage();
                let cap = node.capacity();
                draft.available = cap.saturating_sub(&lc_held).saturating_sub(&be_held);
                draft.be_held = be_held;
                if !node.is_master {
                    let (lc, be) = node.actual_usage();
                    draft.overall = (lc + be).utilization_against(&cap);
                    draft.lc_frac = lc.utilization_against(&cap);
                    draft.be_frac = be.utilization_against(&cap);
                } else {
                    draft.overall = 0.0;
                    draft.lc_frac = 0.0;
                    draft.be_frac = 0.0;
                }
            }
        },
    );

    // Phase 2 (sequential merge): store rows in fixed node order, then
    // one utilization sample. Row writes reuse the store's per-node
    // buffers — no allocation in steady state.
    let n_services = ctx.catalog.len();
    for (node, draft) in ctx.nodes.iter().zip(sync.drafts.iter()) {
        if draft.stale {
            continue; // undetected crash: keep the pre-crash row
        }
        sync.pending_pairs.clear();
        if node.is_master {
            let counts = &mut sync.pending_counts;
            counts.clear();
            counts.resize(n_services, 0);
            let cluster = &ctx.clusters[node.cluster.index()];
            for rid in cluster.lc_q.iter().chain(cluster.be_q.iter()) {
                if let Some(r) = ctx.lifecycle.requests.get(rid) {
                    counts[r.service.index()] += 1;
                }
            }
            sync.pending_pairs.extend(
                counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(s, &c)| (ServiceId(s as u16), c)),
            );
        }
        ctx.store.write_row(
            node.id,
            node.cluster,
            if node.is_master {
                NodeRole::Master
            } else {
                NodeRole::Worker
            },
            node.capacity(),
            draft.available,
            draft.be_held,
            &draft.slack,
            &sync.pending_pairs,
            now,
        );
    }
    // utilization sample over workers (drafts are zero for masters)
    let n_workers = ctx.nodes.iter().filter(|n| !n.is_master).count();
    if n_workers > 0 {
        let nw = n_workers as f64;
        let overall: f64 = sync.drafts.iter().map(|d| d.overall).sum();
        let lc_frac: f64 = sync.drafts.iter().map(|d| d.lc_frac).sum();
        let be_frac: f64 = sync.drafts.iter().map(|d| d.be_frac).sum();
        ctx.counters
            .sample_utilization(now, overall / nw, lc_frac / nw, be_frac / nw);
    }
    // Fresh store contents invalidate every cached candidate view's row
    // values; membership and link attributes are untouched by a push.
    ctx.dispatch.views.invalidate_values();
    // Defragmentation pass (every N ticks when configured): the sync
    // phase just advanced every live node to `now`, so the migration
    // planner sees current utilization.
    crate::migration::defrag_tick(ctx, sched);
    // Control-plane epilogue: proxy fallback accounting, then a mirror
    // frame if one is attached. Publishing reads state and clocks only.
    crate::ctrl_rt::after_sync(ctx, now);
    sched.schedule_in(ctx.cfg.sync_interval, Event::Sync);
}

/// `Reassure`: Algorithm 1 over the QoS detector.
pub(crate) fn on_reassure(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    if let Some(reassurer) = ctx.reassurer.as_mut() {
        let catalog = ctx.catalog;
        let targets = |svc: ServiceId| catalog.get(svc).qos_target;
        let adjustments = reassurer.tick(ctx.detector, &targets, now);
        // Factors feed cached candidate views' min-requests — a row
        // value, not membership — so only a tick that actually moved a
        // factor needs to invalidate, and value-level suffices.
        if !adjustments.is_empty() {
            ctx.dispatch.views.invalidate_values();
        }
    }
    sched.schedule_in(ctx.cfg.reassure_interval, Event::Reassure);
}

#[cfg(test)]
mod tests {
    use super::plan_shards;

    #[test]
    fn shard_plan_groups_whole_clusters() {
        // 4 clusters of 3 nodes each, 2 parts -> split at the cluster
        // boundary nearest the midpoint
        let bounds = [3usize, 6, 9, 12];
        let mut out = Vec::new();
        plan_shards(&bounds, 2, &mut out);
        assert_eq!(out, vec![6, 12]);
        // more parts than clusters: one cluster per part
        plan_shards(&bounds, 9, &mut out);
        assert_eq!(out, vec![3, 6, 9, 12]);
        // single part
        plan_shards(&bounds, 1, &mut out);
        assert_eq!(out, vec![12]);
        // empty system
        plan_shards(&[], 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_plan_covers_uneven_clusters() {
        // ragged cluster sizes; every plan must end at the total and be
        // strictly ascending
        let bounds = [5usize, 6, 20, 23, 30];
        for parts in 1..8 {
            let mut out = Vec::new();
            plan_shards(&bounds, parts, &mut out);
            assert_eq!(out.last().copied(), Some(30), "parts = {parts}");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "parts = {parts}");
            assert!(out.len() <= parts, "parts = {parts}");
            assert!(out.iter().all(|e| bounds.contains(e)), "parts = {parts}");
        }
    }
}

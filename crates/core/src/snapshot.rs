//! Versioned whole-system checkpoints: snapshot, deterministic resume,
//! and the periodic checkpoint driver.
//!
//! A snapshot captures every piece of *state* the run accumulated —
//! request tables, queues, reservations, node/cgroup dynamics, detector
//! windows, re-assurance factors, D-VPA counters, the fault ledger,
//! topology overlays, the state storage, scheduler policy state and the
//! full pending-event queue — and none of the *rebuildables*: the placed
//! topology, the service catalog, candidate-view scratch and the worker
//! pool are all reconstructed from the [`TangoConfig`] at restore time
//! (see DESIGN.md §11 for the state-vs-cache inventory). Restoring onto
//! the same config therefore yields a run whose remaining events, RNG
//! draws and final [`RunReport`] digest are bit-identical to the
//! uninterrupted run at any thread count.
//!
//! The file layout is the `tango-snap` container: magic, format version,
//! a config fingerprint (FNV-1a over the `Debug` rendering of the config
//! with the results-neutral `parallelism` field masked), tagged sections,
//! and a whole-file checksum. Truncation, bit flips, version bumps and
//! config mismatches all fail with a typed [`SnapError`] — never a panic,
//! never a silently wrong resume.

use crate::config::TangoConfig;
use crate::report::RunReport;
use crate::runtime::Allocator;
use crate::system::{EdgeCloudSystem, Event};
use std::collections::VecDeque;
use tango_faults::FaultEvent;
use tango_metrics::{ExperimentCounters, QosDetector};
use tango_simcore::{Engine, EventQueue};
use tango_snap::{
    fnv1a, SnapDecode, SnapEncode, SnapError, SnapFile, SnapFileBuilder, SnapReader, SnapWriter,
};
use tango_types::{
    ClusterId, FxHashMap, NodeId, Request, RequestId, Resources, ServiceId, SimTime,
};
use tango_workload::ServiceCatalog;

impl SnapEncode for Event {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            Event::Arrival {
                service,
                origin,
                demand,
            } => {
                w.put_u8(0);
                service.encode(w);
                origin.encode(w);
                demand.encode(w);
            }
            Event::Dispatch(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            Event::CentralArrive(r) => {
                w.put_u8(2);
                r.encode(w);
            }
            Event::BeDispatch => w.put_u8(3),
            Event::Deliver(r, n, epoch) => {
                w.put_u8(4);
                r.encode(w);
                n.encode(w);
                w.put_u64(*epoch);
            }
            Event::NodeCheck(n, generation) => {
                w.put_u8(5);
                n.encode(w);
                w.put_u64(*generation);
            }
            Event::Reassure => w.put_u8(6),
            Event::Sync => w.put_u8(7),
            Event::Fault(f) => {
                w.put_u8(8);
                f.encode(w);
            }
            Event::MigrateArrive(r, n, epoch) => {
                w.put_u8(9);
                r.encode(w);
                n.encode(w);
                w.put_u64(*epoch);
            }
        }
    }
}
impl SnapDecode for Event {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Event::Arrival {
                service: ServiceId::decode(r)?,
                origin: ClusterId::decode(r)?,
                demand: Resources::decode(r)?,
            },
            1 => Event::Dispatch(ClusterId::decode(r)?),
            2 => Event::CentralArrive(RequestId::decode(r)?),
            3 => Event::BeDispatch,
            4 => Event::Deliver(RequestId::decode(r)?, NodeId::decode(r)?, r.u64()?),
            5 => Event::NodeCheck(NodeId::decode(r)?, r.u64()?),
            6 => Event::Reassure,
            7 => Event::Sync,
            8 => Event::Fault(FaultEvent::decode(r)?),
            9 => Event::MigrateArrive(RequestId::decode(r)?, NodeId::decode(r)?, r.u64()?),
            _ => return Err(SnapError::Corrupt("event tag")),
        })
    }
}

/// Fingerprint of everything in the config that shapes results. The
/// `parallelism` field is masked out first: thread count never changes
/// behavior, so a snapshot taken at 4 threads restores at 1 (and vice
/// versa).
pub fn config_fingerprint(cfg: &TangoConfig) -> u64 {
    let mut masked = cfg.clone();
    masked.parallelism = None;
    fnv1a(format!("{masked:?}").as_bytes())
}

// Section tags. Stable identifiers inside one FORMAT_VERSION; renumbering
// or re-ordering requires a version bump.
const SEC_META: u32 = 1;
const SEC_LIFECYCLE: u32 = 2;
const SEC_CLUSTERS: u32 = 3;
const SEC_DISPATCH: u32 = 4;
const SEC_NODES: u32 = 5;
const SEC_COUNTERS: u32 = 6;
const SEC_DETECTOR: u32 = 7;
const SEC_REASSURER: u32 = 8;
const SEC_ALLOCATOR: u32 = 9;
const SEC_FAULT: u32 = 10;
const SEC_TOPOLOGY: u32 = 11;
const SEC_STORE: u32 = 12;
const SEC_ENGINE: u32 = 13;
const SEC_CTRL: u32 = 14;
const SEC_MIGRATION: u32 = 15;

/// When and how many checkpoints [`EdgeCloudSystem::run_checkpointed`]
/// takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every N sync ticks (`cfg.sync_interval` each); values
    /// below 1 behave as 1.
    pub every_n_ticks: u32,
    /// Keep only the most recent K checkpoints (0 = keep all).
    pub keep_last_k: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        // one checkpoint per reporting period at the paper's 100 ms sync
        // cadence, unbounded retention
        CheckpointPolicy {
            every_n_ticks: 8,
            keep_last_k: 0,
        }
    }
}

/// One checkpoint taken mid-run: the sealed snapshot bytes and the sim
/// time they describe.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Sim time of the sync-tick boundary the snapshot was taken at.
    pub at: SimTime,
    /// Sealed snapshot file bytes (parseable by
    /// [`EdgeCloudSystem::restore`]).
    pub bytes: Vec<u8>,
}

fn encode_sorted_requests(w: &mut SnapWriter, requests: &FxHashMap<RequestId, Request>) {
    let mut ids: Vec<RequestId> = requests.keys().copied().collect();
    ids.sort_unstable();
    w.put_u64(ids.len() as u64);
    for id in ids {
        requests[&id].encode(w);
    }
}

fn decode_requests(r: &mut SnapReader<'_>) -> Result<FxHashMap<RequestId, Request>, SnapError> {
    let n = r.u64()? as usize;
    if n > r.remaining() {
        return Err(SnapError::Truncated);
    }
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let req = Request::decode(r)?;
        map.insert(req.id, req);
    }
    Ok(map)
}

fn encode_reservations(w: &mut SnapWriter, reserved: &crate::lifecycle::ReservationTable) {
    // nonzero entries in node-id order — the dense table's natural order
    // is already the canonical sorted form the old map codec produced
    let entries: Vec<(NodeId, Resources)> = reserved.iter_nonzero().collect();
    w.put_u64(entries.len() as u64);
    for (k, v) in entries {
        k.encode(w);
        v.encode(w);
    }
}

fn decode_reservations(r: &mut SnapReader<'_>) -> Result<Vec<(NodeId, Resources)>, SnapError> {
    let n = r.u64()? as usize;
    if n > r.remaining() {
        return Err(SnapError::Truncated);
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let k = NodeId::decode(r)?;
        entries.push((k, Resources::decode(r)?));
    }
    Ok(entries)
}

/// Encode the full system + engine state into a sealed snapshot file.
/// Fails with [`SnapError::Unsupported`] when a configured scheduler
/// cannot serialize its state (the RL agents — their network weights and
/// replay buffers are out of scope).
pub(crate) fn encode(sys: &EdgeCloudSystem, engine: &Engine<Event>) -> Result<Vec<u8>, SnapError> {
    let mut b = SnapFileBuilder::new(config_fingerprint(&sys.cfg));

    b.section(SEC_META, |w| {
        sys.horizon.encode(w);
    });

    b.section(SEC_LIFECYCLE, |w| {
        encode_sorted_requests(w, &sys.lifecycle.requests);
        w.put_u64(sys.lifecycle.next_request_id);
        encode_reservations(w, &sys.lifecycle.reserved);
        sys.lifecycle.node_wait.encode(w);
        w.put_u64(sys.lifecycle.be_evictions);
    });

    b.section(SEC_CLUSTERS, |w| {
        w.put_u64(sys.clusters.len() as u64);
        for c in &sys.clusters {
            c.lc_q.encode(w);
            c.be_q.encode(w);
        }
    });

    // scheduler policy blobs: collected up front so a non-snapshottable
    // policy fails the whole encode instead of sealing a partial file
    let lc_blobs: Vec<Vec<u8>> = sys
        .dispatch
        .lc
        .iter()
        .map(|b| b.snapshot_state().map_err(SnapError::Unsupported))
        .collect::<Result<_, _>>()?;
    let be_blob = sys
        .dispatch
        .be
        .snapshot_state()
        .map_err(SnapError::Unsupported)?;
    b.section(SEC_DISPATCH, |w| {
        sys.dispatch.central_q.encode(w);
        sys.dispatch.be_pending_feedback.encode(w);
        w.put_f64(sys.dispatch.be_completed_frac);
        lc_blobs.encode(w);
        be_blob.encode(w);
    });

    b.section(SEC_NODES, |w| {
        w.put_u64(sys.nodes.len() as u64);
        for n in &sys.nodes {
            n.snapshot_dynamic(w);
        }
    });

    b.section(SEC_COUNTERS, |w| sys.counters.encode(w));
    b.section(SEC_DETECTOR, |w| sys.detector.encode(w));

    b.section(SEC_REASSURER, |w| match &sys.reassurer {
        None => w.put_u8(0),
        Some(re) => {
            w.put_u8(1);
            re.snapshot(w);
        }
    });

    b.section(SEC_ALLOCATOR, |w| match &sys.allocator {
        Allocator::Static(_) => w.put_u8(0),
        Allocator::Hrm(h) => {
            w.put_u8(1);
            w.put_u64(h.dvpa.ops);
            w.put_u64(h.dvpa.total_writes);
        }
    });

    b.section(SEC_FAULT, |w| sys.fault.snapshot(w));
    b.section(SEC_TOPOLOGY, |w| sys.topology.snapshot_dynamic(w));
    b.section(SEC_STORE, |w| sys.store.snapshot(w));

    b.section(SEC_ENGINE, |w| {
        engine.now().encode(w);
        w.put_u64(engine.processed());
        w.put_u64(engine.queue().next_seq());
        let mut entries: Vec<(SimTime, u64, &Event)> = engine.queue().entries().collect();
        entries.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        w.put_u64(entries.len() as u64);
        for (at, seq, ev) in entries {
            at.encode(w);
            w.put_u64(seq);
            ev.encode(w);
        }
    });

    // Control plane: keep-alive suspicion levels. Mirror/proxy
    // attachments are run-local wiring and are not part of the state
    // (a proxy additionally fails the encode above via its backend).
    b.section(SEC_CTRL, |w| match &sys.ctrl.detector {
        None => w.put_u8(0),
        Some(det) => {
            w.put_u8(1);
            det.snapshot(w);
        }
    });

    // Migration stage: defrag cadence position, egress spent, and the
    // in-flight transfers (sorted by request id — the canonical order).
    // Cloud wiring and the planner are rebuilt from the config.
    b.section(SEC_MIGRATION, |w| {
        w.put_u32(sys.migration.ticks);
        w.put_u64(sys.migration.egress_kib);
        let mut ids: Vec<RequestId> = sys.migration.in_flight.keys().copied().collect();
        ids.sort_unstable();
        w.put_u64(ids.len() as u64);
        for id in ids {
            let m = &sys.migration.in_flight[&id];
            id.encode(w);
            m.service.encode(w);
            m.demand.encode(w);
            w.put_f64(m.remaining_work);
            m.src.encode(w);
            m.dst.encode(w);
            w.put_u64(m.payload_kib);
            m.done_at.encode(w);
        }
    });

    Ok(b.seal())
}

/// A system restored mid-run: the rebuilt [`EdgeCloudSystem`] plus the
/// engine holding its remaining events. Drive it with
/// [`run_to`](Resumed::run_to) / [`finish`](Resumed::finish), or take
/// further snapshots.
pub struct Resumed {
    pub(crate) sys: EdgeCloudSystem,
    pub(crate) engine: Engine<Event>,
}

impl Resumed {
    /// Sim time the restored run stands at.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The run horizon the snapshot was taken under.
    pub fn horizon(&self) -> SimTime {
        self.sys.horizon
    }

    /// Advance the run to `t` (clamped to the horizon).
    pub fn run_to(&mut self, t: SimTime) {
        let horizon = self.sys.horizon;
        self.engine.run_until(&mut self.sys, t.min(horizon));
    }

    /// Snapshot the restored run's current state.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        encode(&self.sys, &self.engine)
    }

    /// Run the remaining events to the horizon and produce the report —
    /// the same report the uninterrupted run would have produced.
    pub fn finish(mut self, label: &str) -> RunReport {
        let horizon = self.sys.horizon;
        self.engine.run_until(&mut self.sys, horizon);
        self.sys.finish(label)
    }
}

impl EdgeCloudSystem {
    /// Encode the system and its engine into a sealed snapshot.
    pub fn snapshot(&self, engine: &Engine<Event>) -> Result<Vec<u8>, SnapError> {
        encode(self, engine)
    }

    /// Restore a run from snapshot bytes. `cfg` must be the configuration
    /// the snapshot was taken under (checked via fingerprint; the
    /// thread-count field is ignored). The substrate — topology placement,
    /// node layout, deployed services, policy objects — is rebuilt from
    /// the config, then every dynamic section is overlaid.
    pub fn restore(cfg: TangoConfig, bytes: &[u8]) -> Result<Resumed, SnapError> {
        let file = SnapFile::parse(bytes)?;
        let expected = config_fingerprint(&cfg);
        if file.fingerprint != expected {
            return Err(SnapError::ConfigMismatch {
                found: file.fingerprint,
                expected,
            });
        }
        let mut sys = EdgeCloudSystem::with_catalog(cfg, ServiceCatalog::standard());

        let mut r = file.section(SEC_META, "meta section")?;
        sys.horizon = SimTime::decode(&mut r)?;

        let mut r = file.section(SEC_LIFECYCLE, "lifecycle section")?;
        sys.lifecycle.requests = decode_requests(&mut r)?;
        sys.lifecycle.next_request_id = r.u64()?;
        let reservations = decode_reservations(&mut r)?;
        sys.lifecycle.reserved.load(&reservations);
        let node_wait = Vec::<VecDeque<RequestId>>::decode(&mut r)?;
        if node_wait.len() != sys.nodes.len() {
            return Err(SnapError::Corrupt("node wait-queue count"));
        }
        sys.lifecycle.node_wait = node_wait;
        sys.lifecycle.be_evictions = r.u64()?;

        let mut r = file.section(SEC_CLUSTERS, "clusters section")?;
        if r.u64()? as usize != sys.clusters.len() {
            return Err(SnapError::Corrupt("cluster count"));
        }
        for c in sys.clusters.iter_mut() {
            c.lc_q = VecDeque::<RequestId>::decode(&mut r)?;
            c.be_q = VecDeque::<RequestId>::decode(&mut r)?;
        }

        let mut r = file.section(SEC_DISPATCH, "dispatch section")?;
        sys.dispatch.central_q = VecDeque::<RequestId>::decode(&mut r)?;
        sys.dispatch.be_pending_feedback = Option::<NodeId>::decode(&mut r)?;
        sys.dispatch.be_completed_frac = r.f64()?;
        let lc_blobs = Vec::<Vec<u8>>::decode(&mut r)?;
        if lc_blobs.len() != sys.dispatch.lc.len() {
            return Err(SnapError::Corrupt("lc backend count"));
        }
        for (backend, blob) in sys.dispatch.lc.iter_mut().zip(&lc_blobs) {
            backend
                .restore_state(blob)
                .map_err(SnapError::Unsupported)?;
        }
        let be_blob = Vec::<u8>::decode(&mut r)?;
        sys.dispatch
            .be
            .restore_state(&be_blob)
            .map_err(SnapError::Unsupported)?;

        let mut r = file.section(SEC_NODES, "nodes section")?;
        if r.u64()? as usize != sys.nodes.len() {
            return Err(SnapError::Corrupt("node count"));
        }
        for n in sys.nodes.iter_mut() {
            n.restore_dynamic(&mut r)?;
        }

        let mut r = file.section(SEC_COUNTERS, "counters section")?;
        sys.counters = ExperimentCounters::decode(&mut r)?;

        let mut r = file.section(SEC_DETECTOR, "detector section")?;
        sys.detector = QosDetector::decode(&mut r)?;
        // the snapshot only carries nodes with recorded windows; size the
        // row table back up so sharded sync can zip rows with nodes
        sys.detector.ensure_nodes(sys.nodes.len());

        let mut r = file.section(SEC_REASSURER, "reassurer section")?;
        match (r.u8()?, sys.reassurer.as_mut()) {
            (0, None) => {}
            (1, Some(re)) => re.restore(&mut r)?,
            _ => return Err(SnapError::Corrupt("reassurer presence")),
        }

        let mut r = file.section(SEC_ALLOCATOR, "allocator section")?;
        match (r.u8()?, &mut sys.allocator) {
            (0, Allocator::Static(_)) => {}
            (1, Allocator::Hrm(h)) => {
                h.dvpa.ops = r.u64()?;
                h.dvpa.total_writes = r.u64()?;
            }
            _ => return Err(SnapError::Corrupt("allocator kind")),
        }

        let mut r = file.section(SEC_FAULT, "fault section")?;
        sys.fault.restore(&mut r)?;

        let mut r = file.section(SEC_TOPOLOGY, "topology section")?;
        sys.topology.restore_dynamic(&mut r)?;

        let mut r = file.section(SEC_STORE, "store section")?;
        sys.store.restore(&mut r)?;

        let mut r = file.section(SEC_ENGINE, "engine section")?;
        let now = SimTime::decode(&mut r)?;
        let processed = r.u64()?;
        let next_seq = r.u64()?;
        let n = r.u64()? as usize;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::decode(&mut r)?;
            let seq = r.u64()?;
            entries.push((at, seq, Event::decode(&mut r)?));
        }
        let engine =
            Engine::from_parts(now, processed, EventQueue::from_entries(entries, next_seq));

        let mut r = file.section(SEC_CTRL, "ctrl section")?;
        match (r.u8()?, sys.ctrl.detector.as_mut()) {
            (0, None) => {}
            (1, Some(det)) => det.restore(&mut r)?,
            _ => return Err(SnapError::Corrupt("ctrl detector presence")),
        }

        let mut r = file.section(SEC_MIGRATION, "migration section")?;
        sys.migration.ticks = r.u32()?;
        sys.migration.egress_kib = r.u64()?;
        let n = r.u64()? as usize;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        for _ in 0..n {
            let id = RequestId::decode(&mut r)?;
            let m = crate::migration::InFlight {
                service: ServiceId::decode(&mut r)?,
                demand: Resources::decode(&mut r)?,
                remaining_work: r.f64()?,
                src: NodeId::decode(&mut r)?,
                dst: NodeId::decode(&mut r)?,
                payload_kib: r.u64()?,
                done_at: SimTime::decode(&mut r)?,
            };
            sys.migration.in_flight.insert(id, m);
        }

        Ok(Resumed { sys, engine })
    }

    /// Run to `duration` like [`run`](Self::run), taking a snapshot at
    /// every `policy.every_n_ticks`-th sync-tick boundary (after the
    /// `Sync` event at that instant has fired — the checkpoint hook sits
    /// at the sync-loop stage boundary). Returns the report together with
    /// the retained checkpoints, oldest first.
    pub fn run_checkpointed(
        mut self,
        duration: SimTime,
        label: &str,
        policy: CheckpointPolicy,
    ) -> Result<(RunReport, Vec<Checkpoint>), SnapError> {
        let mut engine: Engine<Event> = Engine::new();
        self.prime(&mut engine, duration);
        let step = SimTime::from_micros(
            self.cfg.sync_interval.as_micros() * policy.every_n_ticks.max(1) as u64,
        );
        let mut checkpoints: VecDeque<Checkpoint> = VecDeque::new();
        let mut at = step;
        while at < duration {
            engine.run_until(&mut self, at);
            checkpoints.push_back(Checkpoint {
                at,
                bytes: encode(&self, &engine)?,
            });
            if policy.keep_last_k > 0 && checkpoints.len() > policy.keep_last_k {
                checkpoints.pop_front();
            }
            at += step;
        }
        engine.run_until(&mut self, duration);
        Ok((self.finish(label), checkpoints.into()))
    }
}

//! Incremental candidate views — the dispatchers' replacement for
//! rebuilding `CandidateNode` sets from the state storage on every round.
//!
//! A candidate view is a pure function of slow-moving *structural* inputs
//! (store contents, fault/topology state, re-assurance factors — all of
//! which change only at sync pushes, re-assure ticks, or fault events)
//! and one fast-moving input: the dispatcher's own reservation table,
//! which changes with every placement. [`CandidateViewCache`] exploits
//! that split:
//!
//! * a **structure clock** is bumped by the sync loop, the re-assurer
//!   (when any factor actually moved) and every fault-runtime arm; a view
//!   built under an older clock is rebuilt from scratch on next use;
//! * between structural bumps, only reservations move. Each view keeps
//!   the pre-reservation availability baseline per row, and the
//!   [`ReservationTable`]'s per-node change stamps are the dirty bits: a
//!   view that saw reservation clock `c` re-derives exactly the rows
//!   whose stamp exceeds `c` (`available = base − reserved`, saturating),
//!   leaving untouched rows bit-identical.
//!
//! D-VPA resizes surface through node capacity, which dispatchers only
//! ever observe via sync-pushed snapshots — so the sync bump covers them
//! by construction and no extra invalidation hook is needed.
//!
//! Views are keyed by `(scope, service)` and store their rows in an
//! `Arc`, so handing a round's `TypeBatch` its candidate set is a
//! refcount bump, not a clone; the next round's in-place patch
//! (`Arc::make_mut`) is alloc-free once the batches are dropped.
//!
//! The cache is deliberately *not* serialized into checkpoints: it is a
//! pure cache, rebuilt on first use after restore, and the equivalence
//! invariant (enforced by [`CandidateViewCache::set_verify`] in the
//! property tests) guarantees a resumed run sees the same views an
//! uninterrupted run would.

use crate::config::TangoConfig;
use crate::lifecycle::ReservationTable;
use std::sync::Arc;
use tango_faults::FaultState;
use tango_hrm::Reassurer;
use tango_metrics::{NodeRole, StateStorage};
use tango_net::NetworkTopology;
use tango_sched::{CandidateNode, LinkObservation, NodeObservation};
use tango_types::{ClusterId, FxHashMap, Resources, ServiceId};
use tango_workload::ServiceCatalog;

use crate::dispatch::{link_capacity, ViewScope};

/// Borrowed bundle of everything a candidate view is derived from.
pub(crate) struct ViewInputs<'a> {
    pub cfg: &'a TangoConfig,
    pub catalog: &'a ServiceCatalog,
    pub topology: &'a NetworkTopology,
    pub store: &'a StateStorage,
    pub fault: &'a FaultState,
    pub reassurer: Option<&'a Reassurer>,
    pub reserved: &'a ReservationTable,
    pub central: ClusterId,
}

/// One cached `(scope, service)` view.
#[derive(Default)]
struct View {
    /// Structure clock this view was (re)built under; 0 = never built.
    built_at: u64,
    /// Reservation clock the rows currently reflect.
    seen_res: u64,
    /// The candidate rows, shared with outstanding `TypeBatch`es.
    rows: Arc<Vec<CandidateNode>>,
    /// Pre-reservation LC availability baseline, parallel to `rows`.
    lc_base: Vec<Resources>,
    /// Pre-reservation BE availability baseline, parallel to `rows`.
    be_base: Vec<Resources>,
}

/// Key: origin cluster for LC scopes, `u32::MAX` for the BE-global scope.
type ViewKey = (u32, ServiceId);

fn key_of(scope: ViewScope, service: ServiceId) -> ViewKey {
    match scope {
        ViewScope::LcGeo(origin) => (origin.0, service),
        ViewScope::BeGlobal => (u32::MAX, service),
    }
}

/// The per-system cache of incremental candidate views.
pub(crate) struct CandidateViewCache {
    /// Bumped on any structural change; views lazily rebuild on next use.
    structure_clock: u64,
    views: FxHashMap<ViewKey, View>,
    /// Sorted geo-nearby cluster sets per origin. Cluster geometry is
    /// static (link degradation changes latency/bandwidth, not
    /// distance), so these never invalidate.
    geo_sets: FxHashMap<ClusterId, Vec<ClusterId>>,
    /// When set, every query re-runs the from-scratch build and asserts
    /// equality — the property-test hook for the delta ≡ rebuild
    /// invariant.
    verify: bool,
}

impl Default for CandidateViewCache {
    fn default() -> Self {
        CandidateViewCache {
            structure_clock: 1, // > View::default().built_at
            views: FxHashMap::default(),
            geo_sets: FxHashMap::default(),
            verify: false,
        }
    }
}

impl CandidateViewCache {
    /// Invalidate every view's structural basis; each rebuilds lazily on
    /// its next use.
    pub(crate) fn invalidate_structure(&mut self) {
        self.structure_clock += 1;
    }

    /// Toggle verification mode (every query cross-checked against a
    /// from-scratch rebuild).
    pub(crate) fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// The candidate view for `(scope, service)`, current as of the
    /// latest structural clock and reservation table. The returned `Arc`
    /// is a shared handle; it stays valid (and frozen) even as later
    /// queries patch the cache.
    pub(crate) fn candidates(
        &mut self,
        inp: &ViewInputs<'_>,
        service: ServiceId,
        scope: ViewScope,
    ) -> Arc<Vec<CandidateNode>> {
        let Self {
            structure_clock,
            views,
            geo_sets,
            verify,
        } = self;
        let geo = match scope {
            ViewScope::LcGeo(origin) => Some(&*geo_sets.entry(origin).or_insert_with(|| {
                let mut set = if inp.cfg.local_only {
                    Vec::new()
                } else {
                    inp.topology.clusters_within(origin, inp.cfg.geo_radius_km)
                };
                set.push(origin);
                set.sort_unstable();
                set.dedup();
                set
            })),
            ViewScope::BeGlobal => None,
        };
        let view = views.entry(key_of(scope, service)).or_default();
        if view.built_at != *structure_clock {
            rebuild(view, inp, service, scope, geo.map(Vec::as_slice));
            view.built_at = *structure_clock;
        } else {
            patch_reservations(view, inp.reserved);
        }
        if *verify {
            let mut fresh = View::default();
            rebuild(&mut fresh, inp, service, scope, geo.map(Vec::as_slice));
            assert_eq!(
                *view.rows, *fresh.rows,
                "candidate view cache diverged from full rebuild \
                 (service {service:?}, scope {scope:?})"
            );
        }
        Arc::clone(&view.rows)
    }
}

/// Build a view from scratch: iterate store rows in node-id order, filter
/// exactly as the dispatchers always have (workers only, live, reachable,
/// in the geo set for LC scopes), annotate with per-cluster link
/// observations and the reservation-adjusted availabilities.
fn rebuild(
    view: &mut View,
    inp: &ViewInputs<'_>,
    service: ServiceId,
    scope: ViewScope,
    geo: Option<&[ClusterId]>,
) {
    let spec = inp.catalog.get(service);
    let vantage = match scope {
        ViewScope::LcGeo(origin) => origin,
        ViewScope::BeGlobal => inp.central,
    };
    let rows = Arc::make_mut(&mut view.rows);
    rows.clear();
    view.lc_base.clear();
    view.be_base.clear();
    // Link attributes are a function of (vantage, cluster, payload);
    // compute each cluster's once.
    let mut links: Vec<Option<LinkObservation>> = vec![None; inp.cfg.clusters];
    for i in 0..inp.store.rows() {
        let Some(row) = inp.store.row(i) else {
            continue;
        };
        if row.role != NodeRole::Worker {
            continue;
        }
        if let Some(set) = geo {
            if set.binary_search(&row.cluster).is_err() {
                continue;
            }
        }
        if inp.fault.is_down(row.node) || !inp.topology.is_reachable(vantage, row.cluster) {
            continue;
        }
        let slot = &mut links[row.cluster.index()];
        let link = *slot.get_or_insert_with(|| LinkObservation {
            delay: inp
                .topology
                .transfer_time(vantage, row.cluster, spec.payload_kib),
            capacity: link_capacity(
                inp.topology,
                inp.cfg.dispatch_interval,
                vantage,
                row.cluster,
                spec.payload_kib,
            ),
        });
        let min_request = match (scope, inp.reassurer) {
            (ViewScope::LcGeo(_), Some(r)) => r.min_request(row.node, service, spec.min_request),
            _ => spec.min_request,
        };
        let obs = NodeObservation {
            node: row.node,
            cluster: row.cluster,
            total: row.total,
            available_lc: row.lc_available(),
            available_be: row.be_available(),
            slack: row.slack_for(service).unwrap_or(1.0),
        };
        view.lc_base.push(obs.available_lc);
        view.be_base.push(obs.available_be);
        rows.push(CandidateNode::from_observation(
            obs,
            link,
            min_request,
            inp.reserved.get(row.node),
            true,
        ));
    }
    view.seen_res = inp.reserved.clock();
}

/// Refresh exactly the rows whose reservation changed since the view last
/// looked. `Arc::make_mut` patches in place when no batch still holds the
/// previous rows, and copy-on-writes otherwise (outstanding batches keep
/// their frozen snapshot).
fn patch_reservations(view: &mut View, reserved: &ReservationTable) {
    let clock = reserved.clock();
    if view.seen_res == clock {
        return;
    }
    let seen = view.seen_res;
    let rows = Arc::make_mut(&mut view.rows);
    for (i, c) in rows.iter_mut().enumerate() {
        if reserved.stamp(c.node) > seen {
            let r = reserved.get(c.node);
            c.available_lc = view.lc_base[i].saturating_sub(&r);
            c.available_be = view.be_base[i].saturating_sub(&r);
        }
    }
    view.seen_res = clock;
}

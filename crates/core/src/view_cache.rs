//! Incremental candidate views — the dispatchers' replacement for
//! rebuilding `CandidateNode` sets from the state storage on every round.
//!
//! A candidate view is a pure function of slow-moving *structural* inputs
//! (store contents, fault/topology state, re-assurance factors — all of
//! which change only at sync pushes, re-assure ticks, or fault events)
//! and one fast-moving input: the dispatcher's own reservation table,
//! which changes with every placement. [`CandidateViewCache`] exploits
//! that split:
//!
//! * a **structure clock** is bumped by the sync loop, the re-assurer
//!   (when any factor actually moved) and every fault-runtime arm; a view
//!   built under an older clock is rebuilt from scratch on next use;
//! * between structural bumps, only reservations move. Each view keeps
//!   the pre-reservation availability baseline per row, and the
//!   [`ReservationTable`]'s per-node change stamps are the dirty bits: a
//!   view that saw reservation clock `c` re-derives exactly the rows
//!   whose stamp exceeds `c` (`available = base − reserved`, saturating),
//!   leaving untouched rows bit-identical.
//!
//! D-VPA resizes surface through node capacity, which dispatchers only
//! ever observe via sync-pushed snapshots — so the sync bump covers them
//! by construction and no extra invalidation hook is needed.
//!
//! Views are keyed by `(scope, service)` and store their rows in an
//! `Arc`, so handing a round's `TypeBatch` its candidate set is a
//! refcount bump, not a clone; the next round's in-place patch
//! (`Arc::make_mut`) is alloc-free once the batches are dropped.
//!
//! The cache is deliberately *not* serialized into checkpoints: it is a
//! pure cache, rebuilt on first use after restore, and the equivalence
//! invariant (enforced by [`CandidateViewCache::set_verify`] in the
//! property tests) guarantees a resumed run sees the same views an
//! uninterrupted run would.

use crate::config::TangoConfig;
use crate::lifecycle::ReservationTable;
use std::sync::Arc;
use tango_faults::FaultState;
use tango_hrm::Reassurer;
use tango_metrics::{NodeRole, StateStorage};
use tango_net::NetworkTopology;
use tango_sched::{CandidateNode, LinkObservation, NodeObservation};
use tango_types::{ClusterId, FxHashMap, Resources, ServiceId};
use tango_workload::ServiceCatalog;

use crate::dispatch::{link_capacity, ViewScope};

/// Borrowed bundle of everything a candidate view is derived from.
pub(crate) struct ViewInputs<'a> {
    pub cfg: &'a TangoConfig,
    pub catalog: &'a ServiceCatalog,
    pub topology: &'a NetworkTopology,
    pub store: &'a StateStorage,
    pub fault: &'a FaultState,
    pub reassurer: Option<&'a Reassurer>,
    pub reserved: &'a ReservationTable,
    pub central: ClusterId,
    /// The cloud tier's cluster and whether its rows are currently
    /// admissible (egress budget not exhausted). `None` = no tier
    /// attached. Part of the inputs so view membership stays a pure
    /// function of them (budget flips bump the structure clock).
    pub cloud_gate: Option<(ClusterId, bool)>,
}

/// One cached `(scope, service)` view.
#[derive(Default)]
struct View {
    /// Structure clock this view was (re)built under; 0 = never built.
    built_at: u64,
    /// Value clock the row values currently reflect.
    values_at: u64,
    /// Reservation clock the rows currently reflect.
    seen_res: u64,
    /// The candidate rows, shared with outstanding `TypeBatch`es.
    rows: Arc<Vec<CandidateNode>>,
    /// Pre-reservation LC availability baseline, parallel to `rows`.
    lc_base: Vec<Resources>,
    /// Pre-reservation BE availability baseline, parallel to `rows`.
    be_base: Vec<Resources>,
    /// Store row index per view row — the membership cache. Which nodes
    /// pass the worker/geo/live/reachable filter (and their link
    /// attributes) only changes on *structural* bumps, so a value-only
    /// bump (sync push) refreshes row values through these indices
    /// without re-running the filters.
    member_rows: Vec<u32>,
    /// Node id per view row, parallel to `rows` (ascending — rebuild
    /// walks the node-dense store in order). The reservation patch scans
    /// this slim array instead of the ~100-byte candidate rows, touching
    /// `rows` (and `Arc::make_mut`'s potential clone) only on hits.
    node_ids: Vec<tango_types::NodeId>,
    /// Scratch: row indices hit by the current reservation patch.
    patch_hits: Vec<u32>,
}

/// Key: origin cluster for LC scopes, `u32::MAX` for the BE-global scope.
type ViewKey = (u32, ServiceId);

fn key_of(scope: ViewScope, service: ServiceId) -> ViewKey {
    match scope {
        ViewScope::LcGeo(origin) => (origin.0, service),
        ViewScope::BeGlobal => (u32::MAX, service),
    }
}

/// The per-system cache of incremental candidate views.
pub(crate) struct CandidateViewCache {
    /// Bumped on any structural change; views lazily rebuild on next use.
    structure_clock: u64,
    /// Bumped when only row *values* moved (sync pushes): membership and
    /// link attributes survive, values re-read through the membership
    /// cache.
    value_clock: u64,
    views: FxHashMap<ViewKey, View>,
    /// Sorted geo-nearby cluster sets per origin. Cluster geometry is
    /// static (link degradation changes latency/bandwidth, not
    /// distance), so these never invalidate.
    geo_sets: FxHashMap<ClusterId, Vec<ClusterId>>,
    /// When set, every query re-runs the from-scratch build and asserts
    /// equality — the property-test hook for the delta ≡ rebuild
    /// invariant.
    verify: bool,
}

impl Default for CandidateViewCache {
    fn default() -> Self {
        CandidateViewCache {
            structure_clock: 1, // > View::default().built_at
            value_clock: 1,
            views: FxHashMap::default(),
            geo_sets: FxHashMap::default(),
            verify: false,
        }
    }
}

impl CandidateViewCache {
    /// Invalidate every view's structural basis; each rebuilds lazily on
    /// its next use.
    pub(crate) fn invalidate_structure(&mut self) {
        self.structure_clock += 1;
    }

    /// Invalidate only row values (a sync push): views keep their
    /// membership and link attributes and re-read values lazily.
    pub(crate) fn invalidate_values(&mut self) {
        self.value_clock += 1;
    }

    /// Toggle verification mode (every query cross-checked against a
    /// from-scratch rebuild).
    pub(crate) fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Current structure epoch — the mirror's structural change key.
    pub(crate) fn structure_clock(&self) -> u64 {
        self.structure_clock
    }

    /// Current value epoch — bumped by every sync push.
    pub(crate) fn value_clock(&self) -> u64 {
        self.value_clock
    }

    /// The candidate view for `(scope, service)`, current as of the
    /// latest structural clock and reservation table. The returned `Arc`
    /// is a shared handle; it stays valid (and frozen) even as later
    /// queries patch the cache.
    pub(crate) fn candidates(
        &mut self,
        inp: &ViewInputs<'_>,
        service: ServiceId,
        scope: ViewScope,
    ) -> Arc<Vec<CandidateNode>> {
        let Self {
            structure_clock,
            value_clock,
            views,
            geo_sets,
            verify,
        } = self;
        let geo = match scope {
            ViewScope::LcGeo(origin) => Some(geo_set_entry(geo_sets, inp, origin)),
            ViewScope::BeGlobal => None,
        };
        let view = views.entry(key_of(scope, service)).or_default();
        if view.built_at != *structure_clock {
            rebuild(view, inp, service, scope, geo.map(Vec::as_slice));
            view.built_at = *structure_clock;
            view.values_at = *value_clock;
        } else if view.values_at != *value_clock {
            refresh_values(view, inp, service, scope);
            view.values_at = *value_clock;
        } else {
            patch_reservations(view, inp.reserved);
        }
        if *verify {
            let mut fresh = View::default();
            rebuild(&mut fresh, inp, service, scope, geo.map(Vec::as_slice));
            assert_eq!(
                *view.rows, *fresh.rows,
                "candidate view cache diverged from full rebuild \
                 (service {service:?}, scope {scope:?})"
            );
        }
        Arc::clone(&view.rows)
    }

    /// OR `origin`'s geo-nearby cluster set — the read *and* write
    /// footprint of its LC dispatch round — into `mask`, one bit per
    /// cluster index. The batched dispatcher uses these masks to form
    /// waves of rounds with pairwise-disjoint footprints that can plan in
    /// parallel against frozen views.
    pub(crate) fn or_geo_mask(
        &mut self,
        inp: &ViewInputs<'_>,
        origin: ClusterId,
        mask: &mut [u64],
    ) {
        for &c in geo_set_entry(&mut self.geo_sets, inp, origin) {
            mask[c.index() >> 6] |= 1 << (c.index() & 63);
        }
    }
}

/// The cached (static) geo-nearby cluster set for an LC origin: nearby
/// clusters within the configured radius plus the origin itself, sorted.
/// Cluster geometry never changes, so entries are computed once.
fn geo_set_entry<'a>(
    geo_sets: &'a mut FxHashMap<ClusterId, Vec<ClusterId>>,
    inp: &ViewInputs<'_>,
    origin: ClusterId,
) -> &'a Vec<ClusterId> {
    geo_sets.entry(origin).or_insert_with(|| {
        let mut set = if inp.cfg.local_only {
            Vec::new()
        } else {
            inp.topology.clusters_within(origin, inp.cfg.geo_radius_km)
        };
        // LC never runs on the cloud tier: only edge clusters (index
        // below `cfg.clusters`) belong in a geo set, however close the
        // tier's centroid placement puts it.
        set.retain(|c| c.index() < inp.cfg.clusters);
        set.push(origin);
        set.sort_unstable();
        set.dedup();
        set
    })
}

/// Build a view from scratch: iterate store rows in node-id order, filter
/// exactly as the dispatchers always have (workers only, live, reachable,
/// in the geo set for LC scopes), annotate with per-cluster link
/// observations and the reservation-adjusted availabilities.
fn rebuild(
    view: &mut View,
    inp: &ViewInputs<'_>,
    service: ServiceId,
    scope: ViewScope,
    geo: Option<&[ClusterId]>,
) {
    let spec = inp.catalog.get(service);
    let vantage = match scope {
        ViewScope::LcGeo(origin) => origin,
        ViewScope::BeGlobal => inp.central,
    };
    let rows = Arc::make_mut(&mut view.rows);
    rows.clear();
    view.lc_base.clear();
    view.be_base.clear();
    view.member_rows.clear();
    view.node_ids.clear();
    // Hoist the factor-free min-request out of the row loop (same
    // reasoning as in `refresh_values`).
    let per_row_factors = match (scope, inp.reassurer) {
        (ViewScope::LcGeo(_), Some(r)) => r.has_factors().then_some(r),
        _ => None,
    };
    let uniform_min = match (scope, inp.reassurer) {
        (ViewScope::LcGeo(_), Some(r)) if per_row_factors.is_none() => {
            r.min_request(tango_types::NodeId(0), service, spec.min_request)
        }
        _ => spec.min_request,
    };
    // Link attributes are a function of (vantage, cluster, payload);
    // compute each cluster's once. Sized over the topology, not
    // `cfg.clusters` — the cloud tier is an extra cluster beyond it.
    let mut links: Vec<Option<LinkObservation>> = vec![None; inp.topology.len()];
    for i in 0..inp.store.rows() {
        let Some(row) = inp.store.row(i) else {
            continue;
        };
        if row.role != NodeRole::Worker {
            continue;
        }
        if let Some(set) = geo {
            if set.binary_search(&row.cluster).is_err() {
                continue;
            }
        }
        if inp.fault.is_down(row.node) || !inp.topology.is_reachable(vantage, row.cluster) {
            continue;
        }
        // Cloud rows leave every view once the egress budget is spent.
        if let Some((cloud, open)) = inp.cloud_gate {
            if row.cluster == cloud && !open {
                continue;
            }
        }
        let slot = &mut links[row.cluster.index()];
        let link = *slot.get_or_insert_with(|| LinkObservation {
            delay: inp
                .topology
                .transfer_time(vantage, row.cluster, spec.payload_kib),
            capacity: link_capacity(
                inp.topology,
                inp.cfg.dispatch_interval,
                vantage,
                row.cluster,
                spec.payload_kib,
            ),
        });
        let min_request = match per_row_factors {
            Some(r) => r.min_request(row.node, service, spec.min_request),
            None => uniform_min,
        };
        let obs = NodeObservation {
            node: row.node,
            cluster: row.cluster,
            total: row.total,
            available_lc: row.lc_available(),
            available_be: row.be_available(),
            slack: row.slack_for(service).unwrap_or(1.0),
        };
        view.lc_base.push(obs.available_lc);
        view.be_base.push(obs.available_be);
        view.member_rows.push(i as u32);
        view.node_ids.push(row.node);
        rows.push(CandidateNode::from_observation(
            obs,
            link,
            min_request,
            inp.reserved.get(row.node),
            true,
        ));
    }
    // The journal patch path binary-searches rows by node id; store rows
    // are dense by node, so build order guarantees this.
    debug_assert!(rows.windows(2).all(|w| w[0].node < w[1].node));
    view.seen_res = inp.reserved.clock();
}

/// Re-read row *values* (availability, slack, re-assured min-request)
/// through the membership cache after a sync push or re-assure tick.
/// Membership and link attributes are structure-stable and survive
/// untouched.
fn refresh_values(view: &mut View, inp: &ViewInputs<'_>, service: ServiceId, scope: ViewScope) {
    let spec = inp.catalog.get(service);
    // While no re-assurance factor is in effect, the adjusted min-request
    // is the same for every row — compute it once instead of per row
    // (bit-identical: it is exactly `min_request` at factor 1.0).
    let per_row_factors = match (scope, inp.reassurer) {
        (ViewScope::LcGeo(_), Some(re)) => re.has_factors().then_some(re),
        _ => None,
    };
    let uniform_min = match (scope, inp.reassurer) {
        (ViewScope::LcGeo(_), Some(re)) if per_row_factors.is_none() => {
            re.min_request(tango_types::NodeId(0), service, spec.min_request)
        }
        _ => spec.min_request,
    };
    let rows = Arc::make_mut(&mut view.rows);
    for (k, &ri) in view.member_rows.iter().enumerate() {
        let row = inp
            .store
            .row(ri as usize)
            .expect("store membership is stable between structural bumps");
        let c = &mut rows[k];
        let r = inp.reserved.get(c.node);
        view.lc_base[k] = row.lc_available();
        view.be_base[k] = row.be_available();
        c.total = row.total;
        c.available_lc = view.lc_base[k].saturating_sub(&r);
        c.available_be = view.be_base[k].saturating_sub(&r);
        c.slack = row.slack_for(service).unwrap_or(1.0);
        c.min_request = match per_row_factors {
            Some(re) => re.min_request(c.node, service, spec.min_request),
            None => uniform_min,
        };
    }
    view.seen_res = inp.reserved.clock();
}

/// Refresh exactly the rows whose reservation changed since the view last
/// looked. `Arc::make_mut` patches in place when no batch still holds the
/// previous rows, and copy-on-writes otherwise (outstanding batches keep
/// their frozen snapshot).
fn patch_reservations(view: &mut View, reserved: &ReservationTable) {
    let clock = reserved.clock();
    if view.seen_res == clock {
        return;
    }
    let seen = view.seen_res;
    // Journal fast path: when the reservation table still remembers every
    // change since `seen` and the change list is small relative to the
    // view, visit only the changed nodes (binary search by node id)
    // instead of scanning every row. A first read-only pass finds whether
    // any change hits this view at all, so untouched views never
    // copy-on-write rows shared with outstanding batches.
    if let Some((n, probe)) = reserved.changes_since(seen) {
        if n * 4 <= view.rows.len() {
            view.patch_hits.clear();
            for node in probe {
                if let Ok(k) = view.node_ids.binary_search(&node) {
                    view.patch_hits.push(k as u32);
                }
            }
            if !view.patch_hits.is_empty() {
                let rows = Arc::make_mut(&mut view.rows);
                for &k in &view.patch_hits {
                    let k = k as usize;
                    let r = reserved.get(view.node_ids[k]);
                    rows[k].available_lc = view.lc_base[k].saturating_sub(&r);
                    rows[k].available_be = view.be_base[k].saturating_sub(&r);
                }
            }
            view.seen_res = clock;
            return;
        }
    }
    // Full scan over the slim node-id array; the fat candidate rows are
    // only touched (and `Arc::make_mut` only pays a potential clone) when
    // some row actually changed.
    view.patch_hits.clear();
    for (i, &node) in view.node_ids.iter().enumerate() {
        if reserved.stamp(node) > seen {
            view.patch_hits.push(i as u32);
        }
    }
    if !view.patch_hits.is_empty() {
        let rows = Arc::make_mut(&mut view.rows);
        for &k in &view.patch_hits {
            let k = k as usize;
            let r = reserved.get(view.node_ids[k]);
            rows[k].available_lc = view.lc_base[k].saturating_sub(&r);
            rows[k].available_be = view.be_base[k].saturating_sub(&r);
        }
    }
    view.seen_res = clock;
}

//! Dispatch stage: per-master LC dispatch rounds, BE forwarding, and the
//! central BE dispatcher — the ➋/➌ arrows of Fig. 3.
//!
//! The stage owns [`DispatchState`] (the policy backends, the central BE
//! queue, and the incremental candidate-view cache): both the LC and the
//! BE paths read their scheduler views from
//! `crate::view_cache::CandidateViewCache`, whose single row builder
//! goes through `CandidateNode::from_observation` — so reservation
//! subtraction, liveness filtering and reachability cannot drift between
//! the two dispatcher roles.

use crate::ctx::SystemCtx;
use crate::lifecycle;
use crate::system::Event;
use crate::view_cache::{CandidateViewCache, ViewInputs};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use tango_metrics::{TraceEvent, TraceLane};
use tango_net::NetworkTopology;
use tango_sched::{CandidateNode, SchedulerBackend, TypeBatch};
use tango_types::{ClusterId, FxHashSet, NodeId, RequestId, Resources, ServiceId, SimTime};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// State owned by the dispatch stage.
pub struct DispatchState {
    /// Per-cluster LC policy backends, indexed by `ClusterId`.
    pub(crate) lc: Vec<Box<dyn SchedulerBackend + Send>>,
    /// The central BE policy backend.
    pub(crate) be: Box<dyn SchedulerBackend + Send>,
    /// The geographically central cluster hosting the BE dispatcher.
    pub(crate) central: ClusterId,
    /// The central BE scheduling queue.
    pub(crate) central_q: VecDeque<RequestId>,
    /// Node chosen by the previous BE decision, awaiting its reward.
    pub(crate) be_pending_feedback: Option<NodeId>,
    /// Σ completed-BE demand fractions since the last reward payout
    /// (the §5.3.1 long-term reward basis).
    pub(crate) be_completed_frac: f64,
    /// Incremental candidate views, invalidated by the sync loop, the
    /// re-assurer and the fault runtime.
    pub(crate) views: CandidateViewCache,
}

/// Assemble the candidate-view inputs from a `SystemCtx`, reborrowing
/// only the fields a view is derived from. A macro (not a function) so
/// the borrow checker sees the disjoint field projections and still
/// allows `&mut ctx.dispatch.views` alongside.
macro_rules! view_inputs {
    ($ctx:expr) => {
        ViewInputs {
            cfg: $ctx.cfg,
            catalog: $ctx.catalog,
            topology: &*$ctx.topology,
            store: &*$ctx.store,
            fault: &*$ctx.fault,
            reassurer: $ctx.reassurer.as_ref(),
            reserved: &$ctx.lifecycle.reserved,
            central: $ctx.dispatch.central,
        }
    };
}

/// Which vantage a candidate view is built from.
#[derive(Debug, Clone, Copy)]
pub enum ViewScope {
    /// LC dispatch: origin cluster + geo-nearby clusters (or origin only
    /// in `local_only` mode), viewed from the origin master.
    LcGeo(ClusterId),
    /// BE dispatch: the whole system, viewed from the central cluster.
    BeGlobal,
}

/// Requests-per-round transmission capacity of the master→node link
/// (Eq. 4's c_{i,j} discretized to the dispatch interval).
pub(crate) fn link_capacity(
    topology: &NetworkTopology,
    dispatch_interval: SimTime,
    from: ClusterId,
    to: ClusterId,
    payload_kib: u64,
) -> u32 {
    let bw = topology.bandwidth_mbps(from, to).max(1);
    let bits_per_round = bw as u128 * dispatch_interval.as_micros() as u128;
    let bits_per_req = (payload_kib.max(1) as u128) * 8_192;
    ((bits_per_round / bits_per_req).clamp(1, 100_000)) as u32
}

fn cluster_of_node(ctx: &SystemCtx<'_>, node: NodeId) -> ClusterId {
    ctx.nodes[node.index()].cluster
}

/// `Dispatch(c)`: master c's dispatch round — expire, failover-check,
/// plan LC placements per type, forward (or locally schedule) BE.
pub(crate) fn on_dispatch(ctx: &mut SystemCtx<'_>, cluster: ClusterId, sched: &mut Sched<'_>) {
    let now = sched.now();
    let ci = cluster.index();

    // Expire hopeless entries in both queues regardless of master
    // health — waiting requests age even while the control plane is
    // down.
    let expired = lifecycle::expire_queue(
        ctx.catalog,
        &mut ctx.clusters[ci].lc_q,
        &ctx.lifecycle.requests,
        ctx.cfg.lc_patience,
        now,
    );
    for rid in expired {
        lifecycle::abandon(ctx, rid, now);
    }
    let expired = lifecycle::expire_queue(
        ctx.catalog,
        &mut ctx.clusters[ci].be_q,
        &ctx.lifecycle.requests,
        ctx.cfg.be_patience,
        now,
    );
    for rid in expired {
        lifecycle::abandon(ctx, rid, now);
    }

    // Master failover: a dead master's round is either taken over by
    // the nearest live one (extra control hop on every delivery) or
    // skipped entirely when none is reachable.
    let Some((_acting, failover_delay)) = crate::fault_rt::acting_master_for(ctx, cluster) else {
        sched.schedule_in(ctx.cfg.dispatch_interval, Event::Dispatch(cluster));
        return;
    };

    // LC queue: group by type, plan, dispatch.
    if !ctx.clusters[ci].lc_q.is_empty() {
        let drained: Vec<RequestId> = ctx.clusters[ci].lc_q.drain(..).collect();
        let mut by_type: BTreeMap<ServiceId, Vec<RequestId>> = BTreeMap::new();
        for rid in &drained {
            if let Some(r) = ctx.lifecycle.requests.get(rid) {
                by_type.entry(r.service).or_default().push(*rid);
            }
        }
        // Per-type dispatch graphs are independent commodities: every
        // batch reads the same start-of-round candidate snapshot
        // (including the reservation table), so the per-type plans can
        // run as one fan-out on the scheduler's pool. All batches are
        // built before any placement mutates the reservation table, so
        // the views share one frozen reservation clock.
        let batches: Vec<TypeBatch> = {
            let views = &mut ctx.dispatch.views;
            let inp = view_inputs!(ctx);
            by_type
                .into_iter()
                .map(|(service, requests)| TypeBatch {
                    service,
                    requests,
                    nodes: views.candidates(&inp, service, ViewScope::LcGeo(cluster)),
                })
                .collect()
        };
        let placements_per_type = ctx.dispatch.lc[ci].plan_lc(&batches, ctx.pool);
        let mut assigned: FxHashSet<RequestId> = FxHashSet::default();
        for (batch, placements) in batches.iter().zip(placements_per_type) {
            let payload = ctx.catalog.get(batch.service).payload_kib;
            for (rid, node) in placements {
                if ctx.fault.is_down(node) {
                    // A dead node slipped through the masking layers;
                    // count it (the invariant tests assert this stays
                    // zero) and leave the request queued.
                    ctx.fault.summary.down_node_dispatches += 1;
                    continue;
                }
                assigned.insert(rid);
                if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                    r.mark_dispatched(node);
                    let demand = r.demand;
                    ctx.lifecycle.reserved.add(node, demand);
                }
                ctx.emit(now, || TraceEvent::DispatchDecision {
                    request: rid,
                    target: node,
                    lane: TraceLane::Lc,
                });
                let delay = failover_delay
                    + ctx
                        .topology
                        .transfer_time(cluster, cluster_of_node(ctx, node), payload);
                sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
            }
        }
        // unplaced requests stay queued, original order
        for rid in drained {
            if !assigned.contains(&rid) {
                ctx.clusters[ci].lc_q.push_back(rid);
            }
        }
    }

    // BE queue: forward to the central dispatcher (or local round-
    // robin in CERES mode, where BE never leaves the cluster).
    if ctx.cfg.local_only {
        // schedule BE within the cluster using the central policy but
        // with local candidates only
        let drained: Vec<RequestId> = ctx.clusters[ci].be_q.drain(..).collect();
        for rid in drained {
            let Some(req) = ctx.lifecycle.requests.get(&rid) else {
                continue;
            };
            let service = req.service;
            let demand = req.demand;
            let payload = ctx.catalog.get(service).payload_kib;
            let local: Vec<CandidateNode> = {
                let views = &mut ctx.dispatch.views;
                let inp = view_inputs!(ctx);
                let global = views.candidates(&inp, service, ViewScope::BeGlobal);
                global
                    .iter()
                    .filter(|c| c.cluster == cluster)
                    .cloned()
                    .collect()
            };
            pay_be_feedback(ctx, &demand, &local, now);
            match ctx.dispatch.be.pick_be(&demand, &local) {
                Some(node) if ctx.fault.is_down(node) => {
                    ctx.fault.summary.down_node_dispatches += 1;
                    ctx.clusters[ci].be_q.push_back(rid);
                }
                Some(node) => {
                    if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                        r.mark_dispatched(node);
                        let demand = r.demand;
                        ctx.lifecycle.reserved.add(node, demand);
                    }
                    ctx.dispatch.be_pending_feedback = Some(node);
                    ctx.emit(now, || TraceEvent::DispatchDecision {
                        request: rid,
                        target: node,
                        lane: TraceLane::Be,
                    });
                    let delay = failover_delay
                        + ctx
                            .topology
                            .transfer_time(cluster, cluster_of_node(ctx, node), payload);
                    sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
                }
                None => ctx.clusters[ci].be_q.push_back(rid),
            }
        }
    } else if ctx.topology.is_reachable(cluster, ctx.dispatch.central) {
        let forward_delay = failover_delay
            + ctx
                .topology
                .transfer_time(cluster, ctx.dispatch.central, 64);
        for rid in ctx.clusters[ci].be_q.drain(..) {
            sched.schedule_in(forward_delay, Event::CentralArrive(rid));
        }
    }
    // (partitioned away from the central cluster: BE stays queued
    // locally until the partition heals)

    sched.schedule_in(ctx.cfg.dispatch_interval, Event::Dispatch(cluster));
}

/// Pay the §5.3.1 reward for the previous BE decision.
pub(crate) fn pay_be_feedback(
    ctx: &mut SystemCtx<'_>,
    next_demand: &Resources,
    next_nodes: &[CandidateNode],
    _now: SimTime,
) {
    if let Some(prev_node) = ctx.dispatch.be_pending_feedback.take() {
        let node = &ctx.nodes[prev_node.index()];
        let (_, be_held) = node.demand_usage();
        let r_short = tango_sched::dcg_be::short_term_reward(&be_held, &node.capacity());
        let r_long = tango_sched::dcg_be::long_term_reward(ctx.dispatch.be_completed_frac);
        ctx.dispatch.be_completed_frac = 0.0;
        // r = r_short + η·r_long (§5.3.1; η = 1 in the paper)
        let reward = r_short + ctx.cfg.ablations.dcg_eta * r_long;
        ctx.dispatch.be.feedback_be(reward, next_demand, next_nodes);
    }
}

/// `CentralArrive`: a forwarded BE request lands in the central queue.
pub(crate) fn on_central_arrive(ctx: &mut SystemCtx<'_>, rid: RequestId) {
    if ctx.lifecycle.requests.contains_key(&rid) {
        ctx.dispatch.central_q.push_back(rid);
    }
}

/// `BeDispatch`: the central dispatcher's round — schedule queued BE
/// requests with the configured policy, paying it the reward for its
/// previous decision.
pub(crate) fn on_be_dispatch(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    let expired = lifecycle::expire_queue(
        ctx.catalog,
        &mut ctx.dispatch.central_q,
        &ctx.lifecycle.requests,
        ctx.cfg.be_patience,
        now,
    );
    for rid in expired {
        lifecycle::abandon(ctx, rid, now);
    }
    // The central dispatcher itself can lose its master.
    let central = ctx.dispatch.central;
    let Some((_acting, failover_delay)) = crate::fault_rt::acting_master_for(ctx, central) else {
        sched.schedule_in(ctx.cfg.dispatch_interval, Event::BeDispatch);
        return;
    };
    let mut deferred = VecDeque::new();
    // The central dispatcher has finite decision throughput per round
    // (each decision is a GNN forward); cap it so a bounce storm —
    // e.g. with the context filter ablated off — degrades throughput
    // instead of wedging the simulation.
    let mut budget = 512usize;
    while let Some(rid) = ctx.dispatch.central_q.pop_front() {
        if budget == 0 {
            deferred.push_back(rid);
            break;
        }
        budget -= 1;
        let Some(req) = ctx.lifecycle.requests.get(&rid) else {
            continue;
        };
        let service = req.service;
        let demand = req.demand;
        let payload = ctx.catalog.get(service).payload_kib;
        let candidates: Arc<Vec<CandidateNode>> = {
            let views = &mut ctx.dispatch.views;
            let inp = view_inputs!(ctx);
            views.candidates(&inp, service, ViewScope::BeGlobal)
        };
        pay_be_feedback(ctx, &demand, &candidates, now);
        match ctx.dispatch.be.pick_be(&demand, &candidates) {
            Some(node) if ctx.fault.is_down(node) => {
                ctx.fault.summary.down_node_dispatches += 1;
                deferred.push_back(rid);
            }
            Some(node) => {
                if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                    r.mark_dispatched(node);
                    let demand = r.demand;
                    ctx.lifecycle.reserved.add(node, demand);
                }
                ctx.dispatch.be_pending_feedback = Some(node);
                ctx.emit(now, || TraceEvent::DispatchDecision {
                    request: rid,
                    target: node,
                    lane: TraceLane::Be,
                });
                let delay = failover_delay
                    + ctx
                        .topology
                        .transfer_time(central, cluster_of_node(ctx, node), payload);
                sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
            }
            None => {
                // nothing feasible system-wide right now: try again
                // next round (Alg. 3's reschedule path)
                deferred.push_back(rid);
                break;
            }
        }
    }
    // keep order: deferred head goes back in front
    while let Some(rid) = deferred.pop_back() {
        ctx.dispatch.central_q.push_front(rid);
    }
    sched.schedule_in(ctx.cfg.dispatch_interval, Event::BeDispatch);
}

#[cfg(test)]
mod tests {
    use crate::config::testutil::small_cfg;
    use crate::config::LcPolicy;
    use crate::system::EdgeCloudSystem;
    use tango_types::SimTime;

    #[test]
    fn central_cluster_is_geographically_central() {
        let sys = EdgeCloudSystem::new(small_cfg());
        assert!(sys.central().index() < sys.cluster_count());
    }

    #[test]
    fn local_only_restricts_candidates() {
        let mut cfg = small_cfg();
        cfg.local_only = true;
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "local");
        // still functions end to end
        assert!(report.lc_completed > 0);
        assert!(report.be_throughput > 0);
    }

    #[test]
    fn all_lc_policies_run_end_to_end() {
        for p in [
            LcPolicy::DssLc,
            LcPolicy::LoadGreedy,
            LcPolicy::KsNative,
            LcPolicy::Scoring,
        ] {
            let mut cfg = small_cfg();
            cfg.lc_policy = p;
            let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(3), p.name());
            assert!(report.lc_completed > 0, "{} completed nothing", p.name());
        }
    }
}

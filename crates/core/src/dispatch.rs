//! Dispatch stage: per-master LC dispatch rounds, BE forwarding, and the
//! central BE dispatcher — the ➋/➌ arrows of Fig. 3.
//!
//! The stage owns [`DispatchState`] (the policy backends, the central BE
//! queue, and the incremental candidate-view cache): both the LC and the
//! BE paths read their scheduler views from
//! `crate::view_cache::CandidateViewCache`, whose single row builder
//! goes through `CandidateNode::from_observation` — so reservation
//! subtraction, liveness filtering and reachability cannot drift between
//! the two dispatcher roles.

use crate::ctx::SystemCtx;
use crate::lifecycle;
use crate::system::Event;
use crate::view_cache::{CandidateViewCache, ViewInputs};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use tango_metrics::{TraceEvent, TraceLane};
use tango_net::NetworkTopology;
use tango_par::Pool;
use tango_sched::{CandidateNode, SchedulerBackend, TypeBatch};
use tango_types::{ClusterId, FxHashSet, NodeId, RequestId, Resources, ServiceId, SimTime};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// State owned by the dispatch stage.
pub struct DispatchState {
    /// Per-cluster LC policy backends, indexed by `ClusterId`.
    pub(crate) lc: Vec<Box<dyn SchedulerBackend + Send>>,
    /// The central BE policy backend.
    pub(crate) be: Box<dyn SchedulerBackend + Send>,
    /// The geographically central cluster hosting the BE dispatcher.
    pub(crate) central: ClusterId,
    /// The central BE scheduling queue.
    pub(crate) central_q: VecDeque<RequestId>,
    /// Node chosen by the previous BE decision, awaiting its reward.
    pub(crate) be_pending_feedback: Option<NodeId>,
    /// Σ completed-BE demand fractions since the last reward payout
    /// (the §5.3.1 long-term reward basis).
    pub(crate) be_completed_frac: f64,
    /// Incremental candidate views, invalidated by the sync loop, the
    /// re-assurer and the fault runtime.
    pub(crate) views: CandidateViewCache,
}

/// Assemble the candidate-view inputs from a `SystemCtx`, reborrowing
/// only the fields a view is derived from. A macro (not a function) so
/// the borrow checker sees the disjoint field projections and still
/// allows `&mut ctx.dispatch.views` alongside.
macro_rules! view_inputs {
    ($ctx:expr) => {
        ViewInputs {
            cfg: $ctx.cfg,
            catalog: $ctx.catalog,
            topology: &*$ctx.topology,
            store: &*$ctx.store,
            fault: &*$ctx.fault,
            reassurer: $ctx.reassurer.as_ref(),
            reserved: &$ctx.lifecycle.reserved,
            central: $ctx.dispatch.central,
            cloud_gate: $ctx.migration.cloud_gate(),
        }
    };
}

/// Which vantage a candidate view is built from.
#[derive(Debug, Clone, Copy)]
pub enum ViewScope {
    /// LC dispatch: origin cluster + geo-nearby clusters (or origin only
    /// in `local_only` mode), viewed from the origin master.
    LcGeo(ClusterId),
    /// BE dispatch: the whole system, viewed from the central cluster.
    BeGlobal,
}

/// Requests-per-round transmission capacity of the master→node link
/// (Eq. 4's c_{i,j} discretized to the dispatch interval).
pub(crate) fn link_capacity(
    topology: &NetworkTopology,
    dispatch_interval: SimTime,
    from: ClusterId,
    to: ClusterId,
    payload_kib: u64,
) -> u32 {
    let bw = topology.bandwidth_mbps(from, to).max(1);
    let bits_per_round = bw as u128 * dispatch_interval.as_micros() as u128;
    let bits_per_req = (payload_kib.max(1) as u128) * 8_192;
    ((bits_per_round / bits_per_req).clamp(1, 100_000)) as u32
}

fn cluster_of_node(ctx: &SystemCtx<'_>, node: NodeId) -> ClusterId {
    ctx.nodes[node.index()].cluster
}

/// One cluster's round within a coalesced dispatch batch.
struct Round {
    cluster: ClusterId,
    /// Extra control hop when a remote master took the round over.
    failover_delay: SimTime,
    /// Whether any live master could take the round at all.
    alive: bool,
    /// LC requests drained from the queue, in queue order.
    drained: Vec<RequestId>,
    /// Per-service plan inputs, built against the wave's frozen views.
    batches: Vec<TypeBatch>,
    /// Per-batch placements produced by the plan phase.
    plans: Vec<Vec<(RequestId, NodeId)>>,
}

/// `Dispatch(c)`: entry point for a master's dispatch round. All masters
/// share the dispatch interval, so the rounds of one tick sit at the same
/// instant as one consecutive run in the event queue; this handler absorbs
/// that run via same-instant coalescing and hands the whole batch to the
/// two-phase dispatcher. Coalescing stops at the first non-`Dispatch`
/// event, so any event interleaved into the run (by sequence number) still
/// fires exactly where it would have.
pub(crate) fn on_dispatch(ctx: &mut SystemCtx<'_>, first: ClusterId, sched: &mut Sched<'_>) {
    let mut clusters = vec![first];
    while let Some(e) = sched.take_coalesced(|e| matches!(e, Event::Dispatch(_))) {
        match e {
            Event::Dispatch(c) => clusters.push(c),
            _ => unreachable!("coalescing predicate admits only Dispatch"),
        }
    }
    dispatch_batch(ctx, &clusters, sched);
}

/// The two-phase dispatch plane. Per batch (in event-pop order):
///
/// * **Phase 0 (sequential)** — queue expiry for both lanes and the
///   master-failover check. Expiry touches only the cluster's own queues
///   and request records, so hoisting it ahead of every round commutes
///   with the rounds themselves; `acting_master_for` is a pure read of
///   fault/topology state, which no commit in the batch can change.
/// * **Wave formation** — consecutive rounds whose read/write footprints
///   (the origin's geo cluster set) are pairwise disjoint form a wave.
///   A conflicting round closes the wave and opens the next one, so
///   conflicts are resolved by *ordering*, never by re-planning.
/// * **Plan (parallel within a wave)** — candidate views are prefetched
///   sequentially, then each round's `plan_lc` runs on its own backend
///   over `tango-par`. Disjoint footprints mean no plan can observe
///   another wave member's writes, so the frozen views equal what strict
///   sequential execution would have read.
/// * **Commit (sequential)** — placements, reservations, BE forwarding
///   and the round reschedule are applied in pop order, reproducing the
///   exact event-push sequence of the pre-batched dispatcher. Golden
///   digests pin this equivalence at every thread count.
fn dispatch_batch(ctx: &mut SystemCtx<'_>, clusters: &[ClusterId], sched: &mut Sched<'_>) {
    let now = sched.now();

    // Phase 0: expiry + failover check, sequential in pop order.
    let mut rounds: Vec<Round> = Vec::with_capacity(clusters.len());
    for &cluster in clusters {
        let ci = cluster.index();
        // Expire hopeless entries in both queues regardless of master
        // health — waiting requests age even while the control plane is
        // down.
        let expired = lifecycle::expire_queue(
            ctx.catalog,
            &mut ctx.clusters[ci].lc_q,
            &ctx.lifecycle.requests,
            ctx.cfg.lc_patience,
            now,
        );
        for rid in expired {
            lifecycle::abandon(ctx, rid, now);
        }
        let expired = lifecycle::expire_queue(
            ctx.catalog,
            &mut ctx.clusters[ci].be_q,
            &ctx.lifecycle.requests,
            ctx.cfg.be_patience,
            now,
        );
        for rid in expired {
            lifecycle::abandon(ctx, rid, now);
        }
        // Master failover: a dead master's round is either taken over by
        // the nearest live one (extra control hop on every delivery) or
        // skipped entirely when none is reachable.
        let (alive, failover_delay) = match crate::fault_rt::acting_master_for(ctx, cluster) {
            Some((_acting, d)) => (true, d),
            None => (false, SimTime::ZERO),
        };
        rounds.push(Round {
            cluster,
            failover_delay,
            alive,
            drained: Vec::new(),
            batches: Vec::new(),
            plans: Vec::new(),
        });
    }

    let words = ctx.cfg.clusters.div_ceil(64).max(1);
    let mut wave_mask = vec![0u64; words];
    let mut fp_mask = vec![0u64; words];
    let mut i = 0;
    while i < rounds.len() {
        // Wave formation: greedily extend while footprints stay disjoint.
        // A round with no LC work (and no local-BE work) has an empty
        // footprint — central-mode BE forwarding only pushes events — and
        // joins any wave.
        wave_mask.iter_mut().for_each(|w| *w = 0);
        let mut j = i;
        while j < rounds.len() {
            let r = &rounds[j];
            let ci = r.cluster.index();
            let needs_views = r.alive
                && (!ctx.clusters[ci].lc_q.is_empty()
                    || (ctx.cfg.local_only && !ctx.clusters[ci].be_q.is_empty()));
            if needs_views {
                fp_mask.iter_mut().for_each(|w| *w = 0);
                {
                    let views = &mut ctx.dispatch.views;
                    let inp = view_inputs!(ctx);
                    views.or_geo_mask(&inp, r.cluster, &mut fp_mask);
                }
                if fp_mask.iter().zip(&wave_mask).any(|(f, w)| f & w != 0) && j > i {
                    break;
                }
                wave_mask
                    .iter_mut()
                    .zip(&fp_mask)
                    .for_each(|(w, f)| *w |= f);
            }
            j += 1;
        }

        // Prefetch: drain LC queues and build per-type batches against
        // the current views, sequentially in pop order. All batches of a
        // wave are built before any wave member commits, so they share
        // one frozen reservation clock; disjointness makes that snapshot
        // identical to the one sequential execution would read.
        for round in &mut rounds[i..j] {
            let ci = round.cluster.index();
            if !round.alive || ctx.clusters[ci].lc_q.is_empty() {
                continue;
            }
            round.drained = ctx.clusters[ci].lc_q.drain(..).collect();
            let mut by_type: BTreeMap<ServiceId, Vec<RequestId>> = BTreeMap::new();
            for rid in &round.drained {
                if let Some(r) = ctx.lifecycle.requests.get(rid) {
                    by_type.entry(r.service).or_default().push(*rid);
                }
            }
            let views = &mut ctx.dispatch.views;
            let inp = view_inputs!(ctx);
            round.batches = by_type
                .into_iter()
                .map(|(service, requests)| TypeBatch {
                    service,
                    requests,
                    nodes: views.candidates(&inp, service, ViewScope::LcGeo(round.cluster)),
                })
                .collect();
        }

        // Plan: one backend per round, disjoint `&mut` borrows, cluster-
        // level fan-out. A single planning round keeps the shared pool so
        // its per-type fan-out still parallelizes; with several, each
        // planner runs single-threaded inside the cluster-level fan-out —
        // the pool-size-invariance contract makes both choices
        // bit-identical, so the branch is on workload shape only.
        let planning: Vec<usize> = (i..j).filter(|&k| !rounds[k].batches.is_empty()).collect();
        if let [k] = planning[..] {
            let ci = rounds[k].cluster.index();
            rounds[k].plans = ctx.dispatch.lc[ci].plan_lc(&rounds[k].batches, ctx.pool);
        } else if !planning.is_empty() {
            let mut want: Vec<Option<usize>> = vec![None; ctx.dispatch.lc.len()];
            for &k in &planning {
                want[rounds[k].cluster.index()] = Some(k);
            }
            struct PlanJob<'b> {
                round: usize,
                batches: Vec<TypeBatch>,
                plans: Vec<Vec<(RequestId, NodeId)>>,
                backend: &'b mut Box<dyn SchedulerBackend + Send>,
            }
            let mut jobs: Vec<PlanJob<'_>> = Vec::with_capacity(planning.len());
            for (ci, backend) in ctx.dispatch.lc.iter_mut().enumerate() {
                if let Some(k) = want[ci] {
                    jobs.push(PlanJob {
                        round: k,
                        batches: std::mem::take(&mut rounds[k].batches),
                        plans: Vec::new(),
                        backend,
                    });
                }
            }
            ctx.pool.par_chunks_mut(&mut jobs, 1, |_, chunk| {
                for job in chunk {
                    let inner = Pool::single();
                    job.plans = job.backend.plan_lc(&job.batches, &inner);
                }
            });
            for job in jobs {
                rounds[job.round].batches = job.batches;
                rounds[job.round].plans = job.plans;
            }
        }

        // Commit: apply every wave member in pop order, reproducing the
        // exact per-round push sequence (LC deliveries, then BE, then the
        // round reschedule) of strict sequential dispatch.
        for round in &rounds[i..j] {
            commit_round(ctx, round, now, sched);
        }
        i = j;
    }
}

/// Apply one planned round: LC placements, the BE lane, and the round's
/// reschedule — the writeback half of the two-phase dispatcher.
fn commit_round(ctx: &mut SystemCtx<'_>, round: &Round, now: SimTime, sched: &mut Sched<'_>) {
    let cluster = round.cluster;
    let ci = cluster.index();
    if !round.alive {
        sched.schedule_in(ctx.cfg.dispatch_interval, Event::Dispatch(cluster));
        return;
    }
    let failover_delay = round.failover_delay;

    if !round.drained.is_empty() {
        let mut assigned: FxHashSet<RequestId> = FxHashSet::default();
        for (batch, placements) in round.batches.iter().zip(round.plans.iter()) {
            let payload = ctx.catalog.get(batch.service).payload_kib;
            for &(rid, node) in placements {
                if ctx.fault.is_down(node) {
                    // A dead node slipped through the masking layers;
                    // count it (the invariant tests assert this stays
                    // zero) and leave the request queued.
                    ctx.fault.summary.down_node_dispatches += 1;
                    continue;
                }
                assigned.insert(rid);
                if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                    r.mark_dispatched(node);
                    let demand = r.demand;
                    ctx.lifecycle.reserved.add(node, demand);
                }
                ctx.emit(now, || TraceEvent::DispatchDecision {
                    request: rid,
                    target: node,
                    lane: TraceLane::Lc,
                });
                let delay = failover_delay
                    + ctx
                        .topology
                        .transfer_time(cluster, cluster_of_node(ctx, node), payload);
                sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
            }
        }
        // unplaced requests stay queued, original order
        for &rid in &round.drained {
            if !assigned.contains(&rid) {
                ctx.clusters[ci].lc_q.push_back(rid);
            }
        }
    }

    // BE queue: forward to the central dispatcher (or local round-
    // robin in CERES mode, where BE never leaves the cluster).
    if ctx.cfg.local_only {
        // schedule BE within the cluster using the central policy but
        // with local candidates only
        let drained: Vec<RequestId> = ctx.clusters[ci].be_q.drain(..).collect();
        for rid in drained {
            let Some(req) = ctx.lifecycle.requests.get(&rid) else {
                continue;
            };
            let service = req.service;
            let demand = req.demand;
            let payload = ctx.catalog.get(service).payload_kib;
            let local: Vec<CandidateNode> = {
                let views = &mut ctx.dispatch.views;
                let inp = view_inputs!(ctx);
                let global = views.candidates(&inp, service, ViewScope::BeGlobal);
                global
                    .iter()
                    .filter(|c| c.cluster == cluster)
                    .cloned()
                    .collect()
            };
            pay_be_feedback(ctx, &demand, &local, now);
            match ctx.dispatch.be.pick_be_sized(&demand, &local) {
                Some((node, _)) if ctx.fault.is_down(node) => {
                    ctx.fault.summary.down_node_dispatches += 1;
                    ctx.clusters[ci].be_q.push_back(rid);
                }
                Some((node, granted)) => {
                    if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                        r.mark_dispatched(node);
                        // continuous-action policies may grant less than
                        // the nominal demand; the grant is what the node
                        // reserves and the pod gets
                        r.demand = granted;
                        ctx.lifecycle.reserved.add(node, granted);
                    }
                    ctx.dispatch.be_pending_feedback = Some(node);
                    ctx.emit(now, || TraceEvent::DispatchDecision {
                        request: rid,
                        target: node,
                        lane: TraceLane::Be,
                    });
                    let delay = failover_delay
                        + ctx
                            .topology
                            .transfer_time(cluster, cluster_of_node(ctx, node), payload);
                    sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
                }
                None => ctx.clusters[ci].be_q.push_back(rid),
            }
        }
    } else if ctx.topology.is_reachable(cluster, ctx.dispatch.central) {
        let forward_delay = failover_delay
            + ctx
                .topology
                .transfer_time(cluster, ctx.dispatch.central, 64);
        for rid in ctx.clusters[ci].be_q.drain(..) {
            sched.schedule_in(forward_delay, Event::CentralArrive(rid));
        }
    }
    // (partitioned away from the central cluster: BE stays queued
    // locally until the partition heals)

    sched.schedule_in(ctx.cfg.dispatch_interval, Event::Dispatch(cluster));
}

/// Pay the §5.3.1 reward for the previous BE decision.
pub(crate) fn pay_be_feedback(
    ctx: &mut SystemCtx<'_>,
    next_demand: &Resources,
    next_nodes: &[CandidateNode],
    _now: SimTime,
) {
    if let Some(prev_node) = ctx.dispatch.be_pending_feedback.take() {
        let node = &ctx.nodes[prev_node.index()];
        let (_, be_held) = node.demand_usage();
        let r_short = tango_sched::dcg_be::short_term_reward(&be_held, &node.capacity());
        let r_long = tango_sched::dcg_be::long_term_reward(ctx.dispatch.be_completed_frac);
        ctx.dispatch.be_completed_frac = 0.0;
        // r = r_short + η·r_long (§5.3.1; η = 1 in the paper)
        let reward = r_short + ctx.cfg.ablations.dcg_eta * r_long;
        ctx.dispatch.be.feedback_be(reward, next_demand, next_nodes);
    }
}

/// `CentralArrive`: a forwarded BE request lands in the central queue.
pub(crate) fn on_central_arrive(ctx: &mut SystemCtx<'_>, rid: RequestId) {
    if ctx.lifecycle.requests.contains_key(&rid) {
        ctx.dispatch.central_q.push_back(rid);
    }
}

/// `BeDispatch`: the central dispatcher's round — schedule queued BE
/// requests with the configured policy, paying it the reward for its
/// previous decision.
pub(crate) fn on_be_dispatch(ctx: &mut SystemCtx<'_>, sched: &mut Sched<'_>) {
    let now = sched.now();
    let expired = lifecycle::expire_queue(
        ctx.catalog,
        &mut ctx.dispatch.central_q,
        &ctx.lifecycle.requests,
        ctx.cfg.be_patience,
        now,
    );
    for rid in expired {
        lifecycle::abandon(ctx, rid, now);
    }
    // The central dispatcher itself can lose its master.
    let central = ctx.dispatch.central;
    let Some((_acting, failover_delay)) = crate::fault_rt::acting_master_for(ctx, central) else {
        sched.schedule_in(ctx.cfg.dispatch_interval, Event::BeDispatch);
        return;
    };
    let mut deferred = VecDeque::new();
    // The central dispatcher has finite decision throughput per round
    // (each decision is a GNN forward); cap it so a bounce storm —
    // e.g. with the context filter ablated off — degrades throughput
    // instead of wedging the simulation.
    let mut budget = 512usize;
    while let Some(rid) = ctx.dispatch.central_q.pop_front() {
        if budget == 0 {
            deferred.push_back(rid);
            break;
        }
        budget -= 1;
        let Some(req) = ctx.lifecycle.requests.get(&rid) else {
            continue;
        };
        let service = req.service;
        let demand = req.demand;
        let payload = ctx.catalog.get(service).payload_kib;
        let candidates: Arc<Vec<CandidateNode>> = {
            let views = &mut ctx.dispatch.views;
            let inp = view_inputs!(ctx);
            views.candidates(&inp, service, ViewScope::BeGlobal)
        };
        pay_be_feedback(ctx, &demand, &candidates, now);
        match ctx.dispatch.be.pick_be_sized(&demand, &candidates) {
            Some((node, _)) if ctx.fault.is_down(node) => {
                ctx.fault.summary.down_node_dispatches += 1;
                deferred.push_back(rid);
            }
            Some((node, granted)) => {
                if let Some(r) = ctx.lifecycle.requests.get_mut(&rid) {
                    r.mark_dispatched(node);
                    // sized grant from a continuous-action policy (equals
                    // the nominal demand for discrete policies)
                    r.demand = granted;
                    ctx.lifecycle.reserved.add(node, granted);
                }
                ctx.dispatch.be_pending_feedback = Some(node);
                ctx.emit(now, || TraceEvent::DispatchDecision {
                    request: rid,
                    target: node,
                    lane: TraceLane::Be,
                });
                let target_cluster = cluster_of_node(ctx, node);
                // A BE placement on the cloud tier ships its payload
                // across the metered edge→cloud boundary.
                if Some(target_cluster) == ctx.migration.cloud {
                    crate::migration::charge_egress(ctx, now, payload);
                }
                let delay =
                    failover_delay + ctx.topology.transfer_time(central, target_cluster, payload);
                sched.schedule_in(delay, Event::Deliver(rid, node, ctx.fault.epoch(node)));
            }
            None => {
                // nothing feasible system-wide right now: try again
                // next round (Alg. 3's reschedule path)
                deferred.push_back(rid);
                break;
            }
        }
    }
    // keep order: deferred head goes back in front
    while let Some(rid) = deferred.pop_back() {
        ctx.dispatch.central_q.push_front(rid);
    }
    sched.schedule_in(ctx.cfg.dispatch_interval, Event::BeDispatch);
}

#[cfg(test)]
mod tests {
    use crate::config::testutil::small_cfg;
    use crate::config::LcPolicy;
    use crate::system::EdgeCloudSystem;
    use tango_types::SimTime;

    #[test]
    fn central_cluster_is_geographically_central() {
        let sys = EdgeCloudSystem::new(small_cfg());
        assert!(sys.central().index() < sys.cluster_count());
    }

    #[test]
    fn local_only_restricts_candidates() {
        let mut cfg = small_cfg();
        cfg.local_only = true;
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "local");
        // still functions end to end
        assert!(report.lc_completed > 0);
        assert!(report.be_throughput > 0);
    }

    #[test]
    fn all_lc_policies_run_end_to_end() {
        for p in [
            LcPolicy::DssLc,
            LcPolicy::LoadGreedy,
            LcPolicy::KsNative,
            LcPolicy::Scoring,
        ] {
            let mut cfg = small_cfg();
            cfg.lc_policy = p;
            let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(3), p.name());
            assert!(report.lc_completed > 0, "{} completed nothing", p.name());
        }
    }
}

//! Fault runtime stage: applying compiled fault-plan events, master
//! failover routing, and the per-request conservation audit.
//!
//! The stage state is [`tango_faults::FaultState`] itself (down flags,
//! crash epochs, the fault ledger); this module owns every mutation of it
//! that originates from a plan event, plus the failover routing query the
//! dispatch stage consults each round.

use crate::ctx::SystemCtx;
use crate::lifecycle::{self, LifecycleState};
use crate::report::RunAudit;
use crate::system::Event;
use tango_faults::{FaultEvent, FaultState};
use tango_metrics::TraceEvent;
use tango_types::{ClusterId, RequestId, RequestOutcome, RequestState, ServiceClass, SimTime};

type Sched<'a> = tango_simcore::engine::Scheduler<'a, Event>;

/// Which master acts for `cluster` this dispatch round. Normally the
/// cluster's own; if that master is down, the nearest reachable cluster
/// with a live master steps in (deterministic tiebreak: distance, then
/// cluster id) and every delivery pays the extra control hop back from
/// the stand-in. `None` means no live master is reachable — the round is
/// skipped and queues age in place.
pub(crate) fn acting_master_for(
    ctx: &SystemCtx<'_>,
    cluster: ClusterId,
) -> Option<(ClusterId, SimTime)> {
    let own = ctx.clusters[cluster.index()].master;
    if !ctx.fault.is_down(own) {
        // Under detection-driven faults the master may be physically
        // dead while still *believed* alive; nothing answers, so the
        // round is silently lost until the keep-alive detector trips
        // and failover kicks in. (Oracle mode: phys == detected, so
        // this branch never fires there.)
        if ctx.fault.is_phys_down(own) {
            return None;
        }
        return Some((cluster, SimTime::ZERO));
    }
    let mut best: Option<(f64, ClusterId)> = None;
    for c in ctx.clusters.iter() {
        if c.id == cluster
            || ctx.fault.is_down(c.master)
            || !ctx.topology.is_reachable(cluster, c.id)
        {
            continue;
        }
        let d = ctx.topology.distance_km(cluster, c.id);
        let better = match best {
            None => true,
            Some((bd, bid)) => d < bd || (d == bd && c.id.index() < bid.index()),
        };
        if better {
            best = Some((d, c.id));
        }
    }
    best.and_then(|(_, backup)| {
        // A backup chosen on believed liveness can itself be physically
        // dead and undetected — that round is lost too.
        if ctx.fault.is_phys_down(ctx.clusters[backup.index()].master) {
            return None;
        }
        Some((backup, ctx.topology.one_way_latency(cluster, backup)))
    })
}

/// Apply one compiled fault-plan event. Crashes interrupt everything on
/// the node and hand the work back to the schedulers; recoveries bring
/// the node back *cold* — stale QoS history and re-assurance factors are
/// forgotten so the control loops re-learn it.
pub(crate) fn on_fault(ctx: &mut SystemCtx<'_>, fault: FaultEvent, sched: &mut Sched<'_>) {
    let now = sched.now();
    match fault {
        FaultEvent::NodeCrash { node } => {
            let is_master = ctx.nodes[node.index()].is_master;
            if ctx.cfg.detection.is_some() {
                // Detection-driven fault model: the crash is physical
                // only. Nothing the control plane owns may react yet —
                // interrupted work parks in limbo, wait queues and
                // reservations stay, candidate views are NOT
                // invalidated (the *believed* state did not change, and
                // an attached mirror must not telegraph the crash). The
                // keep-alive detector trips later in
                // `ctrl_rt::keepalive_tick` and runs the reaction.
                if !ctx.fault.on_phys_crash(node, now, is_master) {
                    return; // already physically down
                }
                ctx.emit(now, || TraceEvent::Fault {
                    kind: "crash",
                    node: Some(node),
                });
                let limbo: Vec<(ServiceClass, RequestId)> = ctx.nodes[node.index()]
                    .crash(now)
                    .into_iter()
                    .map(|(class, rr)| (class, rr.request))
                    .collect();
                ctx.fault.push_limbo(node, limbo);
                return;
            }
            if !ctx.fault.on_crash(node, now, is_master) {
                return; // already down (overlapping churn draw)
            }
            ctx.emit(now, || TraceEvent::Fault {
                kind: "crash",
                node: Some(node),
            });
            // Everything running on the node dies; interrupted work
            // is re-queued at its origin master (LC) or the central
            // dispatcher (BE).
            let interrupted = ctx.nodes[node.index()].crash(now);
            for (class, rr) in interrupted {
                match class {
                    ServiceClass::Lc => ctx.fault.summary.lc_interrupted += 1,
                    ServiceClass::Be => ctx.fault.summary.be_interrupted += 1,
                }
                ctx.fault.summary.rescheduled += 1;
                lifecycle::requeue_or_abandon(ctx, rr.request, now);
            }
            // Requests waiting *at* the node (§5.2.2 R′_k) drain back
            // to their origin queues.
            let waiting: Vec<RequestId> = ctx.lifecycle.node_wait[node.index()].drain(..).collect();
            ctx.fault.summary.wait_drained += waiting.len() as u64;
            ctx.fault.summary.rescheduled += waiting.len() as u64;
            for rid in waiting {
                lifecycle::requeue_or_abandon(ctx, rid, now);
            }
            // Wipe the in-flight reservation entry wholesale;
            // deliveries still in the air bounce on the epoch check
            // instead of decrementing a table that no longer exists.
            ctx.lifecycle.reserved.clear_node(node);
        }
        FaultEvent::NodeRecover { node } => {
            // A recovery can land before the keep-alive detector ever
            // tripped. The limbo work still has to go back to the
            // schedulers — it does so here, at the recovery edge, with
            // the same interruption accounting detection would have run.
            let undetected = ctx.fault.is_phys_down(node) && !ctx.fault.is_down(node);
            if !ctx.fault.on_recover(node, now) {
                return; // was not down
            }
            ctx.emit(now, || TraceEvent::Fault {
                kind: "recover",
                node: Some(node),
            });
            if undetected {
                for (class, rid) in ctx.fault.take_limbo(node) {
                    match class {
                        ServiceClass::Lc => ctx.fault.summary.lc_interrupted += 1,
                        ServiceClass::Be => ctx.fault.summary.be_interrupted += 1,
                    }
                    ctx.fault.summary.rescheduled += 1;
                    lifecycle::requeue_or_abandon(ctx, rid, now);
                }
            }
            // Accumulated keep-alive suspicion no longer describes the
            // restarted node.
            if let Some(det) = ctx.ctrl.detector.as_mut() {
                det.reset_node(node);
            }
            ctx.nodes[node.index()].recover(now, ctx.cfg.faults.restart_delay);
            // The node comes back cold: pre-crash latency windows and
            // re-assurance factors no longer describe it.
            ctx.detector.forget_node(node);
            if let Some(r) = ctx.reassurer.as_mut() {
                r.reset_node(node);
            }
            lifecycle::schedule_node_check(ctx, node, sched);
        }
        FaultEvent::LinkDegrade {
            a,
            b,
            latency_factor,
            bandwidth_factor,
        } => {
            ctx.topology
                .degrade_link(a, b, latency_factor, bandwidth_factor);
            ctx.fault.on_link_degrade();
            ctx.emit(now, || TraceEvent::Fault {
                kind: "degrade",
                node: None,
            });
        }
        FaultEvent::LinkRestore { a, b } => {
            ctx.topology.restore_link(a, b);
            ctx.fault.on_link_restore();
            ctx.emit(now, || TraceEvent::Fault {
                kind: "restore",
                node: None,
            });
        }
        FaultEvent::Partition { side } => {
            ctx.topology.set_partition(&side);
            ctx.fault.on_partition();
            ctx.emit(now, || TraceEvent::Fault {
                kind: "partition",
                node: None,
            });
        }
        FaultEvent::Heal => {
            ctx.topology.heal_partition();
            ctx.fault.on_heal();
            ctx.emit(now, || TraceEvent::Fault {
                kind: "heal",
                node: None,
            });
        }
    }
    // Every arm that falls through changed structural view inputs (down
    // flags or topology); arms that found nothing to do returned early
    // above. Cached candidate views rebuild on their next use.
    ctx.dispatch.views.invalidate_structure();
}

/// Bucket every injected request by its terminal state — the fault tests
/// use this to prove that churn neither loses requests nor leaves them
/// running on dead nodes.
pub(crate) fn audit(lifecycle: &LifecycleState, fault: &FaultState) -> RunAudit {
    let mut a = RunAudit {
        total: lifecycle.requests.len() as u64,
        ..RunAudit::default()
    };
    for req in lifecycle.requests.values() {
        match req.outcome() {
            Some(RequestOutcome::Completed) => a.completed += 1,
            Some(RequestOutcome::Abandoned) => a.abandoned += 1,
            Some(RequestOutcome::Failed) => a.failed += 1,
            None => {
                a.pending += 1;
                match req.state {
                    RequestState::Running { target } if fault.is_down(target) => {
                        a.running_on_down_nodes += 1;
                    }
                    // A mid-transfer pod is on neither endpoint: its
                    // residual work rides the in-flight checkpoint, so a
                    // crash on either side can't lose or duplicate it.
                    RequestState::Migrating { .. } => a.in_migration += 1,
                    _ => {}
                }
            }
        }
    }
    a
}

//! The edge-cloud system runtime: Tango's dispatch–allocate–adjust loop
//! (§3 "Operation") as a discrete-event simulation over the kube/cgroup/
//! net substrates.
//!
//! Event alphabet:
//! * `Arrival` — a trace request reaches its origin master and is queued
//!   (LC queue or BE queue);
//! * `Dispatch(c)` — master c's dispatch round: LC requests are planned
//!   per type by the cluster's LC scheduler over geo-nearby candidates;
//!   BE requests are forwarded to the central cluster (or scheduled
//!   locally in `local_only` / CERES mode);
//! * `CentralArrive` — a forwarded BE request lands at the central
//!   cluster's BE traffic dispatcher;
//! * `BeDispatch` — the central dispatcher schedules queued BE requests
//!   with the configured [`BeScheduler`], paying it the §5.3.1 reward for
//!   its previous decision;
//! * `Deliver` — a dispatched request reaches its target worker and is
//!   admitted under the configured allocator (HRM regulations or static
//!   limits); failures requeue, evictions requeue the evicted BE work;
//! * `NodeCheck` — a projected completion: advance the node, collect
//!   completions, feed the QoS detector, reclaim resources;
//! * `Reassure` — Algorithm 1 over the QoS detector;
//! * `Sync` — push node snapshots to the state storage and sample
//!   utilization (the Prometheus/QoS-detector push cycle of Fig. 3).

use crate::config::{AllocatorKind, TangoConfig};
use crate::policy::{make_be_scheduler, make_lc_scheduler};
use crate::report::{RunAudit, RunReport};
use std::collections::{BTreeMap, VecDeque};
use tango_faults::{FaultEvent, FaultState, SystemLayout};
use tango_hrm::{HrmAllocator, Reassurer, StaticAllocator};
use tango_kube::Node;
use tango_metrics::{ExperimentCounters, NodeRole, NodeSnapshot, QosDetector, StateStorage};
use tango_net::NetworkTopology;
use tango_sched::{BeScheduler, CandidateNode, LcScheduler, TypeBatch};
use tango_simcore::{Engine, EventHandler, SimRng};
use tango_types::{
    ClusterId, NodeId, Request, RequestId, RequestOutcome, RequestState, Resources, ServiceClass,
    ServiceId, SimTime,
};
use tango_types::{FxHashMap, FxHashSet};
use tango_workload::{DiurnalProfile, ServiceCatalog, TraceGenerator, TraceSpec};

/// Simulation events.
#[derive(Debug, Clone)]
pub enum Event {
    /// A request arrives at its origin master.
    Arrival {
        /// Service type.
        service: ServiceId,
        /// Origin cluster.
        origin: ClusterId,
        /// Jittered demand from the trace.
        demand: Resources,
    },
    /// Master dispatch round for a cluster.
    Dispatch(ClusterId),
    /// Forwarded BE request reaches the central dispatcher.
    CentralArrive(RequestId),
    /// Central BE dispatch round.
    BeDispatch,
    /// Request payload reaches its target worker. The third field is the
    /// target's crash epoch at dispatch time: if the node crashed while
    /// the payload was in flight, the epochs disagree and the delivery
    /// bounces back to its scheduler instead of touching the (wiped)
    /// reservation table.
    Deliver(RequestId, NodeId, u64),
    /// Projected completion check (with the generation that scheduled it).
    NodeCheck(NodeId, u64),
    /// QoS re-assurance tick (Algorithm 1).
    Reassure,
    /// State-storage sync + metrics sampling.
    Sync,
    /// A compiled fault-plan event fires (crash/recover/degrade/...).
    Fault(FaultEvent),
}

struct ClusterRt {
    id: ClusterId,
    master: NodeId,
    workers: Vec<NodeId>,
    lc_q: VecDeque<RequestId>,
    be_q: VecDeque<RequestId>,
}

enum Allocator {
    Hrm(HrmAllocator),
    Static(StaticAllocator),
}

/// The simulated edge-cloud system.
pub struct EdgeCloudSystem {
    cfg: TangoConfig,
    catalog: ServiceCatalog,
    topology: NetworkTopology,
    nodes: Vec<Node>,
    clusters: Vec<ClusterRt>,
    store: StateStorage,
    lc_scheds: Vec<Box<dyn LcScheduler + Send>>,
    be_sched: Box<dyn BeScheduler + Send>,
    allocator: Allocator,
    detector: QosDetector,
    reassurer: Option<Reassurer>,
    counters: ExperimentCounters,
    requests: FxHashMap<RequestId, Request>,
    next_request_id: u64,
    central: ClusterId,
    central_q: VecDeque<RequestId>,
    /// Demands dispatched but not yet resolved at their target, per node —
    /// the dispatcher's in-flight reservation table. Without it, the
    /// per-type graphs (and the 100 ms snapshot staleness) would
    /// double-book nodes within a dispatch round.
    reserved: FxHashMap<NodeId, Resources>,
    /// Per-node LC wait queues: the R′_k requests that DSS-LC routes to a
    /// node beyond its instantaneous capacity wait *at the node* (§5.2.2)
    /// rather than bouncing back to the master.
    node_wait: Vec<VecDeque<RequestId>>,
    /// Node chosen by the previous BE decision, awaiting its reward.
    be_pending_feedback: Option<NodeId>,
    be_completed_frac: f64,
    be_evictions: u64,
    /// Which nodes are down, crash epochs, and fault accounting.
    fault_state: FaultState,
    horizon: SimTime,
    /// Deterministic worker pool for the embarrassingly-parallel phases
    /// (per-type dispatch planning, per-node sync accounting). Thread
    /// count never changes results, only wall-clock time.
    pool: tango_par::Pool,
}

impl EdgeCloudSystem {
    /// Build the system: place clusters, create nodes, deploy all ten
    /// services on every worker, instantiate policies.
    pub fn new(cfg: TangoConfig) -> Self {
        Self::with_catalog(cfg, ServiceCatalog::standard())
    }

    /// Build with a custom service catalog.
    pub fn with_catalog(cfg: TangoConfig, catalog: ServiceCatalog) -> Self {
        let mut topo_cfg = cfg.topology.clone();
        topo_cfg.clusters = cfg.clusters;
        topo_cfg.seed = cfg.seed ^ 0x7070;
        let topology = NetworkTopology::generate(&topo_cfg);
        let mut rng = SimRng::new(cfg.seed);

        let mut nodes: Vec<Node> = Vec::new();
        let mut clusters: Vec<ClusterRt> = Vec::new();
        let mut lc_scheds = Vec::new();

        let static_limits = Self::static_limits(&cfg, &catalog);
        for c in 0..cfg.clusters {
            let cid = ClusterId(c as u32);
            let master_id = NodeId(nodes.len() as u32);
            nodes.push(Node::new(master_id, cid, true, cfg.master_capacity));
            let n_workers = rng.range_u64(
                cfg.workers_per_cluster.0 as u64,
                cfg.workers_per_cluster.1 as u64,
            ) as usize;
            let mut workers = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let wid = NodeId(nodes.len() as u32);
                // heterogeneity: ±25% capacity jitter
                let jitter = rng.range_f64(0.75, 1.25);
                let capacity = cfg.worker_capacity.scale_f64(jitter);
                let mut node = Node::new(wid, cid, false, capacity);
                for spec in catalog.specs() {
                    let initial = match cfg.allocator {
                        AllocatorKind::Hrm => spec.min_request,
                        AllocatorKind::Static => static_limits[spec.id.index()]
                            .min(&capacity)
                            .max(&spec.min_request)
                            .min(&capacity),
                    };
                    node.deploy_service(spec, initial, SimTime::ZERO)
                        .expect("fresh node accepts deployments");
                }
                nodes.push(node);
                workers.push(wid);
            }
            clusters.push(ClusterRt {
                id: cid,
                master: master_id,
                workers,
                lc_q: VecDeque::new(),
                be_q: VecDeque::new(),
            });
            lc_scheds.push(make_lc_scheduler(
                cfg.lc_policy,
                cfg.seed ^ (c as u64) << 8,
                &cfg.ablations,
            ));
        }

        let be_sched = make_be_scheduler(cfg.be_policy, cfg.seed ^ 0xbe, &cfg.ablations);
        let allocator = match cfg.allocator {
            AllocatorKind::Hrm => {
                let floors = catalog
                    .specs()
                    .iter()
                    .map(|s| (s.id, s.min_request))
                    .collect();
                Allocator::Hrm(HrmAllocator::new(floors))
            }
            AllocatorKind::Static => Allocator::Static(StaticAllocator),
        };
        let reassurer = cfg.reassurance.clone().map(Reassurer::new);
        let central = topology.most_central();
        let counters = ExperimentCounters::new(cfg.period);

        let node_wait = (0..nodes.len()).map(|_| VecDeque::new()).collect();
        let fault_state = FaultState::new(nodes.len());
        let pool = tango_par::Pool::new(tango_par::resolve(cfg.parallelism));
        EdgeCloudSystem {
            cfg,
            catalog,
            topology,
            nodes,
            clusters,
            node_wait,
            reserved: FxHashMap::default(),
            store: StateStorage::new(),
            lc_scheds,
            be_sched,
            allocator,
            detector: QosDetector::paper_default(),
            reassurer,
            counters,
            requests: FxHashMap::default(),
            next_request_id: 0,
            central,
            central_q: VecDeque::new(),
            be_pending_feedback: None,
            be_completed_frac: 0.0,
            be_evictions: 0,
            fault_state,
            horizon: SimTime::MAX,
            pool,
        }
    }

    /// K8s-native fixed limits "according to the total resource usage
    /// ratio in the trace" (§7.1): share ∝ arrival-rate × work.
    fn static_limits(cfg: &TangoConfig, catalog: &ServiceCatalog) -> Vec<Resources> {
        let lc_count = catalog.lc_ids().len().max(1) as f64;
        let be_count = catalog.be_ids().len().max(1) as f64;
        let weights: Vec<f64> = catalog
            .specs()
            .iter()
            .map(|s| {
                let rate = match s.class {
                    ServiceClass::Lc => cfg.workload.lc_rps / lc_count,
                    ServiceClass::Be => cfg.workload.be_rps / be_count,
                };
                rate * s.work_milli_ms as f64
            })
            .collect();
        let total: f64 = weights.iter().sum::<f64>().max(1e-9);
        let mut limits: Vec<Resources> = catalog
            .specs()
            .iter()
            .zip(&weights)
            .map(|(s, &w)| {
                let share = w / total;
                cfg.worker_capacity
                    .scale_f64(share)
                    .max(&s.min_request)
                    .min(&cfg.worker_capacity)
            })
            .collect();
        // Normalize to a true partition (Σ limits ≤ capacity per
        // dimension): fixed allocation means fragmentation, which is
        // exactly the §7.1 "turbulent allocation" the baseline exhibits.
        for kind in tango_types::ResourceKind::ALL {
            let sum: u64 = limits.iter().map(|l| l.get(kind)).sum();
            let cap = cfg.worker_capacity.get(kind);
            if sum > cap && sum > 0 {
                let scale = cap as f64 / sum as f64;
                for l in &mut limits {
                    l.set(kind, ((l.get(kind) as f64 * scale) as u64).max(1));
                }
            }
        }
        limits
    }

    /// Access the service catalog.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// Number of nodes (masters + workers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of worker nodes.
    pub fn worker_count(&self) -> usize {
        self.clusters.iter().map(|c| c.workers.len()).sum()
    }

    fn alloc_request_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        id
    }

    fn cluster_of_node(&self, node: NodeId) -> ClusterId {
        self.nodes[node.index()].cluster
    }

    /// Requests-per-round transmission capacity of the master→node link
    /// (Eq. 4's c_{i,j} discretized to the dispatch interval).
    fn link_capacity(&self, from: ClusterId, to: ClusterId, payload_kib: u64) -> u32 {
        let bw = self.topology.bandwidth_mbps(from, to).max(1);
        let bits_per_round = bw as u128 * self.cfg.dispatch_interval.as_micros() as u128;
        let bits_per_req = (payload_kib.max(1) as u128) * 8_192;
        ((bits_per_round / bits_per_req).clamp(1, 100_000)) as u32
    }

    /// Build LC candidate views for (origin cluster, service) from the
    /// state storage — exactly what the paper's dispatcher reads. Down
    /// nodes and nodes across an active partition never become
    /// candidates; as a second line of defense the schedulers themselves
    /// mask any `!alive` candidate out of their graphs.
    fn lc_candidates(&self, origin: ClusterId, service: ServiceId) -> Vec<CandidateNode> {
        let spec = self.catalog.get(service);
        let mut cluster_set = if self.cfg.local_only {
            Vec::new()
        } else {
            self.topology
                .clusters_within(origin, self.cfg.geo_radius_km)
        };
        cluster_set.push(origin);
        let snaps = self.store.in_clusters(&cluster_set);
        snaps
            .into_iter()
            .filter(|s| {
                s.role == NodeRole::Worker
                    && !self.fault_state.is_down(s.node)
                    && self.topology.is_reachable(origin, s.cluster)
            })
            .map(|s| {
                let min_request = match &self.reassurer {
                    Some(r) => r.min_request(s.node, service, spec.min_request),
                    None => spec.min_request,
                };
                let reserved = self
                    .reserved
                    .get(&s.node)
                    .copied()
                    .unwrap_or(Resources::ZERO);
                CandidateNode {
                    node: s.node,
                    cluster: s.cluster,
                    total: s.total,
                    available_lc: s.lc_available().saturating_sub(&reserved),
                    available_be: s.be_available().saturating_sub(&reserved),
                    min_request,
                    delay: self
                        .topology
                        .transfer_time(origin, s.cluster, spec.payload_kib),
                    link_capacity: self.link_capacity(origin, s.cluster, spec.payload_kib),
                    slack: s.slack.get(&service).copied().unwrap_or(1.0),
                    alive: true,
                }
            })
            .collect()
    }

    /// Build BE candidate views over the whole system, from the central
    /// cluster's vantage point. Down or partitioned-away nodes are
    /// excluded before the GNN ever sees them.
    fn be_candidates(&self, service: ServiceId) -> Vec<CandidateNode> {
        let spec = self.catalog.get(service);
        self.store
            .all()
            .into_iter()
            .filter(|s| {
                s.role == NodeRole::Worker
                    && !self.fault_state.is_down(s.node)
                    && self.topology.is_reachable(self.central, s.cluster)
            })
            .map(|s| {
                let reserved = self
                    .reserved
                    .get(&s.node)
                    .copied()
                    .unwrap_or(Resources::ZERO);
                (s, reserved)
            })
            .map(|(s, reserved)| CandidateNode {
                node: s.node,
                cluster: s.cluster,
                total: s.total,
                available_lc: s.lc_available().saturating_sub(&reserved),
                available_be: s.be_available().saturating_sub(&reserved),
                min_request: spec.min_request,
                delay: self
                    .topology
                    .transfer_time(self.central, s.cluster, spec.payload_kib),
                link_capacity: self.link_capacity(self.central, s.cluster, spec.payload_kib),
                slack: s.slack.get(&service).copied().unwrap_or(1.0),
                alive: true,
            })
            .collect()
    }

    /// Which master acts for `cluster` this dispatch round. Normally the
    /// cluster's own; if that master is down, the nearest reachable
    /// cluster with a live master steps in (deterministic tiebreak:
    /// distance, then cluster id) and every delivery pays the extra
    /// control hop back from the stand-in. `None` means no live master is
    /// reachable — the round is skipped and queues age in place.
    fn acting_master_for(&self, cluster: ClusterId) -> Option<(ClusterId, SimTime)> {
        if !self
            .fault_state
            .is_down(self.clusters[cluster.index()].master)
        {
            return Some((cluster, SimTime::ZERO));
        }
        let mut best: Option<(f64, ClusterId)> = None;
        for c in &self.clusters {
            if c.id == cluster
                || self.fault_state.is_down(c.master)
                || !self.topology.is_reachable(cluster, c.id)
            {
                continue;
            }
            let d = self.topology.distance_km(cluster, c.id);
            let better = match best {
                None => true,
                Some((bd, bid)) => d < bd || (d == bd && c.id.index() < bid.index()),
            };
            if better {
                best = Some((d, c.id));
            }
        }
        best.map(|(_, backup)| (backup, self.topology.one_way_latency(cluster, backup)))
    }

    // ------------------------------------------------------------------
    // event handlers
    // ------------------------------------------------------------------

    fn on_arrival(
        &mut self,
        service: ServiceId,
        origin: ClusterId,
        demand: Resources,
        now: SimTime,
    ) {
        let spec = self.catalog.get(service);
        let class = spec.class;
        let id = self.alloc_request_id();
        let req = Request::new(id, service, class, origin, now, demand);
        if class.is_lc() {
            self.counters.on_lc_arrival(now);
            self.clusters[origin.index()].lc_q.push_back(id);
        } else {
            self.clusters[origin.index()].be_q.push_back(id);
        }
        self.requests.insert(id, req);
    }

    fn abandon(&mut self, rid: RequestId, now: SimTime) {
        if let Some(req) = self.requests.get_mut(&rid) {
            req.mark_done(RequestOutcome::Abandoned, now);
            self.counters.on_abandon(now);
        }
    }

    /// Deadline past which a queued request is hopeless: an LC request
    /// older than its QoS target γ can no longer satisfy it even if it
    /// completed instantly, so it is shed (the "abandoned requests"
    /// metric of §7.2); BE requests wait out their patience.
    fn queue_deadline(catalog: &ServiceCatalog, req: &Request, patience: SimTime) -> SimTime {
        match req.class {
            ServiceClass::Lc => catalog.get(req.service).qos_target.min(patience),
            ServiceClass::Be => patience,
        }
    }

    /// Remove hopeless queue entries, abandoning them.
    fn expire_queue(
        catalog: &ServiceCatalog,
        queue: &mut VecDeque<RequestId>,
        requests: &FxHashMap<RequestId, Request>,
        patience: SimTime,
        now: SimTime,
    ) -> Vec<RequestId> {
        let mut expired = Vec::new();
        queue.retain(|rid| {
            let keep = requests
                .get(rid)
                .map(|r| {
                    now.saturating_since(r.arrival) <= Self::queue_deadline(catalog, r, patience)
                })
                .unwrap_or(false);
            if !keep {
                expired.push(*rid);
            }
            keep
        });
        expired
    }

    fn on_dispatch(
        &mut self,
        cluster: ClusterId,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        let ci = cluster.index();

        // Expire hopeless entries in both queues regardless of master
        // health — waiting requests age even while the control plane is
        // down.
        let expired = Self::expire_queue(
            &self.catalog,
            &mut self.clusters[ci].lc_q,
            &self.requests,
            self.cfg.lc_patience,
            now,
        );
        for rid in expired {
            self.abandon(rid, now);
        }
        let expired = Self::expire_queue(
            &self.catalog,
            &mut self.clusters[ci].be_q,
            &self.requests,
            self.cfg.be_patience,
            now,
        );
        for rid in expired {
            self.abandon(rid, now);
        }

        // Master failover: a dead master's round is either taken over by
        // the nearest live one (extra control hop on every delivery) or
        // skipped entirely when none is reachable.
        let Some((_acting, failover_delay)) = self.acting_master_for(cluster) else {
            sched.schedule_in(self.cfg.dispatch_interval, Event::Dispatch(cluster));
            return;
        };

        // LC queue: group by type, plan, dispatch.
        if !self.clusters[ci].lc_q.is_empty() {
            let drained: Vec<RequestId> = self.clusters[ci].lc_q.drain(..).collect();
            let mut by_type: BTreeMap<ServiceId, Vec<RequestId>> = BTreeMap::new();
            for rid in &drained {
                if let Some(r) = self.requests.get(rid) {
                    by_type.entry(r.service).or_default().push(*rid);
                }
            }
            // Per-type dispatch graphs are independent commodities: every
            // batch reads the same start-of-round candidate snapshot
            // (including the reservation table), so the per-type plans can
            // run as one fan-out on the scheduler's pool.
            let batches: Vec<TypeBatch> = by_type
                .into_iter()
                .map(|(service, requests)| TypeBatch {
                    service,
                    requests,
                    nodes: self.lc_candidates(cluster, service),
                })
                .collect();
            let placements_per_type = self.lc_scheds[ci].assign_many(&batches, &self.pool);
            let mut assigned: FxHashSet<RequestId> = FxHashSet::default();
            for (batch, placements) in batches.iter().zip(placements_per_type) {
                let payload = self.catalog.get(batch.service).payload_kib;
                for (rid, node) in placements {
                    if self.fault_state.is_down(node) {
                        // A dead node slipped through the masking layers;
                        // count it (the invariant tests assert this stays
                        // zero) and leave the request queued.
                        self.fault_state.summary.down_node_dispatches += 1;
                        continue;
                    }
                    assigned.insert(rid);
                    if let Some(r) = self.requests.get_mut(&rid) {
                        r.mark_dispatched(node);
                        let slot = self.reserved.entry(node).or_insert(Resources::ZERO);
                        *slot += r.demand;
                    }
                    let delay = failover_delay
                        + self
                            .topology
                            .transfer_time(cluster, self.cluster_of_node(node), payload);
                    sched.schedule_in(
                        delay,
                        Event::Deliver(rid, node, self.fault_state.epoch(node)),
                    );
                }
            }
            // unplaced requests stay queued, original order
            for rid in drained {
                if !assigned.contains(&rid) {
                    self.clusters[ci].lc_q.push_back(rid);
                }
            }
        }

        // BE queue: forward to the central dispatcher (or local round-
        // robin in CERES mode, where BE never leaves the cluster).
        if self.cfg.local_only {
            // schedule BE within the cluster using the central policy but
            // with local candidates only
            let drained: Vec<RequestId> = self.clusters[ci].be_q.drain(..).collect();
            for rid in drained {
                let Some(req) = self.requests.get(&rid) else {
                    continue;
                };
                let service = req.service;
                let demand = req.demand;
                let payload = self.catalog.get(service).payload_kib;
                let local: Vec<CandidateNode> = self
                    .be_candidates(service)
                    .into_iter()
                    .filter(|c| c.cluster == cluster)
                    .collect();
                self.pay_be_feedback(&demand, &local, now);
                match self.be_sched.schedule(&demand, &local) {
                    Some(node) if self.fault_state.is_down(node) => {
                        self.fault_state.summary.down_node_dispatches += 1;
                        self.clusters[ci].be_q.push_back(rid);
                    }
                    Some(node) => {
                        if let Some(r) = self.requests.get_mut(&rid) {
                            r.mark_dispatched(node);
                            let slot = self.reserved.entry(node).or_insert(Resources::ZERO);
                            *slot += r.demand;
                        }
                        self.be_pending_feedback = Some(node);
                        let delay = failover_delay
                            + self.topology.transfer_time(
                                cluster,
                                self.cluster_of_node(node),
                                payload,
                            );
                        sched.schedule_in(
                            delay,
                            Event::Deliver(rid, node, self.fault_state.epoch(node)),
                        );
                    }
                    None => self.clusters[ci].be_q.push_back(rid),
                }
            }
        } else if self.topology.is_reachable(cluster, self.central) {
            let forward_delay =
                failover_delay + self.topology.transfer_time(cluster, self.central, 64);
            for rid in self.clusters[ci].be_q.drain(..) {
                sched.schedule_in(forward_delay, Event::CentralArrive(rid));
            }
        }
        // (partitioned away from the central cluster: BE stays queued
        // locally until the partition heals)

        sched.schedule_in(self.cfg.dispatch_interval, Event::Dispatch(cluster));
    }

    /// Pay the §5.3.1 reward for the previous BE decision.
    fn pay_be_feedback(
        &mut self,
        next_demand: &Resources,
        next_nodes: &[CandidateNode],
        _now: SimTime,
    ) {
        if let Some(prev_node) = self.be_pending_feedback.take() {
            let node = &self.nodes[prev_node.index()];
            let (_, be_held) = node.demand_usage();
            let r_short = tango_sched::dcg_be::short_term_reward(&be_held, &node.capacity());
            let r_long = tango_sched::dcg_be::long_term_reward(self.be_completed_frac);
            self.be_completed_frac = 0.0;
            // r = r_short + η·r_long (§5.3.1; η = 1 in the paper)
            let reward = r_short + self.cfg.ablations.dcg_eta * r_long;
            self.be_sched.feedback(reward, next_demand, next_nodes);
        }
    }

    fn on_central_arrive(&mut self, rid: RequestId) {
        if self.requests.contains_key(&rid) {
            self.central_q.push_back(rid);
        }
    }

    fn on_be_dispatch(&mut self, sched: &mut tango_simcore::engine::Scheduler<'_, Event>) {
        let now = sched.now();
        let expired = Self::expire_queue(
            &self.catalog,
            &mut self.central_q,
            &self.requests,
            self.cfg.be_patience,
            now,
        );
        for rid in expired {
            self.abandon(rid, now);
        }
        // The central dispatcher itself can lose its master.
        let Some((_acting, failover_delay)) = self.acting_master_for(self.central) else {
            sched.schedule_in(self.cfg.dispatch_interval, Event::BeDispatch);
            return;
        };
        let mut deferred = VecDeque::new();
        // The central dispatcher has finite decision throughput per round
        // (each decision is a GNN forward); cap it so a bounce storm —
        // e.g. with the context filter ablated off — degrades throughput
        // instead of wedging the simulation.
        let mut budget = 512usize;
        while let Some(rid) = self.central_q.pop_front() {
            if budget == 0 {
                deferred.push_back(rid);
                break;
            }
            budget -= 1;
            let Some(req) = self.requests.get(&rid) else {
                continue;
            };
            let service = req.service;
            let demand = req.demand;
            let payload = self.catalog.get(service).payload_kib;
            let candidates = self.be_candidates(service);
            self.pay_be_feedback(&demand, &candidates, now);
            match self.be_sched.schedule(&demand, &candidates) {
                Some(node) if self.fault_state.is_down(node) => {
                    self.fault_state.summary.down_node_dispatches += 1;
                    deferred.push_back(rid);
                }
                Some(node) => {
                    if let Some(r) = self.requests.get_mut(&rid) {
                        r.mark_dispatched(node);
                        let slot = self.reserved.entry(node).or_insert(Resources::ZERO);
                        *slot += r.demand;
                    }
                    self.be_pending_feedback = Some(node);
                    let delay = failover_delay
                        + self.topology.transfer_time(
                            self.central,
                            self.cluster_of_node(node),
                            payload,
                        );
                    sched.schedule_in(
                        delay,
                        Event::Deliver(rid, node, self.fault_state.epoch(node)),
                    );
                }
                None => {
                    // nothing feasible system-wide right now: try again
                    // next round (Alg. 3's reschedule path)
                    deferred.push_back(rid);
                    break;
                }
            }
        }
        // keep order: deferred head goes back in front
        while let Some(rid) = deferred.pop_back() {
            self.central_q.push_front(rid);
        }
        sched.schedule_in(self.cfg.dispatch_interval, Event::BeDispatch);
    }

    fn requeue_or_abandon(&mut self, rid: RequestId, now: SimTime) {
        let Some(req) = self.requests.get_mut(&rid) else {
            return;
        };
        if req.is_done() {
            return;
        }
        req.mark_requeued();
        // LC requests have a bounce budget; evicted/bounced BE work is
        // "restarted at a later time" (§4.1) and is only bounded by its
        // patience window.
        if req.class.is_lc() && req.requeues > self.cfg.max_requeues {
            req.mark_done(RequestOutcome::Failed, now);
            self.counters.on_abandon(now);
            return;
        }
        let origin = req.origin;
        match req.class {
            ServiceClass::Lc => self.clusters[origin.index()].lc_q.push_back(rid),
            ServiceClass::Be => {
                if self.cfg.local_only {
                    self.clusters[origin.index()].be_q.push_back(rid);
                } else {
                    self.central_q.push_back(rid);
                }
            }
        }
    }

    fn schedule_node_check(
        &self,
        node: NodeId,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        let n = &self.nodes[node.index()];
        if let Some(t) = n.next_completion(sched.now()) {
            // Completions projected past the horizon will never be
            // observed in this run; scheduling them anyway would livelock
            // the engine at the horizon instant.
            if t <= self.horizon {
                sched.schedule_at(t, Event::NodeCheck(node, n.generation()));
            }
        }
    }

    fn release_reservation(&mut self, node: NodeId, demand: Resources) {
        if let Some(r) = self.reserved.get_mut(&node) {
            *r = r.saturating_sub(&demand);
        }
    }

    /// Try to admit a queued/delivered request on a node: applies the
    /// re-assurance factor ("encapsulated in the packet of scheduled
    /// requests", §3 ➎), runs the configured allocator, and on success
    /// updates the request state and processes evictions.
    fn try_admit_at(&mut self, rid: RequestId, node_id: NodeId, now: SimTime) -> bool {
        if self.fault_state.is_down(node_id) {
            return false; // callers guard this; last line of defense
        }
        let Some(req) = self.requests.get(&rid) else {
            return true; // vanished: treat as handled
        };
        if req.is_done() {
            return true;
        }
        let service = req.service;
        let work = self.catalog.get(service).work_milli_ms;
        let factor = self
            .reassurer
            .as_ref()
            .map(|r| r.factor(node_id, service))
            .unwrap_or(1.0);
        let eff_demand = req
            .demand
            .scale_f64(factor)
            .max(&Resources::new(1, 1, 0, 0));
        let mut admit_req = req.clone();
        admit_req.demand = eff_demand;

        let node = &mut self.nodes[node_id.index()];
        let result = match &mut self.allocator {
            Allocator::Hrm(h) => h.try_admit(node, &admit_req, work, now),
            Allocator::Static(s) => s.try_admit(node, &admit_req, work, now),
        };
        match result {
            Ok(outcome) => {
                if let Some(r) = self.requests.get_mut(&rid) {
                    r.demand = eff_demand;
                    r.mark_running(node_id, now);
                }
                self.be_evictions += outcome.evicted.len() as u64;
                let evicted_ids: Vec<RequestId> =
                    outcome.evicted.iter().map(|(_, rr)| rr.request).collect();
                for erid in evicted_ids {
                    self.requeue_or_abandon(erid, now);
                }
                true
            }
            Err(_) => false,
        }
    }

    fn patience_for(&self, class: ServiceClass) -> SimTime {
        match class {
            ServiceClass::Lc => self.cfg.lc_patience,
            ServiceClass::Be => self.cfg.be_patience,
        }
    }

    /// Admit as many node-waiting LC requests as now fit (FIFO), expiring
    /// the ones past their patience.
    fn drain_node_wait(
        &mut self,
        node_id: NodeId,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        if self.fault_state.is_down(node_id) {
            return; // the wait queue was drained back at crash time
        }
        let now = sched.now();
        let mut admitted_any = false;
        while let Some(&rid) = self.node_wait[node_id.index()].front() {
            let (demand, expired) = match self.requests.get(&rid) {
                Some(r) => (
                    r.demand,
                    now.saturating_since(r.arrival)
                        > Self::queue_deadline(&self.catalog, r, self.patience_for(r.class)),
                ),
                None => (Resources::ZERO, true),
            };
            if expired {
                self.node_wait[node_id.index()].pop_front();
                self.release_reservation(node_id, demand);
                self.abandon(rid, now);
                continue;
            }
            if self.try_admit_at(rid, node_id, now) {
                self.node_wait[node_id.index()].pop_front();
                self.release_reservation(node_id, demand);
                admitted_any = true;
            } else {
                break; // head of line still does not fit
            }
        }
        if admitted_any {
            self.schedule_node_check(node_id, sched);
        }
    }

    fn on_deliver(
        &mut self,
        rid: RequestId,
        node_id: NodeId,
        epoch: u64,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        let Some(req) = self.requests.get(&rid) else {
            return;
        };
        if req.is_done() {
            return;
        }
        if self.fault_state.is_down(node_id) || self.fault_state.epoch(node_id) != epoch {
            // The target crashed while the payload was in flight (a stale
            // epoch means it also already recovered). Its reservation
            // entry was wiped wholesale at crash time, so do not release
            // anything — just bounce the request back to its scheduler.
            self.fault_state.summary.bounced_deliveries += 1;
            self.fault_state.summary.rescheduled += 1;
            self.requeue_or_abandon(rid, now);
            return;
        }
        let class = req.class;
        let demand = req.demand;
        if self.try_admit_at(rid, node_id, now) {
            self.release_reservation(node_id, demand);
            self.schedule_node_check(node_id, sched);
        } else {
            match class {
                // R′_k semantics (§5.2.2): LC requests routed beyond the
                // node's instantaneous capacity wait at the node. The
                // reservation stays until they run or expire.
                ServiceClass::Lc => {
                    self.node_wait[node_id.index()].push_back(rid);
                }
                // Alg. 3: BE requests that cannot be processed in time
                // return to the central scheduling queue.
                ServiceClass::Be => {
                    self.release_reservation(node_id, demand);
                    self.requeue_or_abandon(rid, now);
                }
            }
        }
    }

    fn on_node_check(
        &mut self,
        node_id: NodeId,
        generation: u64,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        if self.fault_state.is_down(node_id) {
            return; // crash bumped the generation; this check is void
        }
        {
            let node = &mut self.nodes[node_id.index()];
            if node.generation() != generation {
                return; // stale projection; a newer check is scheduled
            }
            node.advance(now);
        }
        let completions = self.nodes[node_id.index()].take_completions();
        if !completions.is_empty() {
            let node_cap = self.nodes[node_id.index()].capacity();
            for done in &completions {
                let Some(req) = self.requests.get_mut(&done.request) else {
                    continue;
                };
                req.mark_done(RequestOutcome::Completed, now);
                let latency = now.saturating_since(req.arrival);
                match done.class {
                    ServiceClass::Lc => {
                        let within = self.catalog.get(done.service).meets_qos(latency);
                        if !within && self.fault_state.any_fault_active() {
                            // attribute the miss to the open fault window
                            self.counters.on_fault_qos_violation(now);
                        }
                        self.counters.on_lc_complete(now, latency, within);
                        self.detector.record(node_id, done.service, now, latency);
                    }
                    ServiceClass::Be => {
                        self.counters.on_be_complete(now);
                        let d = req.demand;
                        self.be_completed_frac += d.cpu_milli as f64
                            / node_cap.cpu_milli.max(1) as f64
                            + d.memory_mib as f64 / node_cap.memory_mib.max(1) as f64;
                    }
                }
            }
            if let Allocator::Hrm(h) = &mut self.allocator {
                h.rebalance(&mut self.nodes[node_id.index()], now);
            }
            // freed resources may unblock node-waiting LC requests
            self.drain_node_wait(node_id, sched);
        }
        self.schedule_node_check(node_id, sched);
    }

    fn on_reassure(&mut self, sched: &mut tango_simcore::engine::Scheduler<'_, Event>) {
        let now = sched.now();
        if let Some(reassurer) = &mut self.reassurer {
            let catalog = &self.catalog;
            let targets = |svc: ServiceId| catalog.get(svc).qos_target;
            reassurer.tick(&mut self.detector, &targets, now);
        }
        sched.schedule_in(self.cfg.reassure_interval, Event::Reassure);
    }

    fn on_sync(&mut self, sched: &mut tango_simcore::engine::Scheduler<'_, Event>) {
        let now = sched.now();
        // Phase 1 (parallel): per-node state advance and usage accounting.
        // Nodes are independent here, so the pool chunks them statically;
        // drafts land in node order regardless of thread count. The QoS
        // slack lookups, pending-queue summaries, storage pushes and the
        // utilization sample stay sequential below — they touch cross-node
        // state (detector windows prune on read, the store is shared).
        #[derive(Clone)]
        struct SyncDraft {
            available: Resources,
            be_held: Resources,
            overall: f64,
            lc_frac: f64,
            be_frac: f64,
        }
        let mut drafts = vec![
            SyncDraft {
                available: Resources::ZERO,
                be_held: Resources::ZERO,
                overall: 0.0,
                lc_frac: 0.0,
                be_frac: 0.0,
            };
            self.nodes.len()
        ];
        let down: &[bool] = self.fault_state.down_slice();
        self.pool
            .par_zip_chunks_mut(&mut self.nodes, &mut drafts, |_, nodes, drafts| {
                for (node, draft) in nodes.iter_mut().zip(drafts.iter_mut()) {
                    if down[node.id.index()] {
                        // Crashed node: it advertises zero capacity (the
                        // snapshot keeps schedulers honest between the
                        // crash and the next sync) and contributes zero
                        // utilization — its containers are dead.
                        draft.available = Resources::ZERO;
                        continue;
                    }
                    node.advance(now);
                    let (lc_held, be_held) = node.demand_usage();
                    let cap = node.capacity();
                    draft.available = cap.saturating_sub(&lc_held).saturating_sub(&be_held);
                    draft.be_held = be_held;
                    if !node.is_master {
                        let (lc, be) = node.actual_usage();
                        draft.overall = (lc + be).utilization_against(&cap);
                        draft.lc_frac = lc.utilization_against(&cap);
                        draft.be_frac = be.utilization_against(&cap);
                    }
                }
            });
        // Phase 2 (sequential): snapshot pushes in node order.
        let lc_services = self.catalog.lc_ids();
        for (node, draft) in self.nodes.iter().zip(&drafts) {
            let mut slack = FxHashMap::default();
            for &svc in &lc_services {
                let target = self.catalog.get(svc).qos_target;
                if let Some(s) = self.detector.slack(node.id, svc, target, now) {
                    slack.insert(svc, s);
                }
            }
            let mut pending = FxHashMap::default();
            if node.is_master {
                let cluster = &self.clusters[node.cluster.index()];
                for rid in cluster.lc_q.iter().chain(cluster.be_q.iter()) {
                    if let Some(r) = self.requests.get(rid) {
                        *pending.entry(r.service).or_insert(0u32) += 1;
                    }
                }
            }
            self.store.push(NodeSnapshot {
                node: node.id,
                cluster: node.cluster,
                role: if node.is_master {
                    NodeRole::Master
                } else {
                    NodeRole::Worker
                },
                total: node.capacity(),
                available: draft.available,
                be_held: draft.be_held,
                slack,
                pending,
                updated_at: now,
            });
        }
        // utilization sample over workers (drafts are zero for masters)
        let n_workers = self.nodes.iter().filter(|n| !n.is_master).count();
        if n_workers > 0 {
            let n = n_workers as f64;
            let overall: f64 = drafts.iter().map(|d| d.overall).sum();
            let lc_frac: f64 = drafts.iter().map(|d| d.lc_frac).sum();
            let be_frac: f64 = drafts.iter().map(|d| d.be_frac).sum();
            self.counters
                .sample_utilization(now, overall / n, lc_frac / n, be_frac / n);
        }
        sched.schedule_in(self.cfg.sync_interval, Event::Sync);
    }

    /// Apply one compiled fault-plan event. Crashes interrupt everything
    /// on the node and hand the work back to the schedulers; recoveries
    /// bring the node back *cold* — stale QoS history and re-assurance
    /// factors are forgotten so the control loops re-learn it.
    fn on_fault(
        &mut self,
        fault: FaultEvent,
        sched: &mut tango_simcore::engine::Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        match fault {
            FaultEvent::NodeCrash { node } => {
                let is_master = self.nodes[node.index()].is_master;
                if !self.fault_state.on_crash(node, now, is_master) {
                    return; // already down (overlapping churn draw)
                }
                // Everything running on the node dies; interrupted work
                // is re-queued at its origin master (LC) or the central
                // dispatcher (BE).
                let interrupted = self.nodes[node.index()].crash(now);
                for (class, rr) in interrupted {
                    match class {
                        ServiceClass::Lc => self.fault_state.summary.lc_interrupted += 1,
                        ServiceClass::Be => self.fault_state.summary.be_interrupted += 1,
                    }
                    self.fault_state.summary.rescheduled += 1;
                    self.requeue_or_abandon(rr.request, now);
                }
                // Requests waiting *at* the node (§5.2.2 R′_k) drain back
                // to their origin queues.
                let waiting: Vec<RequestId> = self.node_wait[node.index()].drain(..).collect();
                self.fault_state.summary.wait_drained += waiting.len() as u64;
                self.fault_state.summary.rescheduled += waiting.len() as u64;
                for rid in waiting {
                    self.requeue_or_abandon(rid, now);
                }
                // Wipe the in-flight reservation entry wholesale;
                // deliveries still in the air bounce on the epoch check
                // instead of decrementing a table that no longer exists.
                self.reserved.remove(&node);
            }
            FaultEvent::NodeRecover { node } => {
                if !self.fault_state.on_recover(node, now) {
                    return; // was not down
                }
                self.nodes[node.index()].recover(now, self.cfg.faults.restart_delay);
                // The node comes back cold: pre-crash latency windows and
                // re-assurance factors no longer describe it.
                self.detector.forget_node(node);
                if let Some(r) = &mut self.reassurer {
                    r.reset_node(node);
                }
                self.schedule_node_check(node, sched);
            }
            FaultEvent::LinkDegrade {
                a,
                b,
                latency_factor,
                bandwidth_factor,
            } => {
                self.topology
                    .degrade_link(a, b, latency_factor, bandwidth_factor);
                self.fault_state.on_link_degrade();
            }
            FaultEvent::LinkRestore { a, b } => {
                self.topology.restore_link(a, b);
                self.fault_state.on_link_restore();
            }
            FaultEvent::Partition { side } => {
                self.topology.set_partition(&side);
                self.fault_state.on_partition();
            }
            FaultEvent::Heal => {
                self.topology.heal_partition();
                self.fault_state.on_heal();
            }
        }
    }

    // ------------------------------------------------------------------
    // driving
    // ------------------------------------------------------------------

    /// Run the system for `duration`, driven by a synthesized trace, and
    /// produce the report.
    pub fn run(mut self, duration: SimTime, label: &str) -> RunReport {
        self.run_inner(duration);
        self.finish(label)
    }

    /// Like [`run`](Self::run), but also produce the per-request
    /// conservation audit — the fault tests use it to prove that churn
    /// neither loses requests nor leaves them running on dead nodes.
    pub fn run_audited(mut self, duration: SimTime, label: &str) -> (RunReport, RunAudit) {
        self.run_inner(duration);
        let audit = self.audit();
        (self.finish(label), audit)
    }

    fn run_inner(&mut self, duration: SimTime) {
        self.horizon = duration;
        let mut engine: Engine<Event> = Engine::new();
        // trace
        let spec = TraceSpec {
            diurnal: if self.cfg.workload.diurnal {
                DiurnalProfile::default()
            } else {
                DiurnalProfile::flat()
            },
            ..TraceSpec::new(
                self.cfg.workload.pattern(),
                self.cfg.clusters,
                duration,
                self.cfg.seed ^ 0x77ace,
            )
        };
        let events = TraceGenerator::new(&self.catalog, spec).collect_events();
        for ev in events {
            engine.schedule_at(
                ev.at,
                Event::Arrival {
                    service: ev.service,
                    origin: ev.origin,
                    demand: ev.demand,
                },
            );
        }
        // fault plan: compiled once, sequentially, before the engine
        // starts — the resulting schedule is thread-count-invariant by
        // construction
        if !self.cfg.faults.is_empty() {
            let layout = SystemLayout {
                masters: self.clusters.iter().map(|c| c.master).collect(),
                workers: self.clusters.iter().map(|c| c.workers.clone()).collect(),
            };
            for (at, fe) in self.cfg.faults.compile(&layout, duration) {
                engine.schedule_at(at, Event::Fault(fe));
            }
        }
        // periodic drivers
        engine.schedule_at(SimTime::ZERO, Event::Sync);
        for c in 0..self.cfg.clusters {
            engine.schedule_at(
                self.cfg.dispatch_interval,
                Event::Dispatch(ClusterId(c as u32)),
            );
        }
        engine.schedule_at(self.cfg.dispatch_interval, Event::BeDispatch);
        engine.schedule_at(self.cfg.reassure_interval, Event::Reassure);

        engine.run_until(self, duration);
    }

    /// Bucket every injected request by its terminal state.
    fn audit(&self) -> RunAudit {
        let mut a = RunAudit {
            total: self.requests.len() as u64,
            ..RunAudit::default()
        };
        for req in self.requests.values() {
            match req.outcome() {
                Some(RequestOutcome::Completed) => a.completed += 1,
                Some(RequestOutcome::Abandoned) => a.abandoned += 1,
                Some(RequestOutcome::Failed) => a.failed += 1,
                None => {
                    a.pending += 1;
                    if let RequestState::Running { target } = req.state {
                        if self.fault_state.is_down(target) {
                            a.running_on_down_nodes += 1;
                        }
                    }
                }
            }
        }
        a
    }

    fn finish(mut self, label: &str) -> RunReport {
        self.fault_state.settle(self.horizon);
        self.fault_state.summary.fault_qos_violations = self.counters.total_fault_qos_violations();
        let dvpa_ops = match &self.allocator {
            Allocator::Hrm(h) => h.dvpa.ops,
            Allocator::Static(_) => 0,
        };
        RunReport {
            label: label.to_string(),
            qos_satisfaction: self.counters.qos_satisfaction_rate().unwrap_or(0.0),
            be_throughput: self.counters.be_throughput(),
            abandoned: self.counters.total_abandoned(),
            mean_utilization: self.counters.mean_utilization(),
            lc_p95_ms: self.counters.overall_lc_p95_ms(),
            lc_arrived: self.counters.periods().iter().map(|p| p.lc_arrived).sum(),
            lc_completed: self.counters.periods().iter().map(|p| p.lc_completed).sum(),
            periods: self.counters.periods(),
            dvpa_ops,
            be_evictions: self.be_evictions,
            faults: self.fault_state.summary.clone(),
        }
    }
}

impl EventHandler for EdgeCloudSystem {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut tango_simcore::engine::Scheduler<'_, Event>) {
        match event {
            Event::Arrival {
                service,
                origin,
                demand,
            } => self.on_arrival(service, origin, demand, sched.now()),
            Event::Dispatch(cluster) => self.on_dispatch(cluster, sched),
            Event::CentralArrive(rid) => self.on_central_arrive(rid),
            Event::BeDispatch => self.on_be_dispatch(sched),
            Event::Deliver(rid, node, epoch) => self.on_deliver(rid, node, epoch, sched),
            Event::NodeCheck(node, generation) => self.on_node_check(node, generation, sched),
            Event::Reassure => self.on_reassure(sched),
            Event::Sync => self.on_sync(sched),
            Event::Fault(fault) => self.on_fault(fault, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BePolicy, LcPolicy};

    fn small_cfg() -> TangoConfig {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 2;
        cfg.topology.clusters = 2;
        cfg.workload.lc_rps = 30.0;
        cfg.workload.be_rps = 4.0;
        // keep unit tests fast: non-learning policies by default
        cfg.lc_policy = LcPolicy::DssLc;
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg
    }

    #[test]
    fn system_builds_with_expected_layout() {
        let sys = EdgeCloudSystem::new(small_cfg());
        assert_eq!(sys.clusters.len(), 2);
        assert_eq!(sys.worker_count(), 8); // 4 per cluster
        assert_eq!(sys.node_count(), 10); // + 2 masters
                                          // every worker has all ten services deployed
        for c in &sys.clusters {
            for &w in &c.workers {
                let node = &sys.nodes[w.index()];
                for spec in sys.catalog.specs() {
                    assert!(node.container_for(spec.id).is_some());
                }
            }
        }
    }

    #[test]
    fn short_run_completes_requests_and_meets_some_qos() {
        let report = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(10), "test");
        assert!(report.lc_arrived > 100, "arrived {}", report.lc_arrived);
        assert!(
            report.lc_completed as f64 > report.lc_arrived as f64 * 0.5,
            "completed {}/{}",
            report.lc_completed,
            report.lc_arrived
        );
        assert!(
            report.qos_satisfaction > 0.5,
            "qos {}",
            report.qos_satisfaction
        );
        assert!(report.be_throughput > 0);
        assert!(report.mean_utilization > 0.0);
        assert!(!report.periods.is_empty());
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(5), "a");
        let b = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(5), "b");
        assert_eq!(a.lc_arrived, b.lc_arrived);
        assert_eq!(a.lc_completed, b.lc_completed);
        assert_eq!(a.be_throughput, b.be_throughput);
        assert_eq!(a.abandoned, b.abandoned);
    }

    #[test]
    fn hrm_uses_dvpa_and_static_does_not() {
        let hrm_report = EdgeCloudSystem::new(small_cfg()).run(SimTime::from_secs(5), "hrm");
        assert!(hrm_report.dvpa_ops > 0);

        let mut cfg = small_cfg();
        cfg.allocator = AllocatorKind::Static;
        cfg.reassurance = None;
        let static_report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "static");
        assert_eq!(static_report.dvpa_ops, 0);
    }

    #[test]
    fn local_only_restricts_candidates() {
        let mut cfg = small_cfg();
        cfg.local_only = true;
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "local");
        // still functions end to end
        assert!(report.lc_completed > 0);
        assert!(report.be_throughput > 0);
    }

    #[test]
    fn overload_causes_abandonment_or_queueing() {
        let mut cfg = small_cfg();
        cfg.workload.lc_rps = 2_000.0; // way beyond 8 small workers
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "overload");
        assert!(
            report.abandoned > 0 || report.lc_completed < report.lc_arrived,
            "overload must leave a trace"
        );
    }

    #[test]
    fn all_lc_policies_run_end_to_end() {
        for p in [
            LcPolicy::DssLc,
            LcPolicy::LoadGreedy,
            LcPolicy::KsNative,
            LcPolicy::Scoring,
        ] {
            let mut cfg = small_cfg();
            cfg.lc_policy = p;
            let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(3), p.name());
            assert!(report.lc_completed > 0, "{} completed nothing", p.name());
        }
    }

    #[test]
    fn static_limits_form_a_partition_with_floors() {
        let mut cfg = small_cfg();
        cfg.allocator = AllocatorKind::Static;
        let catalog = ServiceCatalog::standard();
        let limits = EdgeCloudSystem::static_limits(&cfg, &catalog);
        assert_eq!(limits.len(), catalog.len());
        // per-dimension sums never exceed worker capacity (the
        // fragmentation property of fixed allocation)
        for kind in tango_types::ResourceKind::ALL {
            let sum: u64 = limits.iter().map(|l| l.get(kind)).sum();
            assert!(
                sum <= cfg.worker_capacity.get(kind),
                "{kind:?}: {sum} > capacity"
            );
        }
        // every service gets a nonzero slice
        assert!(limits.iter().all(|l| l.cpu_milli >= 1 && l.memory_mib >= 1));
    }

    #[test]
    fn queue_deadline_shed_rule() {
        let catalog = ServiceCatalog::standard();
        let lc_svc = catalog.lc_ids()[0];
        let be_svc = catalog.be_ids()[0];
        let patience = SimTime::from_secs(60);
        let mk = |svc: ServiceId| {
            let spec = catalog.get(svc);
            Request::new(
                RequestId(1),
                svc,
                spec.class,
                ClusterId(0),
                SimTime::ZERO,
                spec.min_request,
            )
        };
        // LC deadline is its QoS target (smaller than patience)
        let lc_deadline = EdgeCloudSystem::queue_deadline(&catalog, &mk(lc_svc), patience);
        assert_eq!(lc_deadline, catalog.get(lc_svc).qos_target);
        // BE deadline is the patience window
        let be_deadline = EdgeCloudSystem::queue_deadline(&catalog, &mk(be_svc), patience);
        assert_eq!(be_deadline, patience);
    }

    #[test]
    fn central_cluster_is_geographically_central() {
        let cfg = small_cfg();
        let sys = EdgeCloudSystem::new(cfg);
        assert!(sys.central.index() < sys.clusters.len());
    }

    #[test]
    fn expire_queue_sheds_only_hopeless_entries() {
        let catalog = ServiceCatalog::standard();
        let lc_svc = catalog.lc_ids()[0];
        let target = catalog.get(lc_svc).qos_target;
        let mut requests = FxHashMap::default();
        let mut queue = VecDeque::new();
        for (i, arrival) in [(0u64, SimTime::ZERO), (1, target)].into_iter() {
            let spec = catalog.get(lc_svc);
            let req = Request::new(
                RequestId(i),
                lc_svc,
                spec.class,
                ClusterId(0),
                arrival,
                spec.min_request,
            );
            requests.insert(RequestId(i), req);
            queue.push_back(RequestId(i));
        }
        // at now = target + 1µs: request 0 (arrived at 0) is past its
        // target; request 1 (arrived at `target`) is still viable
        let now = target + SimTime::from_micros(1);
        let expired = EdgeCloudSystem::expire_queue(
            &catalog,
            &mut queue,
            &requests,
            SimTime::from_secs(60),
            now,
        );
        assert_eq!(expired, vec![RequestId(0)]);
        assert_eq!(queue, VecDeque::from(vec![RequestId(1)]));
    }
}

//! The edge-cloud system runtime: Tango's dispatch–allocate–adjust loop
//! (§3 "Operation") as a staged discrete-event simulation over the
//! kube/cgroup/net substrates.
//!
//! This file is the *event router and builder* only. The behavior lives
//! in the stage modules, each owning its slice of state and receiving a
//! [`SystemCtx`] borrow-view per event:
//!
//! * [`crate::lifecycle`] — arrival, queue aging/abandonment,
//!   delivery, admission, completion, reservations;
//! * [`crate::dispatch`] — per-master LC rounds, BE forwarding,
//!   the central BE dispatcher, and the candidate-view builder;
//! * [`crate::sync_loop`] — the state-storage sync cycle and
//!   the Algorithm 1 re-assurance tick;
//! * [`crate::fault_rt`] — crash/recover/failover and the
//!   conservation audit.
//!
//! Event alphabet:
//! * `Arrival` — a trace request reaches its origin master and is queued
//!   (LC queue or BE queue);
//! * `Dispatch(c)` — master c's dispatch round: LC requests are planned
//!   per type by the cluster's LC backend over geo-nearby candidates;
//!   BE requests are forwarded to the central cluster (or scheduled
//!   locally in `local_only` / CERES mode);
//! * `CentralArrive` — a forwarded BE request lands at the central
//!   cluster's BE traffic dispatcher;
//! * `BeDispatch` — the central dispatcher schedules queued BE requests
//!   with the configured backend, paying it the §5.3.1 reward for its
//!   previous decision;
//! * `Deliver` — a dispatched request reaches its target worker and is
//!   admitted under the configured allocator (HRM regulations or static
//!   limits); failures requeue, evictions requeue the evicted BE work;
//! * `NodeCheck` — a projected completion: advance the node, collect
//!   completions, feed the QoS detector, reclaim resources;
//! * `Reassure` — Algorithm 1 over the QoS detector;
//! * `Sync` — push node snapshots to the state storage and sample
//!   utilization (the Prometheus/QoS-detector push cycle of Fig. 3);
//! * `MigrateArrive` — a migrating BE pod's checkpoint lands at its
//!   destination node (or bounces off a mid-transfer crash).

use crate::config::{AllocatorKind, TangoConfig};
use crate::ctrl_rt::CtrlState;
use crate::ctx::SystemCtx;
use crate::dispatch::DispatchState;
use crate::fault_rt;
use crate::lifecycle::LifecycleState;
use crate::migration::MigrationState;
use crate::policy::{make_be_backend, make_lc_backend};
use crate::report::{RunAudit, RunReport};
use crate::runtime::{static_limits, Allocator, ClusterRt};
use crate::sync_loop::SyncState;
use std::collections::VecDeque;
use tango_faults::{FaultEvent, FaultState, SystemLayout};
use tango_hrm::Reassurer;
use tango_kube::Node;
use tango_metrics::{ExperimentCounters, QosDetector, StateStorage, TraceSink};
use tango_net::NetworkTopology;
use tango_simcore::{Engine, EventHandler, SimRng};
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};
use tango_workload::{DiurnalProfile, ServiceCatalog, TraceGenerator, TraceSpec};

/// Simulation events.
#[derive(Debug, Clone)]
pub enum Event {
    /// A request arrives at its origin master.
    Arrival {
        /// Service type.
        service: ServiceId,
        /// Origin cluster.
        origin: ClusterId,
        /// Jittered demand from the trace.
        demand: Resources,
    },
    /// Master dispatch round for a cluster.
    Dispatch(ClusterId),
    /// Forwarded BE request reaches the central dispatcher.
    CentralArrive(RequestId),
    /// Central BE dispatch round.
    BeDispatch,
    /// Request payload reaches its target worker. The third field is the
    /// target's crash epoch at dispatch time: if the node crashed while
    /// the payload was in flight, the epochs disagree and the delivery
    /// bounces back to its scheduler instead of touching the (wiped)
    /// reservation table.
    Deliver(RequestId, NodeId, u64),
    /// Projected completion check (with the generation that scheduled it).
    NodeCheck(NodeId, u64),
    /// QoS re-assurance tick (Algorithm 1).
    Reassure,
    /// State-storage sync + metrics sampling.
    Sync,
    /// A compiled fault-plan event fires (crash/recover/degrade/...).
    Fault(FaultEvent),
    /// A migrating BE pod's checkpoint reaches its destination. The third
    /// field is the destination's crash epoch when the transfer started;
    /// a mismatch means the node crashed mid-transfer and the pod bounces
    /// back to its scheduler (same contract as `Deliver`).
    MigrateArrive(RequestId, NodeId, u64),
}

/// The simulated edge-cloud system: owner of all state, router of all
/// events. Stage logic lives in the stage modules.
pub struct EdgeCloudSystem {
    pub(crate) cfg: TangoConfig,
    pub(crate) catalog: ServiceCatalog,
    pub(crate) topology: NetworkTopology,
    pub(crate) nodes: Vec<Node>,
    pub(crate) clusters: Vec<ClusterRt>,
    pub(crate) store: StateStorage,
    pub(crate) allocator: Allocator,
    pub(crate) detector: QosDetector,
    pub(crate) reassurer: Option<Reassurer>,
    pub(crate) counters: ExperimentCounters,
    pub(crate) lifecycle: LifecycleState,
    pub(crate) dispatch: DispatchState,
    pub(crate) sync: SyncState,
    pub(crate) fault: FaultState,
    pub(crate) ctrl: CtrlState,
    pub(crate) migration: MigrationState,
    pub(crate) horizon: SimTime,
    /// Deterministic worker pool for the embarrassingly-parallel phases
    /// (per-type dispatch planning, per-node sync accounting). Thread
    /// count never changes results, only wall-clock time.
    pub(crate) pool: tango_par::Pool,
    /// Optional stage-boundary trace sink (None = zero-cost no-op).
    pub(crate) trace: Option<Box<dyn TraceSink + Send>>,
}

impl EdgeCloudSystem {
    /// Build the system: place clusters, create nodes, deploy all ten
    /// services on every worker, instantiate policies.
    pub fn new(cfg: TangoConfig) -> Self {
        Self::with_catalog(cfg, ServiceCatalog::standard())
    }

    /// Build with a custom service catalog.
    pub fn with_catalog(cfg: TangoConfig, catalog: ServiceCatalog) -> Self {
        let mut topo_cfg = cfg.topology.clone();
        topo_cfg.clusters = cfg.clusters;
        topo_cfg.seed = cfg.seed ^ 0x7070;
        let mut topology = NetworkTopology::generate(&topo_cfg);
        let mut rng = SimRng::new(cfg.seed);

        let mut nodes: Vec<Node> = Vec::new();
        let mut clusters: Vec<ClusterRt> = Vec::new();
        let mut lc_backends = Vec::new();

        let limits = static_limits(&cfg, &catalog);
        for c in 0..cfg.clusters {
            let cid = ClusterId(c as u32);
            let master_id = NodeId(nodes.len() as u32);
            nodes.push(Node::new(master_id, cid, true, cfg.master_capacity));
            let n_workers = rng.range_u64(
                cfg.workers_per_cluster.0 as u64,
                cfg.workers_per_cluster.1 as u64,
            ) as usize;
            let mut workers = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let wid = NodeId(nodes.len() as u32);
                // heterogeneity: ±25% capacity jitter
                let jitter = rng.range_f64(0.75, 1.25);
                let capacity = cfg.worker_capacity.scale_f64(jitter);
                let mut node = Node::new(wid, cid, false, capacity);
                for spec in catalog.specs() {
                    let initial = match cfg.allocator {
                        AllocatorKind::Hrm => spec.min_request,
                        AllocatorKind::Static => limits[spec.id.index()]
                            .min(&capacity)
                            .max(&spec.min_request)
                            .min(&capacity),
                    };
                    node.deploy_service(spec, initial, SimTime::ZERO)
                        .expect("fresh node accepts deployments");
                }
                nodes.push(node);
                workers.push(wid);
            }
            clusters.push(ClusterRt::new(cid, master_id, workers));
            lc_backends.push(make_lc_backend(
                cfg.lc_policy,
                cfg.seed ^ (c as u64) << 8,
                &cfg.ablations,
            ));
        }

        let be_backend = make_be_backend(cfg.be_policy, cfg.seed ^ 0xbe, &cfg.ablations);
        let allocator = Allocator::from_config(&cfg, &catalog);
        let reassurer = cfg.reassurance.clone().map(Reassurer::new);
        // The BE dispatcher must stay on the edge: pick the central
        // cluster before the cloud tier (if any) joins the topology.
        let central = topology.most_central();
        let counters = ExperimentCounters::new(cfg.period);

        // Elastic cloud tier: one extra cluster appended after every edge
        // cluster, built with zero draws from the shared RNG so the edge
        // layout is bit-identical whether the tier is on or off.
        let mut cloud_cluster = None;
        if let Some(cloud) = &cfg.cloud {
            let cid =
                topology.attach_cloud(cloud.one_way_base, cloud.us_per_km, cloud.bandwidth_mbps);
            debug_assert_eq!(cid.index(), cfg.clusters);
            let master_id = NodeId(nodes.len() as u32);
            nodes.push(Node::new(master_id, cid, true, cfg.master_capacity));
            let mut workers = Vec::with_capacity(cloud.workers);
            for _ in 0..cloud.workers {
                let wid = NodeId(nodes.len() as u32);
                // uniform datacenter-grade machines: no capacity jitter
                let capacity = cloud.worker_capacity;
                let mut node = Node::new(wid, cid, false, capacity);
                for spec in catalog.specs() {
                    let initial = match cfg.allocator {
                        AllocatorKind::Hrm => spec.min_request,
                        AllocatorKind::Static => limits[spec.id.index()]
                            .min(&capacity)
                            .max(&spec.min_request)
                            .min(&capacity),
                    };
                    node.deploy_service(spec, initial, SimTime::ZERO)
                        .expect("fresh node accepts deployments");
                }
                nodes.push(node);
                workers.push(wid);
            }
            clusters.push(ClusterRt::new(cid, master_id, workers));
            // Index/snapshot-shape consistency: one LC backend per
            // cluster, even though the cloud master never runs a
            // dispatch round (`prime` only schedules edge clusters).
            lc_backends.push(make_lc_backend(
                cfg.lc_policy,
                cfg.seed ^ (cfg.clusters as u64) << 8,
                &cfg.ablations,
            ));
            cloud_cluster = Some(cid);
        }
        let migration = MigrationState::from_config(&cfg, cloud_cluster);

        let lifecycle = LifecycleState::new(nodes.len());
        let fault = FaultState::new(nodes.len());
        let ctrl = CtrlState::from_config(&cfg, nodes.len());
        let pool = tango_par::Pool::new(tango_par::resolve(cfg.parallelism));
        EdgeCloudSystem {
            cfg,
            catalog,
            topology,
            nodes,
            clusters,
            store: StateStorage::new(),
            allocator,
            detector: QosDetector::paper_default(),
            reassurer,
            counters,
            lifecycle,
            dispatch: DispatchState {
                lc: lc_backends,
                be: be_backend,
                central,
                central_q: VecDeque::new(),
                be_pending_feedback: None,
                be_completed_frac: 0.0,
                views: Default::default(),
            },
            sync: SyncState::default(),
            fault,
            ctrl,
            migration,
            horizon: SimTime::MAX,
            pool,
            trace: None,
        }
    }

    /// Access the service catalog.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// Number of nodes (masters + workers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of worker nodes.
    pub fn worker_count(&self) -> usize {
        self.clusters.iter().map(|c| c.workers.len()).sum()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The geographically central cluster hosting the BE dispatcher.
    pub fn central(&self) -> ClusterId {
        self.dispatch.central
    }

    /// Attach a trace sink observing every stage boundary (arrival,
    /// dispatch decision, delivery, admission, completion, abandonment,
    /// fault). Untraced runs pay a single branch per hook.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.trace = Some(sink);
    }

    /// Cross-check every incremental candidate view against a
    /// from-scratch rebuild on each dispatcher query (slow; the
    /// view-cache property tests' assertion hook).
    pub fn set_view_verification(&mut self, on: bool) {
        self.dispatch.views.set_verify(on);
    }

    /// Split `self` into the per-event borrow view the stage modules
    /// consume (see [`crate::ctx`] for the borrow rules).
    fn ctx(&mut self) -> SystemCtx<'_> {
        SystemCtx {
            cfg: &self.cfg,
            catalog: &self.catalog,
            topology: &mut self.topology,
            nodes: &mut self.nodes,
            clusters: &mut self.clusters,
            store: &mut self.store,
            detector: &mut self.detector,
            reassurer: &mut self.reassurer,
            counters: &mut self.counters,
            allocator: &mut self.allocator,
            lifecycle: &mut self.lifecycle,
            dispatch: &mut self.dispatch,
            sync: &mut self.sync,
            fault: &mut self.fault,
            ctrl: &mut self.ctrl,
            migration: &mut self.migration,
            pool: &self.pool,
            horizon: self.horizon,
            trace: self.trace.as_deref_mut().map(|t| t as _),
        }
    }

    // ------------------------------------------------------------------
    // driving
    // ------------------------------------------------------------------

    /// Run the system for `duration`, driven by a synthesized trace, and
    /// produce the report.
    pub fn run(mut self, duration: SimTime, label: &str) -> RunReport {
        self.run_inner(duration);
        self.finish(label)
    }

    /// Like [`run`](Self::run), but also produce the per-request
    /// conservation audit — the fault tests use it to prove that churn
    /// neither loses requests nor leaves them running on dead nodes.
    pub fn run_audited(mut self, duration: SimTime, label: &str) -> (RunReport, RunAudit) {
        self.run_inner(duration);
        let audit = fault_rt::audit(&self.lifecycle, &self.fault);
        (self.finish(label), audit)
    }

    fn run_inner(&mut self, duration: SimTime) {
        let mut engine: Engine<Event> = Engine::new();
        self.prime(&mut engine, duration);
        engine.run_until(self, duration);
    }

    /// Seed a fresh engine with everything a run needs — trace arrivals,
    /// the compiled fault plan, the periodic drivers — and set the
    /// horizon. `run_inner` and the checkpointing driver both start here.
    pub(crate) fn prime(&mut self, engine: &mut Engine<Event>, duration: SimTime) {
        self.horizon = duration;
        // trace
        let spec = TraceSpec {
            diurnal: if self.cfg.workload.diurnal {
                DiurnalProfile::default()
            } else {
                DiurnalProfile::flat()
            },
            ..TraceSpec::new(
                self.cfg.workload.pattern(),
                self.cfg.clusters,
                duration,
                self.cfg.seed ^ 0x77ace,
            )
        };
        let events = TraceGenerator::new(&self.catalog, spec).collect_events();
        for ev in events {
            engine.schedule_at(
                ev.at,
                Event::Arrival {
                    service: ev.service,
                    origin: ev.origin,
                    demand: ev.demand,
                },
            );
        }
        // fault plan: compiled once, sequentially, before the engine
        // starts — the resulting schedule is thread-count-invariant by
        // construction
        if !self.cfg.faults.is_empty() {
            let layout = SystemLayout {
                masters: self.clusters.iter().map(|c| c.master).collect(),
                workers: self.clusters.iter().map(|c| c.workers.clone()).collect(),
            };
            for (at, fe) in self.cfg.faults.compile(&layout, duration) {
                engine.schedule_at(at, Event::Fault(fe));
            }
        }
        // periodic drivers
        engine.schedule_at(SimTime::ZERO, Event::Sync);
        for c in 0..self.cfg.clusters {
            engine.schedule_at(
                self.cfg.dispatch_interval,
                Event::Dispatch(ClusterId(c as u32)),
            );
        }
        engine.schedule_at(self.cfg.dispatch_interval, Event::BeDispatch);
        engine.schedule_at(self.cfg.reassure_interval, Event::Reassure);
    }

    pub(crate) fn finish(mut self, label: &str) -> RunReport {
        self.fault.settle(self.horizon);
        self.fault.summary.fault_qos_violations = self.counters.total_fault_qos_violations();
        RunReport {
            label: label.to_string(),
            qos_satisfaction: self.counters.qos_satisfaction_rate().unwrap_or(0.0),
            be_throughput: self.counters.be_throughput(),
            abandoned: self.counters.total_abandoned(),
            mean_utilization: self.counters.mean_utilization(),
            lc_p95_ms: self.counters.overall_lc_p95_ms(),
            lc_arrived: self.counters.periods().iter().map(|p| p.lc_arrived).sum(),
            lc_completed: self.counters.periods().iter().map(|p| p.lc_completed).sum(),
            periods: self.counters.periods(),
            dvpa_ops: self.allocator.dvpa_ops(),
            be_evictions: self.lifecycle.be_evictions,
            faults: self.fault.summary.clone(),
            migrations_started: self.counters.migration_totals().0,
            migrations_completed: self.counters.migration_totals().1,
            cloud_egress_kib: self.counters.total_cloud_egress_kib(),
        }
    }
}

impl EventHandler for EdgeCloudSystem {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut tango_simcore::engine::Scheduler<'_, Event>) {
        let mut ctx = self.ctx();
        match event {
            Event::Arrival {
                service,
                origin,
                demand,
            } => crate::lifecycle::on_arrival(&mut ctx, service, origin, demand, sched.now()),
            Event::Dispatch(cluster) => crate::dispatch::on_dispatch(&mut ctx, cluster, sched),
            Event::CentralArrive(rid) => crate::dispatch::on_central_arrive(&mut ctx, rid),
            Event::BeDispatch => crate::dispatch::on_be_dispatch(&mut ctx, sched),
            Event::Deliver(rid, node, epoch) => {
                crate::lifecycle::on_deliver(&mut ctx, rid, node, epoch, sched)
            }
            Event::NodeCheck(node, generation) => {
                crate::lifecycle::on_node_check(&mut ctx, node, generation, sched)
            }
            Event::Reassure => crate::sync_loop::on_reassure(&mut ctx, sched),
            Event::Sync => crate::sync_loop::on_sync(&mut ctx, sched),
            Event::Fault(fault) => crate::fault_rt::on_fault(&mut ctx, fault, sched),
            Event::MigrateArrive(rid, node, epoch) => {
                crate::migration::on_migrate_arrive(&mut ctx, rid, node, epoch, sched)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::testutil::small_cfg;

    #[test]
    fn system_builds_with_expected_layout() {
        let sys = EdgeCloudSystem::new(small_cfg());
        assert_eq!(sys.clusters.len(), 2);
        assert_eq!(sys.worker_count(), 8); // 4 per cluster
        assert_eq!(sys.node_count(), 10); // + 2 masters
                                          // every worker has all ten services deployed
        for c in &sys.clusters {
            for &w in &c.workers {
                let node = &sys.nodes[w.index()];
                for spec in sys.catalog.specs() {
                    assert!(node.container_for(spec.id).is_some());
                }
            }
        }
    }
}

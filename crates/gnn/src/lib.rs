//! Graph neural network encoders for DCG-BE (§5.3.2).
//!
//! The paper encodes the edge-cloud topology with **GraphSAGE** — per-node
//! sampling of p neighbors and L = 2 rounds of mean aggregation,
//! `v_i^{l+1} = σ(W · MEAN(v_i^l ∪ {v_j^l : s_j ∈ N(s_i)}))` (Eq. 9) —
//! and compares against GCN and GAT variants in Fig. 11(d). This crate
//! implements all three over the `tango-nn` layers, with a shared
//! aggregation-matrix representation that makes backprop uniform:
//! aggregation is a sparse row-stochastic operator `A`, so ∂L/∂H = Aᵀ·G.
//!
//! One documented simplification: in GAT, attention coefficients are
//! treated as constants during the backward pass (gradients flow through
//! the value path only). The networks involved are tiny and trained by
//! policy gradient; this "stop-gradient through α" variant is standard in
//! lightweight implementations and preserves the forward semantics
//! exactly.

pub mod encoder;
pub mod graph;

pub use encoder::{Encoder, EncoderKind, GnnEncoder};
pub use graph::FeatureGraph;

//! The three encoder variants behind one interface.
//!
//! Every variant is expressed as: per layer, an *aggregation operator* A
//! (a sparse row-normalized matrix in CSR layout) and a linear map W with
//! ReLU. For SAGE and GCN the layer is `H' = ReLU((A·H)·W)`; for GAT the
//! attention weights live in A but are computed from `H·W`, so the layer
//! is `H' = ReLU(A·(H·W))`. Backward is uniform because Aᵀ routes
//! gradients.
//!
//! Topology-independent operators (GCN, Native, and SAGE when no node
//! exceeds the sampling budget p) are cached keyed on
//! [`FeatureGraph::topo_version`] and rebuilt only when the edge set
//! actually changes — the encoder runs every decision round on a
//! cluster graph that changes rarely, so in steady state the forward
//! pass skips operator construction entirely.

use crate::graph::FeatureGraph;
use std::sync::Arc;
use tango_nn::{Linear, Matrix};
use tango_simcore::SimRng;

/// Which GNN structure (Fig. 11(d) compares all of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// GraphSAGE with p-neighbor sampling and mean aggregation (Eq. 9).
    Sage {
        /// Number of neighbors sampled per node.
        p: usize,
    },
    /// GCN with symmetric normalization over A + I.
    Gcn,
    /// Single-head GAT (attention constants in backward; see crate docs).
    Gat,
    /// No aggregation at all — each node sees only its own features
    /// (the "Native-A2C" baseline).
    Native,
}

/// A sparse row-normalized aggregation operator in CSR layout: one flat
/// entry vector plus row offsets. Flat storage keeps the apply loops on
/// contiguous memory (one allocation, no per-row pointer chasing).
#[derive(Debug, Clone, Default)]
struct AggOp {
    /// `offsets[i]..offsets[i+1]` indexes row i's entries.
    offsets: Vec<usize>,
    /// Flat `(source node, weight)` entries, row-major.
    entries: Vec<(usize, f32)>,
}

impl AggOp {
    fn identity(n: usize) -> Self {
        AggOp {
            offsets: (0..=n).collect(),
            entries: (0..n).map(|i| (i, 1.0)).collect(),
        }
    }

    /// Start building with `n` rows expected.
    fn builder(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        AggOp {
            offsets,
            entries: Vec::new(),
        }
    }

    /// Append one entry to the row currently being built.
    fn push_entry(&mut self, src: usize, w: f32) {
        self.entries.push((src, w));
    }

    /// Seal the row currently being built.
    fn finish_row(&mut self) {
        self.offsets.push(self.entries.len());
    }

    /// Number of rows.
    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Row i's `(source, weight)` entries.
    fn row(&self, i: usize) -> &[(usize, f32)] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }

    /// out = A · h
    ///
    /// Output rows are independent (row i reads only row i's CSR
    /// entries), so the row loop fans out over the global pool; each
    /// row's entries accumulate in CSR order regardless of chunking, so
    /// the product is bit-identical at any thread count.
    fn apply(&self, h: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows(), h.cols);
        let pool = tango_par::global().limit(self.entries.len() * h.cols, 1 << 16);
        pool.par_chunks_mut(out.as_mut_slice(), h.cols.max(1), |first_row, rows| {
            for (r, out_row) in rows.chunks_mut(h.cols).enumerate() {
                for &(src, w) in self.row(first_row + r) {
                    for (o, &v) in out_row.iter_mut().zip(h.row(src)) {
                        *o += w * v;
                    }
                }
            }
        });
        out
    }

    /// out = Aᵀ · g
    ///
    /// Stays sequential: row i *scatters* into `out.row_mut(src)`, so
    /// output rows are shared across input rows and a row-chunked
    /// fan-out would race (and any atomics/accumulator merge would break
    /// the bitwise-determinism contract). Backward is off the per-tick
    /// hot path.
    fn apply_transpose(&self, g: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows(), g.cols);
        for i in 0..self.n_rows() {
            let g_row = g.row(i);
            for &(src, w) in self.row(i) {
                let out_row = out.row_mut(src);
                for (o, &v) in out_row.iter_mut().zip(g_row) {
                    *o += w * v;
                }
            }
        }
        out
    }
}

/// Object-safe encoder interface used by the RL agents.
pub trait Encoder {
    /// Encode a graph into N×out_dim embeddings, caching for backward.
    fn forward(&mut self, g: &FeatureGraph) -> Matrix;
    /// Backward from ∂L/∂embeddings; accumulates parameter gradients.
    fn backward(&mut self, grad: &Matrix);
    /// Apply accumulated gradients with the embedded optimizer.
    fn step(&mut self, lr: f32);
    /// Embedding dimensionality.
    fn out_dim(&self) -> usize;
}

#[derive(Debug, Clone)]
struct LayerCache {
    agg: Arc<AggOp>,
    relu_mask: Matrix,
}

/// A cached topology-independent aggregation operator, valid as long as
/// the observed [`FeatureGraph::topo_version`] is unchanged.
#[derive(Debug, Clone)]
struct TopoCache {
    version: u64,
    op: Arc<AggOp>,
}

/// The concrete encoder.
#[derive(Debug, Clone)]
pub struct GnnEncoder {
    kind: EncoderKind,
    layers: Vec<Linear>,
    /// GAT attention vectors (a_left, a_right) per layer.
    attn: Vec<(Vec<f32>, Vec<f32>)>,
    rng: SimRng,
    caches: Vec<LayerCache>,
    /// Cached operator for topology-independent kinds (GCN, Native, SAGE
    /// below the sampling threshold). GAT operators depend on activations
    /// and are never cached.
    topo_cache: Option<TopoCache>,
}

const LEAKY_SLOPE: f32 = 0.2;

impl GnnEncoder {
    /// Build an encoder with `dims = [in, h1, ..., out]`; the paper uses
    /// L = 2 aggregation rounds, i.e. `dims.len() == 3`.
    pub fn new(kind: EncoderKind, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let mut rng = SimRng::new(seed);
        let mut layers = Vec::new();
        let mut attn = Vec::new();
        for w in dims.windows(2) {
            layers.push(Linear::new(w[0], w[1], &mut rng));
            let mk = |rng: &mut SimRng, d: usize| -> Vec<f32> {
                (0..d)
                    .map(|_| (rng.standard_normal() * 0.1) as f32)
                    .collect()
            };
            attn.push((mk(&mut rng, w[1]), mk(&mut rng, w[1])));
        }
        GnnEncoder {
            kind,
            layers,
            attn,
            rng,
            caches: Vec::new(),
            topo_cache: None,
        }
    }

    /// The paper's shape: 2 aggregation layers from `in_dim` to `out_dim`
    /// through one hidden width.
    pub fn paper_shape(
        kind: EncoderKind,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        GnnEncoder::new(kind, &[in_dim, hidden, out_dim], seed)
    }

    /// Sample ≤ p neighbors without replacement (paper §5.3.2 "Sampling").
    fn sample_neighbors(&mut self, g: &FeatureGraph, v: usize, p: usize) -> Vec<usize> {
        let nbrs = g.neighbors(v);
        if nbrs.len() <= p {
            return nbrs.to_vec();
        }
        let mut pool: Vec<usize> = nbrs.to_vec();
        self.rng.shuffle(&mut pool);
        pool.truncate(p);
        pool
    }

    /// Whether this forward pass's operator is a pure function of the
    /// topology (no randomness, no activations): GCN and Native always;
    /// SAGE when no node exceeds the sampling budget p, since sampling
    /// then keeps every neighbor and draws no randomness. GAT attention
    /// depends on H·W, so it is never topology-determined.
    fn topology_determined(&self, g: &FeatureGraph) -> bool {
        match self.kind {
            EncoderKind::Gcn | EncoderKind::Native => true,
            EncoderKind::Sage { p } => g.max_degree() <= p,
            EncoderKind::Gat => false,
        }
    }

    /// The aggregation operator for the next layer, served from the
    /// topology cache when valid.
    fn agg_for_layer(&mut self, g: &FeatureGraph, h: &Matrix) -> Arc<AggOp> {
        if !self.topology_determined(g) {
            return Arc::new(self.build_agg(g, h));
        }
        if let Some(tc) = &self.topo_cache {
            if tc.version == g.topo_version() {
                return Arc::clone(&tc.op);
            }
        }
        let op = Arc::new(self.build_agg(g, h));
        self.topo_cache = Some(TopoCache {
            version: g.topo_version(),
            op: Arc::clone(&op),
        });
        op
    }

    /// Build this layer's aggregation operator.
    fn build_agg(&mut self, g: &FeatureGraph, h: &Matrix) -> AggOp {
        let n = g.len();
        match self.kind {
            EncoderKind::Native => AggOp::identity(n),
            EncoderKind::Sage { p } => {
                // MEAN over self ∪ sampled neighbors (Eq. 9)
                let mut op = AggOp::builder(n);
                for v in 0..n {
                    let sampled = self.sample_neighbors(g, v, p);
                    let k = (sampled.len() + 1) as f32;
                    op.push_entry(v, 1.0 / k);
                    for s in sampled {
                        op.push_entry(s, 1.0 / k);
                    }
                    op.finish_row();
                }
                op
            }
            EncoderKind::Gcn => {
                // D^{-1/2}(A+I)D^{-1/2}
                let mut op = AggOp::builder(n);
                let deg = |v: usize| (g.degree(v) + 1) as f32;
                for v in 0..n {
                    let dv = deg(v).sqrt();
                    op.push_entry(v, 1.0 / (dv * dv));
                    for &u in g.neighbors(v) {
                        op.push_entry(u, 1.0 / (dv * deg(u).sqrt()));
                    }
                    op.finish_row();
                }
                op
            }
            EncoderKind::Gat => {
                // attention over self ∪ neighbors computed from h (which
                // is already H·W for GAT ordering)
                let li = self.caches.len();
                let (al, ar) = &self.attn[li];
                let score =
                    |v: usize| -> f32 { h.row(v).iter().zip(al).map(|(&x, &a)| x * a).sum() };
                let score_r =
                    |v: usize| -> f32 { h.row(v).iter().zip(ar).map(|(&x, &a)| x * a).sum() };
                let leaky = |x: f32| if x > 0.0 { x } else { LEAKY_SLOPE * x };
                let mut op = AggOp::builder(n);
                let mut cand: Vec<usize> = Vec::new();
                let mut exps: Vec<f32> = Vec::new();
                for v in 0..n {
                    cand.clear();
                    cand.push(v);
                    cand.extend_from_slice(g.neighbors(v));
                    let sv = score(v);
                    exps.clear();
                    exps.extend(cand.iter().map(|&u| leaky(sv + score_r(u))));
                    let max = exps.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for e in exps.iter_mut() {
                        *e = (*e - max).exp();
                        sum += *e;
                    }
                    for (&u, &e) in cand.iter().zip(&exps) {
                        op.push_entry(u, e / sum.max(1e-12));
                    }
                    op.finish_row();
                }
                op
            }
        }
    }

    /// Whether this kind applies the linear map before aggregation.
    fn linear_first(&self) -> bool {
        matches!(self.kind, EncoderKind::Gat)
    }

    /// The encoder kind.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Write layer weights, attention vectors and the sampling RNG
    /// stream. Aggregation/ReLU caches and the topology cache are
    /// rebuildable scratch keyed on process-local topology versions and
    /// are excluded; the RNG *is* state (SAGE over-budget sampling draws
    /// from it), so it round-trips exactly.
    pub fn snap_write(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        w.put_u64(self.layers.len() as u64);
        for layer in &self.layers {
            layer.w.encode(w);
            layer.b.encode(w);
        }
        self.attn.encode(w);
        for s in self.rng.state() {
            w.put_u64(s);
        }
    }

    /// Overwrite weights, attention vectors and the RNG stream from a
    /// [`GnnEncoder::snap_write`] encoding. The encoder must have been
    /// constructed with the same kind and layer dims. Caches are
    /// dropped; they rebuild on the next forward pass.
    pub fn snap_read(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapError};
        let n = r.len_prefix(1)?;
        if n != self.layers.len() {
            return Err(SnapError::Corrupt("encoder layer count mismatch"));
        }
        for layer in &mut self.layers {
            let w = Matrix::decode(r)?;
            let b = Vec::<f32>::decode(r)?;
            if w.rows != layer.w.rows || w.cols != layer.w.cols || b.len() != layer.b.len() {
                return Err(SnapError::Corrupt("encoder layer shape mismatch"));
            }
            layer.w = w;
            layer.b = b;
            layer.zero_grad();
        }
        let attn = Vec::<(Vec<f32>, Vec<f32>)>::decode(r)?;
        let attn_ok = attn.len() == self.attn.len()
            && attn
                .iter()
                .zip(&self.attn)
                .all(|(a, b)| a.0.len() == b.0.len() && a.1.len() == b.1.len());
        if !attn_ok {
            return Err(SnapError::Corrupt("encoder attention shape mismatch"));
        }
        self.attn = attn;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.caches.clear();
        self.topo_cache = None;
        Ok(())
    }
}

impl Encoder for GnnEncoder {
    fn forward(&mut self, g: &FeatureGraph) -> Matrix {
        assert_eq!(
            g.feature_dim(),
            self.layers[0].in_dim(),
            "feature dim mismatch"
        );
        self.caches.clear();
        let mut h = g.features.clone();
        let n_layers = self.layers.len();
        for li in 0..n_layers {
            let (pre, agg) = if self.linear_first() {
                // GAT: H·W then attention-aggregate
                let hw = self.layers[li].forward(&h);
                let agg = self.agg_for_layer(g, &hw);
                (agg.apply(&hw), agg)
            } else {
                // SAGE/GCN/Native: aggregate then W
                let agg = self.agg_for_layer(g, &h);
                let ah = agg.apply(&h);
                (self.layers[li].forward(&ah), agg)
            };
            let relu_mask = pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            h = pre.map(|v| v.max(0.0));
            self.caches.push(LayerCache { agg, relu_mask });
        }
        h
    }

    fn backward(&mut self, grad: &Matrix) {
        let mut g = grad.clone();
        for li in (0..self.layers.len()).rev() {
            let cache = &self.caches[li];
            g = g.hadamard(&cache.relu_mask);
            if self.linear_first() {
                // forward was: pre = A · (layer.forward(h))
                let g_hw = cache.agg.apply_transpose(&g);
                g = self.layers[li].backward(&g_hw);
            } else {
                // forward was: pre = layer.forward(A · h)
                let g_ah = self.layers[li].backward(&g);
                g = cache.agg.apply_transpose(&g_ah);
            }
        }
    }

    fn step(&mut self, lr: f32) {
        // plain SGD on the encoder (the RL heads carry Adam); simple and
        // adequate for these small layers.
        for layer in &mut self.layers {
            let [(w, gw), (b, gb)] = layer.params_and_grads();
            for (p, &g) in w.iter_mut().zip(gw.iter()) {
                *p -= lr * g;
            }
            for (p, &g) in b.iter_mut().zip(gb.iter()) {
                *p -= lr * g;
            }
            layer.zero_grad();
        }
    }

    fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(n: usize, f: usize) -> FeatureGraph {
        let data: Vec<f32> = (0..n * f).map(|i| (i % 7) as f32 * 0.1).collect();
        let mut g = FeatureGraph::new(Matrix::from_vec(n, f, data).unwrap());
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn all_kinds_produce_right_shape() {
        let g = chain_graph(6, 4);
        for kind in [
            EncoderKind::Sage { p: 3 },
            EncoderKind::Gcn,
            EncoderKind::Gat,
            EncoderKind::Native,
        ] {
            let mut enc = GnnEncoder::paper_shape(kind, 4, 16, 8, 42);
            let h = enc.forward(&g);
            assert_eq!((h.rows, h.cols), (6, 8), "{kind:?}");
            assert_eq!(enc.out_dim(), 8);
        }
    }

    #[test]
    fn native_ignores_edges() {
        let f = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut g_edges = FeatureGraph::new(f.clone());
        g_edges.add_edge(0, 1);
        g_edges.add_edge(1, 2);
        let g_none = FeatureGraph::new(f);
        let mut enc = GnnEncoder::paper_shape(EncoderKind::Native, 2, 8, 4, 1);
        let a = enc.forward(&g_edges);
        let b = enc.forward(&g_none);
        assert_eq!(a, b);
    }

    #[test]
    fn sage_aggregates_neighbor_information() {
        // two isolated nodes vs two connected nodes: embeddings differ
        let f = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let mut connected = FeatureGraph::new(f.clone());
        connected.add_edge(0, 1);
        let isolated = FeatureGraph::new(f);
        // ReLU can zero a particular seed's output; require that *some*
        // seed shows the difference and produces non-trivial embeddings.
        let mut distinguished = false;
        for seed in 0..5 {
            let mut enc = GnnEncoder::paper_shape(EncoderKind::Sage { p: 5 }, 2, 8, 4, seed);
            let a = enc.forward(&connected);
            let b = enc.forward(&isolated);
            if a != b && a.norm() > 0.0 {
                distinguished = true;
                break;
            }
        }
        assert!(
            distinguished,
            "no seed distinguished connected from isolated"
        );
    }

    #[test]
    fn sage_sampling_caps_neighbor_count() {
        // star graph: center has many neighbors; p=2 samples only 2.
        let n = 10;
        let f = Matrix::zeros(n, 2);
        let mut g = FeatureGraph::new(f);
        for i in 1..n {
            g.add_edge(0, i);
        }
        let mut enc = GnnEncoder::new(EncoderKind::Sage { p: 2 }, &[2, 4], 5);
        enc.forward(&g);
        let agg = &enc.caches[0].agg;
        assert_eq!(agg.row(0).len(), 3); // self + 2 sampled
                                         // leaf nodes: self + 1 neighbor
        assert_eq!(agg.row(1).len(), 2);
    }

    #[test]
    fn gcn_weights_are_symmetric_normalized() {
        let g = chain_graph(3, 2);
        let mut enc = GnnEncoder::new(EncoderKind::Gcn, &[2, 4], 7);
        enc.forward(&g);
        let agg = &enc.caches[0].agg;
        // node 0: deg 1 -> self weight 1/2; edge to node 1 (deg 2):
        // 1/(sqrt2 * sqrt3)
        let self_w = agg.row(0).iter().find(|&&(s, _)| s == 0).unwrap().1;
        assert!((self_w - 0.5).abs() < 1e-6);
        let edge_w = agg.row(0).iter().find(|&&(s, _)| s == 1).unwrap().1;
        assert!((edge_w - 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt())).abs() < 1e-6);
    }

    #[test]
    fn gat_attention_rows_sum_to_one() {
        let g = chain_graph(5, 3);
        let mut enc = GnnEncoder::new(EncoderKind::Gat, &[3, 6], 9);
        enc.forward(&g);
        let agg = &enc.caches[0].agg;
        for i in 0..agg.n_rows() {
            let sum: f32 = agg.row(i).iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    /// Numerical gradient check through a 2-layer GCN (deterministic
    /// aggregation, so finite differences are exact).
    #[test]
    fn gcn_gradient_matches_finite_differences() {
        let g = chain_graph(4, 3);
        let mut enc = GnnEncoder::new(EncoderKind::Gcn, &[3, 5, 2], 13);
        let loss = |enc: &mut GnnEncoder, g: &FeatureGraph| -> f64 {
            let h = enc.forward(g);
            h.as_slice()
                .iter()
                .map(|&v| (v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let h = enc.forward(&g);
        enc.backward(&h);
        let analytic: Vec<f32> = enc.layers[0].grad_w.as_slice().to_vec();
        let eps = 1e-3f32;
        for idx in [0usize, 4, 9, 14] {
            let orig = enc.layers[0].w.as_slice()[idx];
            enc.layers[0].w.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut enc, &g);
            enc.layers[0].w.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut enc, &g);
            enc.layers[0].w.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = analytic[idx] as f64;
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "w0[{idx}]: num {num} ana {ana}"
            );
        }
    }

    #[test]
    fn step_changes_parameters_and_clears_grads() {
        let g = chain_graph(4, 3);
        let mut enc = GnnEncoder::new(EncoderKind::Sage { p: 2 }, &[3, 4], 21);
        let h = enc.forward(&g);
        enc.backward(&h);
        let before = enc.layers[0].w.clone();
        enc.step(0.05);
        assert_ne!(enc.layers[0].w, before);
        assert!(enc.layers[0].grad_w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn wrong_feature_dim_panics() {
        let g = chain_graph(3, 2);
        let mut enc = GnnEncoder::new(EncoderKind::Gcn, &[5, 4], 1);
        enc.forward(&g);
    }

    /// Every encoder kind's forward pass is bit-identical at any thread
    /// count (the tango-par determinism contract, through the CSR
    /// aggregation and the matmul kernels).
    #[test]
    fn forward_is_thread_count_invariant() {
        let g = chain_graph(64, 6);
        let saved = tango_par::threads();
        for kind in [
            EncoderKind::Sage { p: 3 },
            EncoderKind::Gcn,
            EncoderKind::Gat,
            EncoderKind::Native,
        ] {
            tango_par::set_threads(1);
            let h1 = GnnEncoder::paper_shape(kind, 6, 32, 16, 11).forward(&g);
            for t in [2usize, 4] {
                tango_par::set_threads(t);
                let ht = GnnEncoder::paper_shape(kind, 6, 32, 16, 11).forward(&g);
                assert_eq!(ht, h1, "{kind:?} diverged at {t} threads");
            }
        }
        tango_par::set_threads(saved);
    }

    /// Topology-determined kinds share one cached operator across layers
    /// and across forward passes on an unchanged graph.
    #[test]
    fn topology_cache_is_shared_and_reused() {
        let g = chain_graph(5, 3);
        let mut enc = GnnEncoder::new(EncoderKind::Gcn, &[3, 4, 2], 3);
        enc.forward(&g);
        assert!(
            Arc::ptr_eq(&enc.caches[0].agg, &enc.caches[1].agg),
            "both layers should share the cached operator"
        );
        let first = Arc::clone(&enc.caches[0].agg);
        enc.forward(&g);
        assert!(
            Arc::ptr_eq(&first, &enc.caches[0].agg),
            "second forward on the same topology should not rebuild"
        );
    }

    /// Editing the graph invalidates the cache: a warm encoder matches a
    /// cold one on the edited graph (GCN is deterministic).
    #[test]
    fn topology_cache_invalidates_on_edge_edit() {
        let mut g = chain_graph(5, 3);
        let mut warm = GnnEncoder::new(EncoderKind::Gcn, &[3, 4, 2], 17);
        let mut cold = GnnEncoder::new(EncoderKind::Gcn, &[3, 4, 2], 17);
        warm.forward(&g); // populate the cache on the old topology
        g.add_edge(0, 4);
        assert_eq!(warm.forward(&g), cold.forward(&g));
    }

    /// SAGE only uses the cache when no node exceeds the sampling budget;
    /// its embeddings match the uncached (rebuild-every-pass) behavior
    /// because sub-budget sampling draws no randomness.
    #[test]
    fn sage_cache_matches_uncached_below_budget() {
        let g = chain_graph(6, 3); // max degree 2
        let mut a = GnnEncoder::new(EncoderKind::Sage { p: 3 }, &[3, 4, 2], 29);
        let mut b = GnnEncoder::new(EncoderKind::Sage { p: 3 }, &[3, 4, 2], 29);
        let h1a = a.forward(&g);
        let h2a = a.forward(&g); // cached
        let h1b = b.forward(&g);
        assert_eq!(h1a, h1b);
        assert_eq!(h1a, h2a, "deterministic sub-budget SAGE is stable");
        // over budget: operators are re-sampled, never cached
        let mut dense = FeatureGraph::new(Matrix::zeros(5, 3));
        for i in 1..5 {
            dense.add_edge(0, i);
        }
        let mut enc = GnnEncoder::new(EncoderKind::Sage { p: 2 }, &[3, 4], 31);
        enc.forward(&dense);
        let first = Arc::clone(&enc.caches[0].agg);
        enc.forward(&dense);
        assert!(
            !Arc::ptr_eq(&first, &enc.caches[0].agg),
            "over-budget SAGE must re-sample per pass"
        );
    }
}

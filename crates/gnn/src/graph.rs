//! Feature graphs: node feature matrix plus undirected adjacency.

use std::sync::atomic::{AtomicU64, Ordering};
use tango_nn::Matrix;

/// Source of globally unique topology versions. Every structural change
/// to any [`FeatureGraph`] draws a fresh value, so a version observed on
/// one graph can never be reproduced by a different (or later-mutated)
/// topology — the property encoder-side aggregation caches rely on.
static TOPO_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_topo_version() -> u64 {
    TOPO_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A graph with per-node feature vectors.
#[derive(Debug, Clone)]
pub struct FeatureGraph {
    /// N×F node features.
    pub features: Matrix,
    adj: Vec<Vec<usize>>,
    /// Globally unique id of the current topology. Feature edits leave it
    /// unchanged; edge edits replace it.
    topo_version: u64,
}

impl FeatureGraph {
    /// Create a graph from an N×F feature matrix and no edges.
    pub fn new(features: Matrix) -> Self {
        let n = features.rows;
        FeatureGraph {
            features,
            adj: vec![Vec::new(); n],
            topo_version: next_topo_version(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols
    }

    /// Add an undirected edge. Self-loops and duplicates are ignored
    /// (aggregators add the self term themselves) and do not invalidate
    /// the topology version.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.len() && b < self.len(), "node out of range");
        if a == b || self.adj[a].contains(&b) {
            return;
        }
        self.adj[a].push(b);
        self.adj[b].push(a);
        self.topo_version = next_topo_version();
    }

    /// Globally unique id of this graph's current edge set. Two
    /// observations with equal versions are guaranteed to refer to the
    /// same topology; any structural edit replaces the version.
    pub fn topo_version(&self) -> u64 {
        self.topo_version
    }

    /// Largest node degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of a node.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

impl tango_snap::SnapEncode for FeatureGraph {
    /// Encode features and adjacency. The topology version is a process-
    /// local cache key and is *excluded*: a decoded graph draws a fresh
    /// one (so warm encoder caches can never alias it) and re-encoding a
    /// decoded graph reproduces these bytes exactly.
    fn encode(&self, w: &mut tango_snap::SnapWriter) {
        self.features.encode(w);
        self.adj.encode(w);
    }
}

impl tango_snap::SnapDecode for FeatureGraph {
    fn decode(r: &mut tango_snap::SnapReader<'_>) -> Result<Self, tango_snap::SnapError> {
        use tango_snap::SnapError;
        let features = Matrix::decode(r)?;
        let adj = Vec::<Vec<usize>>::decode(r)?;
        if adj.len() != features.rows {
            return Err(SnapError::Corrupt("feature graph row/adjacency mismatch"));
        }
        let n = adj.len();
        if adj.iter().flatten().any(|&v| v >= n) {
            return Err(SnapError::Corrupt("feature graph neighbor out of range"));
        }
        Ok(FeatureGraph {
            features,
            adj,
            topo_version: next_topo_version(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> FeatureGraph {
        let f = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        FeatureGraph::new(f)
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let mut g = g3();
        g.add_edge(0, 1);
        g.add_edge(1, 0); // duplicate
        g.add_edge(2, 2); // self-loop ignored
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = g3();
        g.add_edge(0, 9);
    }

    #[test]
    fn dimensions_reported() {
        let g = g3();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.feature_dim(), 2);
    }

    #[test]
    fn topo_version_changes_only_on_structural_edits() {
        let mut g = g3();
        let v0 = g.topo_version();
        g.features.set(0, 0, 9.0); // feature edit: same topology
        assert_eq!(g.topo_version(), v0);
        g.add_edge(0, 1);
        let v1 = g.topo_version();
        assert_ne!(v1, v0);
        g.add_edge(1, 0); // duplicate: ignored, no invalidation
        g.add_edge(2, 2); // self-loop: ignored
        assert_eq!(g.topo_version(), v1);
        // versions are globally unique: a different graph never aliases
        let g2 = g3();
        assert_ne!(g2.topo_version(), v0);
        assert_ne!(g2.topo_version(), v1);
    }

    #[test]
    fn max_degree_tracks_adjacency() {
        let mut g = g3();
        assert_eq!(g.max_degree(), 0);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.max_degree(), 2);
    }
}

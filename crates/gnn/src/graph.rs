//! Feature graphs: node feature matrix plus undirected adjacency.

use tango_nn::Matrix;

/// A graph with per-node feature vectors.
#[derive(Debug, Clone)]
pub struct FeatureGraph {
    /// N×F node features.
    pub features: Matrix,
    adj: Vec<Vec<usize>>,
}

impl FeatureGraph {
    /// Create a graph from an N×F feature matrix and no edges.
    pub fn new(features: Matrix) -> Self {
        let n = features.rows;
        FeatureGraph {
            features,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols
    }

    /// Add an undirected edge. Self-loops and duplicates are ignored
    /// (aggregators add the self term themselves).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.len() && b < self.len(), "node out of range");
        if a == b || self.adj[a].contains(&b) {
            return;
        }
        self.adj[a].push(b);
        self.adj[b].push(a);
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of a node.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> FeatureGraph {
        let f = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        FeatureGraph::new(f)
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let mut g = g3();
        g.add_edge(0, 1);
        g.add_edge(1, 0); // duplicate
        g.add_edge(2, 2); // self-loop ignored
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = g3();
        g.add_edge(0, 9);
    }

    #[test]
    fn dimensions_reported() {
        let g = g3();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.feature_dim(), 2);
    }
}

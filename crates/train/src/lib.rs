//! Deterministic, resumable RL training harness (the "tango-train"
//! subsystem).
//!
//! [`TrainHarness`] drives [`EdgeCloudSystem`] episodes through a seeded
//! scenario generator: each episode rebuilds the world from a perturbed
//! config (fresh trace seed, jittered arrival rates) while the BE
//! scheduler's learner state — network weights, Adam moments, RNG
//! streams, the replay ring — threads through via the policy blob, so
//! the agent trains *across* episodes. Gradient updates happen inside
//! the agent on its own fixed cadence (`train_interval` transitions);
//! the harness's job is episode orchestration, evaluation folding and
//! checkpointing.
//!
//! # Checkpoint layout
//!
//! A train checkpoint is a sealed `tango-snap` container (the same
//! magic/version/fingerprint/checksum framing as a system snapshot)
//! holding:
//!
//! | section | contents |
//! |---|---|
//! | meta    | next episode index, eval digest, per-episode records |
//! | rng     | the scenario generator's RNG state |
//! | agent   | the BE policy blob at the episode boundary |
//! | world   | (mid-episode only) a full system snapshot |
//!
//! Episode-boundary checkpoints restore by reloading the harness state.
//! Mid-episode checkpoints additionally embed the whole simulator
//! snapshot; [`TrainHarness::resume`] regenerates the in-flight
//! episode's scenario from the stored RNG state, restores the world onto
//! it and finishes the episode on the next [`step`](TrainHarness::step).
//! Either way a killed run resumes **bit-identically**: the final agent
//! blob and the eval digest match the uninterrupted run at any thread
//! count.

use tango::{
    config_fingerprint, CheckpointPolicy, EdgeCloudSystem, Resumed, RunReport, SnapError,
    TangoConfig,
};
use tango_simcore::SimRng;
use tango_snap::{
    fnv1a, fnv1a_extend, SnapDecode, SnapEncode, SnapFile, SnapFileBuilder, SnapReader, SnapWriter,
};
use tango_types::SimTime;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Base system config; `be_policy` should be a learning policy
    /// (Td3, GnnSac, DcgBe) for training to mean anything.
    pub base: TangoConfig,
    /// Total episodes to run.
    pub episodes: usize,
    /// Simulated duration of one episode.
    pub episode_duration: SimTime,
    /// Emit an episode-boundary checkpoint every N completed episodes
    /// (0 = none).
    pub checkpoint_every: usize,
    /// Also take whole-world checkpoints *inside* each episode at this
    /// sync-tick cadence (None = episode boundaries only).
    pub mid_episode: Option<CheckpointPolicy>,
    /// Scenario-generator seed (independent of `base.seed`).
    pub seed: u64,
    /// Per-episode arrival-rate jitter: rates scale uniformly in
    /// `[1-j, 1+j]`. Zero = identical traffic shape, fresh trace seed.
    pub rate_jitter: f64,
}

impl TrainConfig {
    /// A harness over `base` with paper-ish defaults: 4 episodes of 2 s,
    /// boundary checkpoints each episode, ±20% rate jitter.
    pub fn new(base: TangoConfig) -> Self {
        TrainConfig {
            base,
            episodes: 4,
            episode_duration: SimTime::from_secs(2),
            checkpoint_every: 1,
            mid_episode: None,
            seed: 1701,
            rate_jitter: 0.2,
        }
    }
}

/// Outcome of one completed episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Episode index (0-based).
    pub episode: u64,
    /// The episode's [`RunReport::digest`].
    pub digest: u64,
    /// QoS satisfaction rate.
    pub qos: f64,
    /// BE throughput (completed requests).
    pub be_throughput: u64,
    /// Mean node utilization.
    pub utilization: f64,
}

impl SnapEncode for EpisodeRecord {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.episode);
        w.put_u64(self.digest);
        w.put_f64(self.qos);
        w.put_u64(self.be_throughput);
        w.put_f64(self.utilization);
    }
}

impl SnapDecode for EpisodeRecord {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EpisodeRecord {
            episode: r.u64()?,
            digest: r.u64()?,
            qos: r.f64()?,
            be_throughput: r.u64()?,
            utilization: r.f64()?,
        })
    }
}

/// Final result of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Episodes completed.
    pub episodes: usize,
    /// FNV-1a fold over every episode's report digest — the whole run's
    /// behavioral fingerprint.
    pub eval_digest: u64,
    /// Per-episode records, in order.
    pub records: Vec<EpisodeRecord>,
    /// The trained BE policy blob (empty if no episode ran).
    pub agent_blob: Vec<u8>,
}

// Train-checkpoint section tags (independent of the system snapshot's).
const SEC_T_META: u32 = 101;
const SEC_T_RNG: u32 = 102;
const SEC_T_AGENT: u32 = 103;
const SEC_T_WORLD: u32 = 104;

fn harness_fingerprint(cfg: &TrainConfig) -> u64 {
    let mut h = config_fingerprint(&cfg.base);
    h = fnv1a_extend(h, &(cfg.episodes as u64).to_le_bytes());
    h = fnv1a_extend(h, &cfg.episode_duration.as_micros().to_le_bytes());
    h = fnv1a_extend(h, &cfg.seed.to_le_bytes());
    h = fnv1a_extend(h, &cfg.rate_jitter.to_bits().to_le_bytes());
    h
}

/// An episode restored mid-flight from a world-bearing checkpoint.
struct PendingEpisode {
    resumed: Resumed,
}

/// The training loop. See the crate docs for the contract.
pub struct TrainHarness {
    cfg: TrainConfig,
    rng: SimRng,
    next_episode: usize,
    agent_blob: Option<Vec<u8>>,
    eval_digest: u64,
    records: Vec<EpisodeRecord>,
    pending: Option<PendingEpisode>,
}

impl TrainHarness {
    /// Fresh harness at episode 0.
    pub fn new(cfg: TrainConfig) -> Self {
        let rng = SimRng::new(cfg.seed);
        TrainHarness {
            cfg,
            rng,
            next_episode: 0,
            agent_blob: None,
            eval_digest: fnv1a(b"tango-train"),
            records: Vec::new(),
            pending: None,
        }
    }

    /// Episodes completed so far.
    pub fn episodes_completed(&self) -> usize {
        self.next_episode
    }

    /// Running FNV fold over episode report digests.
    pub fn eval_digest(&self) -> u64 {
        self.eval_digest
    }

    /// The current agent blob (None before the first episode completes).
    pub fn agent_blob(&self) -> Option<&[u8]> {
        self.agent_blob.as_deref()
    }

    /// Per-episode records, in order.
    pub fn records(&self) -> &[EpisodeRecord] {
        &self.records
    }

    /// Generate the next episode's scenario, advancing the generator
    /// stream: a fresh trace seed and (optionally) jittered rates on top
    /// of the base config.
    fn scenario(&mut self) -> TangoConfig {
        let mut cfg = self.cfg.base.clone();
        cfg.seed = self.rng.next_u64();
        let j = self.cfg.rate_jitter;
        if j > 0.0 {
            cfg.workload.lc_rps *= self.rng.range_f64(1.0 - j, 1.0 + j);
            cfg.workload.be_rps *= self.rng.range_f64(1.0 - j, 1.0 + j);
        }
        cfg
    }

    fn fold(&mut self, report: &RunReport) {
        let episode = self.next_episode as u64;
        let rec = EpisodeRecord {
            episode,
            digest: report.digest(),
            qos: report.qos_satisfaction,
            be_throughput: report.be_throughput,
            utilization: report.mean_utilization,
        };
        self.eval_digest = fnv1a_extend(self.eval_digest, &rec.digest.to_le_bytes());
        self.records.push(rec);
        self.next_episode += 1;
    }

    /// Run one episode, emitting any produced checkpoints through
    /// `on_checkpoint` (mid-episode world checkpoints when configured,
    /// plus the boundary checkpoint on the `checkpoint_every` cadence).
    /// Returns the completed episode's record.
    pub fn step<F: FnMut(&[u8])>(
        &mut self,
        on_checkpoint: &mut F,
    ) -> Result<EpisodeRecord, SnapError> {
        assert!(
            self.next_episode < self.cfg.episodes,
            "all {} episodes already ran",
            self.cfg.episodes
        );
        let label = "train";
        let (report, blob) = if let Some(p) = self.pending.take() {
            p.resumed.finish_episode(label)?
        } else {
            let pre_rng = self.rng.state();
            let scen = self.scenario();
            let mut sys = EdgeCloudSystem::new(scen);
            if let Some(blob) = &self.agent_blob {
                sys.restore_be_policy(blob)?;
            }
            match self.cfg.mid_episode {
                Some(policy) => {
                    let (report, blob, cps) =
                        sys.run_episode_checkpointed(self.cfg.episode_duration, label, policy)?;
                    for cp in &cps {
                        on_checkpoint(&self.encode_checkpoint(pre_rng, Some(&cp.bytes)));
                    }
                    (report, blob)
                }
                None => sys.run_episode(self.cfg.episode_duration, label)?,
            }
        };
        self.agent_blob = Some(blob);
        self.fold(&report);
        let every = self.cfg.checkpoint_every;
        if every > 0 && self.next_episode.is_multiple_of(every) {
            on_checkpoint(&self.checkpoint());
        }
        Ok(self.records.last().expect("just pushed").clone())
    }

    /// Run all remaining episodes, discarding checkpoint bytes (the
    /// caller keeps determinism: re-running from any emitted checkpoint
    /// reproduces this outcome).
    pub fn run(&mut self) -> Result<TrainOutcome, SnapError> {
        self.run_with(|_| {})
    }

    /// Run all remaining episodes, streaming every checkpoint to `f`.
    pub fn run_with<F: FnMut(&[u8])>(&mut self, mut f: F) -> Result<TrainOutcome, SnapError> {
        while self.next_episode < self.cfg.episodes {
            self.step(&mut f)?;
        }
        Ok(self.outcome())
    }

    /// The outcome so far.
    pub fn outcome(&self) -> TrainOutcome {
        TrainOutcome {
            episodes: self.next_episode,
            eval_digest: self.eval_digest,
            records: self.records.clone(),
            agent_blob: self.agent_blob.clone().unwrap_or_default(),
        }
    }

    /// Sealed episode-boundary checkpoint of the harness state.
    pub fn checkpoint(&self) -> Vec<u8> {
        self.encode_checkpoint(self.rng.state(), None)
    }

    /// Encode a checkpoint. `rng_state` is the scenario stream position
    /// the restore should start from: the current state at a boundary,
    /// the *pre-draw* state when `world` carries an in-flight episode
    /// (so resume can regenerate the same scenario).
    fn encode_checkpoint(&self, rng_state: [u64; 4], world: Option<&[u8]>) -> Vec<u8> {
        let mut b = SnapFileBuilder::new(harness_fingerprint(&self.cfg));
        // a world checkpoint describes the state *before* the in-flight
        // episode folded its record
        b.section(SEC_T_META, |w| {
            w.put_u64(self.next_episode as u64);
            w.put_u64(self.eval_digest);
            self.records.encode(w);
        });
        b.section(SEC_T_RNG, |w| {
            for s in rng_state {
                w.put_u64(s);
            }
        });
        b.section(SEC_T_AGENT, |w| self.agent_blob.encode(w));
        b.section(SEC_T_WORLD, |w| match world {
            None => w.put_u8(0),
            Some(bytes) => {
                w.put_u8(1);
                w.put_bytes(bytes);
            }
        });
        b.seal()
    }

    /// Restore a harness from checkpoint bytes. `cfg` must match the
    /// configuration the checkpoint was taken under (fingerprint-checked,
    /// thread count masked). Continue with [`step`](Self::step) /
    /// [`run`](Self::run).
    pub fn resume(cfg: TrainConfig, bytes: &[u8]) -> Result<Self, SnapError> {
        let file = SnapFile::parse(bytes)?;
        let expected = harness_fingerprint(&cfg);
        if file.fingerprint != expected {
            return Err(SnapError::ConfigMismatch {
                found: file.fingerprint,
                expected,
            });
        }

        let mut r = file.section(SEC_T_META, "train meta section")?;
        let next_episode = r.u64()? as usize;
        let eval_digest = r.u64()?;
        let records = Vec::<EpisodeRecord>::decode(&mut r)?;
        if records.len() != next_episode {
            return Err(SnapError::Corrupt("train record count"));
        }

        let mut r = file.section(SEC_T_RNG, "train rng section")?;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }

        let mut r = file.section(SEC_T_AGENT, "train agent section")?;
        let agent_blob = Option::<Vec<u8>>::decode(&mut r)?;

        let mut r = file.section(SEC_T_WORLD, "train world section")?;
        let world = match r.u8()? {
            0 => None,
            1 => Some(r.bytes()?.to_vec()),
            _ => return Err(SnapError::Corrupt("train world tag")),
        };

        let mut harness = TrainHarness {
            cfg,
            rng: SimRng::from_state(state),
            next_episode,
            agent_blob,
            eval_digest,
            records,
            pending: None,
        };
        if let Some(world) = world {
            // the stored RNG state is pre-draw: regenerate the in-flight
            // episode's scenario, then overlay the world snapshot
            let scen = harness.scenario();
            let resumed = EdgeCloudSystem::restore(scen, &world)?;
            harness.pending = Some(PendingEpisode { resumed });
        }
        Ok(harness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::BePolicy;

    fn small_base() -> TangoConfig {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 2;
        cfg.topology.clusters = 2;
        cfg.workload.lc_rps = 20.0;
        cfg.workload.be_rps = 8.0;
        cfg.be_policy = BePolicy::Td3;
        cfg
    }

    fn small_train() -> TrainConfig {
        TrainConfig {
            episodes: 3,
            episode_duration: SimTime::from_secs(1),
            ..TrainConfig::new(small_base())
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = TrainHarness::new(small_train()).run().unwrap();
        let b = TrainHarness::new(small_train()).run().unwrap();
        assert_eq!(a.eval_digest, b.eval_digest);
        assert_eq!(a.agent_blob, b.agent_blob);
        assert_eq!(a.records, b.records);
        assert_eq!(a.episodes, 3);
        assert!(!a.agent_blob.is_empty());
    }

    #[test]
    fn scenarios_differ_across_episodes() {
        let out = TrainHarness::new(small_train()).run().unwrap();
        // jittered traffic ⇒ distinct per-episode digests
        assert_ne!(out.records[0].digest, out.records[1].digest);
    }

    #[test]
    fn boundary_resume_is_bit_identical() {
        let full = TrainHarness::new(small_train()).run().unwrap();
        // run one episode, checkpoint, resume, run the rest
        let mut h = TrainHarness::new(small_train());
        h.step(&mut |_| {}).unwrap();
        let cp = h.checkpoint();
        let mut resumed = TrainHarness::resume(small_train(), &cp).unwrap();
        assert_eq!(resumed.episodes_completed(), 1);
        let out = resumed.run().unwrap();
        assert_eq!(out.eval_digest, full.eval_digest);
        assert_eq!(out.agent_blob, full.agent_blob);
    }

    #[test]
    fn mid_episode_resume_is_bit_identical() {
        let mut cfg = small_train();
        cfg.mid_episode = Some(CheckpointPolicy {
            every_n_ticks: 4,
            keep_last_k: 0,
        });
        let full = TrainHarness::new(cfg.clone()).run().unwrap();
        // capture a checkpoint from inside episode 1
        let mut h = TrainHarness::new(cfg.clone());
        let mut seen: Vec<Vec<u8>> = Vec::new();
        h.step(&mut |_| {}).unwrap();
        h.step(&mut |cp| seen.push(cp.to_vec())).unwrap();
        assert!(seen.len() >= 2, "expected mid-episode checkpoints");
        // second-to-last world checkpoint: genuinely mid-episode
        let mid = &seen[seen.len() - 2];
        let mut resumed = TrainHarness::resume(cfg, mid).unwrap();
        assert_eq!(
            resumed.episodes_completed(),
            1,
            "world checkpoint is pre-fold"
        );
        let out = resumed.run().unwrap();
        assert_eq!(out.eval_digest, full.eval_digest);
        assert_eq!(out.agent_blob, full.agent_blob);
    }

    #[test]
    fn wrong_config_and_corruption_are_rejected() {
        let mut h = TrainHarness::new(small_train());
        h.step(&mut |_| {}).unwrap();
        let cp = h.checkpoint();
        let mut other = small_train();
        other.seed ^= 1;
        assert!(matches!(
            TrainHarness::resume(other, &cp),
            Err(SnapError::ConfigMismatch { .. })
        ));
        assert!(TrainHarness::resume(small_train(), &cp[..cp.len() - 2]).is_err());
        let mut flipped = cp.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        assert!(TrainHarness::resume(small_train(), &flipped).is_err());
    }
}

//! The edge-cloud network model.
//!
//! Clusters are placed on a geographic map; nodes inside a cluster talk
//! over a LAN (sub-millisecond), clusters talk over a WAN whose latency is
//! derived from great-circle distance — the paper's production measurements
//! report round-trips to the central cluster exceeding 97 ms, and restrict
//! LC dispatch to clusters within 500 km (§5.2 footnote 4). The paper shapes
//! its physical testbed with Linux `tc`; this crate plays the same role for
//! the simulation.
//!
//! Transmission time of a request = one-way propagation latency + payload
//! serialization over the link's bandwidth.

pub mod geo;
pub mod topology;

pub use geo::GeoPoint;
pub use topology::{LinkClass, NetworkTopology, TopologyConfig};

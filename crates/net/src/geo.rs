//! Geographic coordinates and great-circle distance.

use std::f64::consts::PI;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, [-90, 90].
    pub lat_deg: f64,
    /// Longitude in degrees, [-180, 180].
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Construct a point; inputs are clamped/wrapped to valid ranges.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Great-circle distance to another point, in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let to_rad = |d: f64| d * PI / 180.0;
        let (lat1, lon1) = (to_rad(self.lat_deg), to_rad(self.lon_deg));
        let (lat2, lon2) = (to_rad(other.lat_deg), to_rad(other.lon_deg));
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(39.1, 117.2); // Tianjin
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn known_distance_tianjin_beijing() {
        // Tianjin (39.12, 117.20) to Beijing (39.90, 116.40): ~110-115 km
        let tj = GeoPoint::new(39.12, 117.20);
        let bj = GeoPoint::new(39.90, 116.40);
        let d = tj.distance_km(&bj);
        assert!((100.0..130.0).contains(&d), "d = {d}");
    }

    #[test]
    fn known_distance_shanghai_shenzhen() {
        // Shanghai (31.23, 121.47) to Shenzhen (22.54, 114.06): ~1,200 km
        let sh = GeoPoint::new(31.23, 121.47);
        let sz = GeoPoint::new(22.54, 114.06);
        let d = sh.distance_km(&sz);
        assert!((1_100.0..1_300.0).contains(&d), "d = {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-30.0, 150.0);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn coordinates_clamp_and_wrap() {
        let p = GeoPoint::new(95.0, 190.0);
        assert_eq!(p.lat_deg, 90.0);
        assert_eq!(p.lon_deg, -170.0);
        let q = GeoPoint::new(-95.0, -190.0);
        assert_eq!(q.lat_deg, -90.0);
        assert_eq!(q.lon_deg, 170.0);
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "d = {d}, half = {half}");
    }
}

//! Cluster-level network topology.
//!
//! Latency model: one-way latency between two clusters is
//! `wan_base + distance_km * wan_per_km` (route inflation folded into the
//! per-km factor); within a cluster it is the LAN latency. With the default
//! parameters a ~2,000 km pair sees an RTT just under 100 ms, matching the
//! ">97 ms to the central cluster" production measurement in §5.2.

use crate::geo::GeoPoint;
use tango_simcore::SimRng;
use tango_types::{ClusterId, SimTime};

/// Whether a pair of endpoints is on the same LAN or across the WAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Same cluster: sub-millisecond, high bandwidth.
    Lan,
    /// Different clusters: geographic latency, constrained bandwidth.
    Wan,
}

/// Parameters of the network model.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of clusters to place.
    pub clusters: usize,
    /// Bounding box: (min_lat, max_lat).
    pub lat_range: (f64, f64),
    /// Bounding box: (min_lon, max_lon).
    pub lon_range: (f64, f64),
    /// One-way LAN latency.
    pub lan_latency: SimTime,
    /// LAN bandwidth in Mbps.
    pub lan_bandwidth_mbps: u64,
    /// One-way WAN base latency (switching/serialization floor).
    pub wan_base: SimTime,
    /// One-way WAN latency per kilometre, in microseconds.
    pub wan_us_per_km: f64,
    /// WAN bandwidth range (min, max) in Mbps; sampled per link.
    pub wan_bandwidth_mbps: (u64, u64),
    /// RNG seed for placement and bandwidth sampling.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        // Defaults approximate a province-to-country-scale Chinese edge
        // deployment like PPIO's: clusters spread over ~2,500 km.
        TopologyConfig {
            clusters: 8,
            lat_range: (22.0, 41.0),
            lon_range: (108.0, 122.0),
            lan_latency: SimTime::from_micros(300),
            lan_bandwidth_mbps: 10_000,
            wan_base: SimTime::from_millis(3),
            wan_us_per_km: 20.0,
            wan_bandwidth_mbps: (200, 1_000),
            seed: 7,
        }
    }
}

/// The placed topology: cluster coordinates plus derived latency/bandwidth
/// matrices.
#[derive(Debug, Clone)]
pub struct NetworkTopology {
    positions: Vec<GeoPoint>,
    /// one_way[i][j] latency.
    one_way: Vec<Vec<SimTime>>,
    /// bandwidth[i][j] in Mbps.
    bandwidth: Vec<Vec<u64>>,
    lan_latency: SimTime,
    /// Fault overlay: per-pair (latency multiplier, bandwidth divisor),
    /// keyed by the ordered pair. Empty on the no-fault hot path.
    degraded: Vec<((u32, u32), (f64, f64))>,
    /// Active partition: side flag per cluster; `None` when healed.
    partition: Option<Vec<bool>>,
}

impl NetworkTopology {
    /// Place clusters uniformly in the configured bounding box and derive
    /// the latency/bandwidth matrices. Deterministic per seed.
    pub fn generate(cfg: &TopologyConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let n = cfg.clusters.max(1);
        let positions: Vec<GeoPoint> = (0..n)
            .map(|_| {
                GeoPoint::new(
                    rng.range_f64(cfg.lat_range.0, cfg.lat_range.1),
                    rng.range_f64(cfg.lon_range.0, cfg.lon_range.1),
                )
            })
            .collect();

        let mut one_way = vec![vec![SimTime::ZERO; n]; n];
        let mut bandwidth = vec![vec![cfg.lan_bandwidth_mbps; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = positions[i].distance_km(&positions[j]);
                let lat =
                    cfg.wan_base + SimTime::from_micros((dist * cfg.wan_us_per_km).round() as u64);
                let bw = rng.range_u64(cfg.wan_bandwidth_mbps.0, cfg.wan_bandwidth_mbps.1);
                one_way[i][j] = lat;
                one_way[j][i] = lat;
                bandwidth[i][j] = bw;
                bandwidth[j][i] = bw;
            }
        }
        NetworkTopology {
            positions,
            one_way,
            bandwidth,
            lan_latency: cfg.lan_latency,
            degraded: Vec::new(),
            partition: None,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the topology has no clusters (never happens via
    /// [`NetworkTopology::generate`], which clamps to one).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Geographic position of a cluster.
    pub fn position(&self, c: ClusterId) -> GeoPoint {
        self.positions[c.index()]
    }

    /// LAN or WAN for a pair.
    pub fn link_class(&self, a: ClusterId, b: ClusterId) -> LinkClass {
        if a == b {
            LinkClass::Lan
        } else {
            LinkClass::Wan
        }
    }

    fn ordered(a: ClusterId, b: ClusterId) -> (u32, u32) {
        let (x, y) = (a.raw(), b.raw());
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    fn degradation(&self, a: ClusterId, b: ClusterId) -> Option<(f64, f64)> {
        if self.degraded.is_empty() {
            return None;
        }
        let key = Self::ordered(a, b);
        self.degraded
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, f)| *f)
    }

    /// One-way latency between two clusters (LAN latency within a
    /// cluster), including any active link degradation.
    pub fn one_way_latency(&self, a: ClusterId, b: ClusterId) -> SimTime {
        let base = if a == b {
            self.lan_latency
        } else {
            self.one_way[a.index()][b.index()]
        };
        match self.degradation(a, b) {
            Some((lat, _)) => SimTime::from_micros((base.as_micros() as f64 * lat).round() as u64),
            None => base,
        }
    }

    /// Round-trip time between two clusters.
    pub fn rtt(&self, a: ClusterId, b: ClusterId) -> SimTime {
        let one = self.one_way_latency(a, b);
        one + one
    }

    /// Link bandwidth between two clusters, Mbps, including any active
    /// link degradation.
    pub fn bandwidth_mbps(&self, a: ClusterId, b: ClusterId) -> u64 {
        let base = if a == b {
            self.bandwidth[a.index()][a.index()]
        } else {
            self.bandwidth[a.index()][b.index()]
        };
        match self.degradation(a, b) {
            Some((_, bw)) if bw > 1.0 => ((base as f64 / bw) as u64).max(1),
            _ => base,
        }
    }

    /// One-way transfer time for a payload: propagation + serialization.
    pub fn transfer_time(&self, a: ClusterId, b: ClusterId, payload_kib: u64) -> SimTime {
        let prop = self.one_way_latency(a, b);
        let bw = self.bandwidth_mbps(a, b).max(1);
        // bits = KiB * 1024 * 8; time_us = bits / (Mbps * 1e6) * 1e6 = bits / Mbps
        let ser_us = payload_kib.saturating_mul(8_192) / bw;
        prop + SimTime::from_micros(ser_us)
    }

    /// Degrade the `a`–`b` link: one-way latency is multiplied by
    /// `latency_factor`, bandwidth divided by `bandwidth_factor`. A second
    /// degradation of the same pair replaces the first (factors do not
    /// stack — faults are states, not deltas).
    pub fn degrade_link(
        &mut self,
        a: ClusterId,
        b: ClusterId,
        latency_factor: f64,
        bandwidth_factor: f64,
    ) {
        let key = Self::ordered(a, b);
        let factors = (latency_factor.max(1.0), bandwidth_factor.max(1.0));
        match self.degraded.iter_mut().find(|(k, _)| *k == key) {
            Some((_, f)) => *f = factors,
            None => self.degraded.push((key, factors)),
        }
    }

    /// Remove any degradation on the `a`–`b` link.
    pub fn restore_link(&mut self, a: ClusterId, b: ClusterId) {
        let key = Self::ordered(a, b);
        self.degraded.retain(|(k, _)| *k != key);
    }

    /// Partition the WAN: clusters in `side` can no longer reach the
    /// rest (traffic within either side, and within a cluster, still
    /// flows). A new partition replaces the previous one.
    pub fn set_partition(&mut self, side: &[ClusterId]) {
        let mut flags = vec![false; self.len()];
        for c in side {
            if c.index() < flags.len() {
                flags[c.index()] = true;
            }
        }
        self.partition = Some(flags);
    }

    /// Heal the active partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Whether traffic can flow between two clusters under the active
    /// partition (always true within a cluster).
    pub fn is_reachable(&self, a: ClusterId, b: ClusterId) -> bool {
        if a == b {
            return true;
        }
        match &self.partition {
            Some(flags) => flags[a.index()] == flags[b.index()],
            None => true,
        }
    }

    /// Encode the fault overlays (degradations + partition) for a
    /// checkpoint. The placed topology itself — positions and base
    /// latency/bandwidth matrices — is deterministic per seed and is
    /// rebuilt by [`NetworkTopology::generate`] on restore, so only the
    /// overlays are state.
    pub fn snapshot_dynamic(&self, w: &mut tango_snap::SnapWriter) {
        w.put_u64(self.degraded.len() as u64);
        for &((a, b), (lat, bw)) in &self.degraded {
            w.put_u32(a);
            w.put_u32(b);
            w.put_f64(lat);
            w.put_f64(bw);
        }
        match &self.partition {
            None => w.put_u8(0),
            Some(flags) => {
                w.put_u8(1);
                w.put_u64(flags.len() as u64);
                for &f in flags {
                    w.put_bool(f);
                }
            }
        }
    }

    /// Restore the fault overlays captured by
    /// [`NetworkTopology::snapshot_dynamic`] onto a freshly generated
    /// topology of the same size.
    pub fn restore_dynamic(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::SnapError;
        let n_deg = r.u64()? as usize;
        if n_deg > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut degraded = Vec::with_capacity(n_deg);
        for _ in 0..n_deg {
            let a = r.u32()?;
            let b = r.u32()?;
            let lat = r.f64()?;
            let bw = r.f64()?;
            degraded.push(((a, b), (lat, bw)));
        }
        let partition = match r.u8()? {
            0 => None,
            1 => {
                let len = r.u64()? as usize;
                if len != self.len() {
                    return Err(SnapError::Corrupt("partition mask length"));
                }
                let mut flags = Vec::with_capacity(len);
                for _ in 0..len {
                    flags.push(r.bool()?);
                }
                Some(flags)
            }
            _ => return Err(SnapError::Corrupt("partition tag")),
        };
        self.degraded = degraded;
        self.partition = partition;
        Ok(())
    }

    /// Geographic distance between clusters, km.
    pub fn distance_km(&self, a: ClusterId, b: ClusterId) -> f64 {
        self.positions[a.index()].distance_km(&self.positions[b.index()])
    }

    /// Clusters within `radius_km` of `from` (excluding `from` itself) —
    /// the geo-nearby candidate set for LC dispatch (§5.2 footnote 4:
    /// 500 km in the production dataset).
    pub fn clusters_within(&self, from: ClusterId, radius_km: f64) -> Vec<ClusterId> {
        (0..self.len())
            .map(|i| ClusterId(i as u32))
            .filter(|&c| c != from && self.distance_km(from, c) <= radius_km)
            .collect()
    }

    /// Attach an elastic cloud tier as one extra cluster appended after
    /// the edge clusters. The cloud sits at the geographic centroid of
    /// the existing placement; one-way latency to each edge cluster is
    /// `one_way_base + distance_km * us_per_km` (distance-honest: nearer
    /// edges pay less), and every cloud link shares one uplink bandwidth.
    /// No RNG is drawn, so attaching the cloud never perturbs the edge
    /// layout generated from the same seed. Returns the cloud's id.
    ///
    /// Call before any fault overlay is applied; the degradation and
    /// partition machinery then covers cloud links like any other.
    pub fn attach_cloud(
        &mut self,
        one_way_base: SimTime,
        us_per_km: f64,
        bandwidth_mbps: u64,
    ) -> ClusterId {
        let n = self.len();
        let centroid = GeoPoint::new(
            self.positions.iter().map(|p| p.lat_deg).sum::<f64>() / n as f64,
            self.positions.iter().map(|p| p.lon_deg).sum::<f64>() / n as f64,
        );
        self.positions.push(centroid);
        for i in 0..n {
            let dist = self.positions[i].distance_km(&centroid);
            let lat = one_way_base + SimTime::from_micros((dist * us_per_km).round() as u64);
            self.one_way[i].push(lat);
            self.bandwidth[i].push(bandwidth_mbps.max(1));
        }
        let mut cloud_lat: Vec<SimTime> = (0..n).map(|i| self.one_way[i][n]).collect();
        cloud_lat.push(SimTime::ZERO);
        self.one_way.push(cloud_lat);
        let mut cloud_bw = vec![bandwidth_mbps.max(1); n];
        cloud_bw.push(self.bandwidth[0][0]);
        self.bandwidth.push(cloud_bw);
        ClusterId(n as u32)
    }

    /// The most geographically central cluster: the one minimizing the sum
    /// of distances to all others. Tango places the BE traffic dispatcher
    /// there (§3 footnote 2).
    pub fn most_central(&self) -> ClusterId {
        let n = self.len();
        let mut best = 0usize;
        let mut best_sum = f64::INFINITY;
        for i in 0..n {
            let sum: f64 = (0..n)
                .map(|j| self.positions[i].distance_km(&self.positions[j]))
                .sum();
            if sum < best_sum {
                best_sum = sum;
                best = i;
            }
        }
        ClusterId(best as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: usize, seed: u64) -> NetworkTopology {
        NetworkTopology::generate(&TopologyConfig {
            clusters: n,
            seed,
            ..TopologyConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = topo(10, 42);
        let b = topo(10, 42);
        for i in 0..10 {
            for j in 0..10 {
                let (ci, cj) = (ClusterId(i), ClusterId(j));
                assert_eq!(a.one_way_latency(ci, cj), b.one_way_latency(ci, cj));
                assert_eq!(a.bandwidth_mbps(ci, cj), b.bandwidth_mbps(ci, cj));
            }
        }
    }

    #[test]
    fn latency_is_symmetric_and_lan_is_fast() {
        let t = topo(6, 1);
        for i in 0..6u32 {
            for j in 0..6u32 {
                assert_eq!(
                    t.one_way_latency(ClusterId(i), ClusterId(j)),
                    t.one_way_latency(ClusterId(j), ClusterId(i))
                );
            }
            assert_eq!(
                t.one_way_latency(ClusterId(i), ClusterId(i)),
                SimTime::from_micros(300)
            );
            assert_eq!(t.link_class(ClusterId(i), ClusterId(i)), LinkClass::Lan);
        }
        assert_eq!(t.link_class(ClusterId(0), ClusterId(1)), LinkClass::Wan);
    }

    #[test]
    fn wan_rtt_scales_with_distance_and_can_approach_paper_measurement() {
        // Two hand-placed far clusters ~2300km apart should see RTT near
        // the paper's 97ms figure with default parameters.
        let far = GeoPoint::new(22.5, 114.0); // Shenzhen-ish
        let near = GeoPoint::new(41.0, 122.0); // Liaoning-ish
        let dist = far.distance_km(&near);
        assert!(dist > 2_000.0, "dist = {dist}");
        let cfg = TopologyConfig::default();
        let one_way_ms = cfg.wan_base.as_millis_f64() + dist * cfg.wan_us_per_km / 1_000.0;
        let rtt_ms = 2.0 * one_way_ms;
        assert!((80.0..130.0).contains(&rtt_ms), "rtt = {rtt_ms}ms");
    }

    #[test]
    fn rtt_is_twice_one_way() {
        let t = topo(4, 3);
        let (a, b) = (ClusterId(0), ClusterId(2));
        assert_eq!(
            t.rtt(a, b).as_micros(),
            2 * t.one_way_latency(a, b).as_micros()
        );
    }

    #[test]
    fn transfer_time_adds_serialization() {
        let t = topo(3, 5);
        let (a, b) = (ClusterId(0), ClusterId(1));
        let prop_only = t.transfer_time(a, b, 0);
        assert_eq!(prop_only, t.one_way_latency(a, b));
        let with_payload = t.transfer_time(a, b, 1_024);
        assert!(with_payload > prop_only);
        // 1 MiB over bw Mbps: serialization = 1024*8192/bw µs
        let expect_us = 1_024u64 * 8_192 / t.bandwidth_mbps(a, b);
        assert_eq!(with_payload.as_micros() - prop_only.as_micros(), expect_us);
    }

    #[test]
    fn clusters_within_excludes_self_and_respects_radius() {
        let t = topo(12, 9);
        let from = ClusterId(0);
        let near = t.clusters_within(from, 500.0);
        assert!(!near.contains(&from));
        for c in &near {
            assert!(t.distance_km(from, *c) <= 500.0);
        }
        let all = t.clusters_within(from, 1.0e9);
        assert_eq!(all.len(), 11);
    }

    #[test]
    fn most_central_minimizes_distance_sum() {
        let t = topo(9, 11);
        let central = t.most_central();
        let sum = |c: ClusterId| -> f64 { (0..9).map(|j| t.distance_km(c, ClusterId(j))).sum() };
        let central_sum = sum(central);
        for i in 0..9u32 {
            assert!(central_sum <= sum(ClusterId(i)) + 1e-9);
        }
    }

    #[test]
    fn degraded_link_inflates_latency_and_deflates_bandwidth() {
        let mut t = topo(4, 8);
        let (a, b) = (ClusterId(0), ClusterId(3));
        let base_lat = t.one_way_latency(a, b);
        let base_bw = t.bandwidth_mbps(a, b);
        let base_xfer = t.transfer_time(a, b, 1_024);
        t.degrade_link(a, b, 4.0, 2.0);
        assert_eq!(
            t.one_way_latency(a, b).as_micros(),
            (base_lat.as_micros() as f64 * 4.0).round() as u64
        );
        assert_eq!(t.bandwidth_mbps(a, b), base_bw / 2);
        // symmetric, and transfer time inflates end to end
        assert_eq!(t.one_way_latency(b, a), t.one_way_latency(a, b));
        assert!(t.transfer_time(a, b, 1_024) > base_xfer);
        // other pairs untouched
        assert_eq!(
            t.one_way_latency(ClusterId(1), ClusterId(2)),
            topo(4, 8).one_way_latency(ClusterId(1), ClusterId(2))
        );
        // re-degrading replaces, restoring returns to baseline exactly
        t.degrade_link(b, a, 2.0, 1.0);
        assert_eq!(
            t.one_way_latency(a, b).as_micros(),
            (base_lat.as_micros() as f64 * 2.0).round() as u64
        );
        t.restore_link(a, b);
        assert_eq!(t.one_way_latency(a, b), base_lat);
        assert_eq!(t.bandwidth_mbps(a, b), base_bw);
    }

    #[test]
    fn partition_blocks_cross_side_reachability_only() {
        let mut t = topo(5, 13);
        assert!(t.is_reachable(ClusterId(0), ClusterId(4)));
        t.set_partition(&[ClusterId(0), ClusterId(1)]);
        assert!(!t.is_reachable(ClusterId(0), ClusterId(4)));
        assert!(!t.is_reachable(ClusterId(2), ClusterId(1)));
        assert!(t.is_reachable(ClusterId(0), ClusterId(1)));
        assert!(t.is_reachable(ClusterId(2), ClusterId(3)));
        // within a cluster always reachable
        assert!(t.is_reachable(ClusterId(0), ClusterId(0)));
        t.heal_partition();
        assert!(t.is_reachable(ClusterId(0), ClusterId(4)));
    }

    #[test]
    fn attach_cloud_appends_without_touching_edge_links() {
        let base = topo(6, 21);
        let mut t = topo(6, 21);
        let cloud = t.attach_cloud(SimTime::from_millis(40), 20.0, 5_000);
        assert_eq!(cloud, ClusterId(6));
        assert_eq!(t.len(), 7);
        // edge-to-edge links are byte-identical to the no-cloud topology
        for i in 0..6u32 {
            for j in 0..6u32 {
                let (a, b) = (ClusterId(i), ClusterId(j));
                assert_eq!(t.one_way_latency(a, b), base.one_way_latency(a, b));
                assert_eq!(t.bandwidth_mbps(a, b), base.bandwidth_mbps(a, b));
            }
        }
        // cloud links: symmetric, distance-honest above the base RTT floor
        for i in 0..6u32 {
            let e = ClusterId(i);
            assert_eq!(t.one_way_latency(e, cloud), t.one_way_latency(cloud, e));
            assert!(t.one_way_latency(e, cloud) >= SimTime::from_millis(40));
            assert_eq!(t.bandwidth_mbps(e, cloud), 5_000);
        }
        // the centroid cloud sits inside the bounding box, so the
        // farthest edge pays more than the nearest
        let lats: Vec<u64> = (0..6u32)
            .map(|i| t.one_way_latency(ClusterId(i), cloud).as_micros())
            .collect();
        assert!(lats.iter().max() > lats.iter().min());
        // degradation and partitions cover cloud links like any other
        t.degrade_link(ClusterId(0), cloud, 2.0, 2.0);
        assert_eq!(
            t.one_way_latency(ClusterId(0), cloud).as_micros(),
            (base_cloud_lat(&t, 0) * 2.0).round() as u64
        );
        t.restore_link(ClusterId(0), cloud);
        t.set_partition(&[ClusterId(0)]);
        assert!(!t.is_reachable(ClusterId(0), cloud));
        assert!(t.is_reachable(ClusterId(1), cloud));
    }

    /// Undegraded one-way latency of edge `i` to the cloud, in µs.
    fn base_cloud_lat(t: &NetworkTopology, i: u32) -> f64 {
        let mut clean = t.clone();
        clean.restore_link(ClusterId(i), ClusterId(t.len() as u32 - 1));
        clean
            .one_way_latency(ClusterId(i), ClusterId(t.len() as u32 - 1))
            .as_micros() as f64
    }

    #[test]
    fn single_cluster_topology_is_degenerate_but_valid() {
        let t = topo(1, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.most_central(), ClusterId(0));
        assert!(t.clusters_within(ClusterId(0), 1000.0).is_empty());
    }
}

//! The diurnal load shape of Fig. 1.
//!
//! The paper's production measurement shows edge-cloud load bottoming out
//! in the small hours and peaking in the afternoon and again in the
//! evening. We model the multiplier as a mixture of two Gaussian bumps
//! (afternoon ~15:00, evening ~21:00) over a night-time floor, normalized
//! so the peak multiplier is 1.0.

/// A 24-hour load-rate profile.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    floor: f64,
    afternoon_peak_h: f64,
    evening_peak_h: f64,
    afternoon_weight: f64,
    evening_weight: f64,
    width_h: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile {
            floor: 0.30,
            afternoon_peak_h: 15.0,
            evening_peak_h: 21.0,
            afternoon_weight: 1.0,
            evening_weight: 0.9,
            width_h: 3.0,
        }
    }
}

impl DiurnalProfile {
    /// A flat profile (multiplier 1.0 always) — used when an experiment
    /// wants pattern-driven rates only.
    pub fn flat() -> Self {
        DiurnalProfile {
            floor: 1.0,
            afternoon_weight: 0.0,
            evening_weight: 0.0,
            ..DiurnalProfile::default()
        }
    }

    /// Load multiplier in (0, 1] at an hour-of-day (fractional, wraps
    /// modulo 24).
    pub fn multiplier(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        // circular distance in hours
        let dist = |peak: f64| -> f64 {
            let d = (h - peak).abs();
            d.min(24.0 - d)
        };
        let bump = |peak: f64, w: f64| -> f64 {
            let d = dist(peak);
            w * (-d * d / (2.0 * self.width_h * self.width_h)).exp()
        };
        let raw = self.floor
            + (1.0 - self.floor)
                * (bump(self.afternoon_peak_h, self.afternoon_weight)
                    + bump(self.evening_peak_h, self.evening_weight))
                .min(1.0);
        raw.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_in_the_afternoon_and_trough_at_night() {
        let p = DiurnalProfile::default();
        let at = |h: f64| p.multiplier(h);
        assert!(at(15.0) > 0.95);
        assert!(at(4.0) < 0.45);
        assert!(at(15.0) > at(4.0));
        // evening secondary peak beats late night
        assert!(at(21.0) > at(1.0));
    }

    #[test]
    fn multiplier_bounded_in_unit_interval() {
        let p = DiurnalProfile::default();
        for i in 0..240 {
            let m = p.multiplier(i as f64 / 10.0);
            assert!(m > 0.0 && m <= 1.0, "m({}) = {m}", i as f64 / 10.0);
        }
    }

    #[test]
    fn wraps_modulo_24() {
        let p = DiurnalProfile::default();
        assert!((p.multiplier(15.0) - p.multiplier(39.0)).abs() < 1e-12);
        assert!((p.multiplier(-9.0) - p.multiplier(15.0)).abs() < 1e-12);
    }

    #[test]
    fn flat_profile_is_constant_one() {
        let p = DiurnalProfile::flat();
        for h in [0.0, 6.5, 12.0, 23.9] {
            assert!((p.multiplier(h) - 1.0).abs() < 1e-12);
        }
    }
}

//! The three request patterns of §7.1.
//!
//! * **P1** — LC requests sent *periodically* (a square-ish wave of bursts),
//!   BE requests sent *randomly* (constant-rate Poisson);
//! * **P2** — BE periodic, LC random;
//! * **P3** — both random.
//!
//! A pattern is a pair of rate functions (requests/second as a function of
//! time) for the two service classes; the trace generator thins a Poisson
//! process against them.

use tango_types::{ServiceClass, SimTime};

/// Which of the paper's three patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Periodic LC, random BE.
    P1,
    /// Periodic BE, random LC.
    P2,
    /// Both random.
    P3,
}

impl PatternKind {
    /// All three, in paper order.
    pub const ALL: [PatternKind; 3] = [PatternKind::P1, PatternKind::P2, PatternKind::P3];
}

/// A concrete pattern: per-class arrival rates over time.
#[derive(Debug, Clone)]
pub struct Pattern {
    kind: PatternKind,
    /// Mean rate for each class, requests/second.
    lc_mean_rps: f64,
    be_mean_rps: f64,
    /// Period of the square wave for the periodic class.
    period: SimTime,
    /// Fraction of the period spent in the high phase.
    duty: f64,
    /// high/low rate ratio of the periodic class.
    swing: f64,
}

impl Pattern {
    /// Build a pattern with the given mean rates. The periodic class
    /// oscillates between `swing`× and (2−`swing`-adjusted) low phase so
    /// its *mean* stays at the requested rate.
    pub fn new(kind: PatternKind, lc_mean_rps: f64, be_mean_rps: f64) -> Self {
        Pattern {
            kind,
            lc_mean_rps,
            be_mean_rps,
            period: SimTime::from_secs(20),
            duty: 0.5,
            swing: 1.8,
        }
    }

    /// Override the oscillation period (default 20 s).
    pub fn with_period(mut self, period: SimTime) -> Self {
        self.period = period;
        self
    }

    /// The pattern kind.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// Mean rate of a class.
    pub fn mean_rps(&self, class: ServiceClass) -> f64 {
        match class {
            ServiceClass::Lc => self.lc_mean_rps,
            ServiceClass::Be => self.be_mean_rps,
        }
    }

    fn periodic_rate(&self, mean: f64, at: SimTime) -> f64 {
        // square wave with mean preserved:
        // high phase rate = swing*mean, low phase chosen so duty-weighted
        // average equals mean.
        let period_us = self.period.as_micros().max(1);
        let phase = (at.as_micros() % period_us) as f64 / period_us as f64;
        let high = self.swing * mean;
        let low = ((1.0 - self.duty * self.swing) / (1.0 - self.duty)).max(0.0) * mean;
        if phase < self.duty {
            high
        } else {
            low
        }
    }

    /// Instantaneous arrival rate (req/s) for `class` at time `at`.
    pub fn rate(&self, class: ServiceClass, at: SimTime) -> f64 {
        let mean = self.mean_rps(class);
        let periodic = matches!(
            (self.kind, class),
            (PatternKind::P1, ServiceClass::Lc) | (PatternKind::P2, ServiceClass::Be)
        );
        if periodic {
            self.periodic_rate(mean, at)
        } else {
            mean
        }
    }

    /// The maximum instantaneous rate either phase can reach, used as the
    /// thinning envelope by the generator.
    pub fn peak_rate(&self, class: ServiceClass) -> f64 {
        let mean = self.mean_rps(class);
        match (self.kind, class) {
            (PatternKind::P1, ServiceClass::Lc) | (PatternKind::P2, ServiceClass::Be) => {
                self.swing * mean
            }
            _ => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_oscillates_lc_but_not_be() {
        let p = Pattern::new(PatternKind::P1, 10.0, 4.0);
        let t_high = SimTime::from_secs(1); // phase 0.05 < duty
        let t_low = SimTime::from_secs(15); // phase 0.75 >= duty
        assert!(p.rate(ServiceClass::Lc, t_high) > p.rate(ServiceClass::Lc, t_low));
        assert_eq!(p.rate(ServiceClass::Be, t_high), 4.0);
        assert_eq!(p.rate(ServiceClass::Be, t_low), 4.0);
    }

    #[test]
    fn p2_oscillates_be_but_not_lc() {
        let p = Pattern::new(PatternKind::P2, 10.0, 4.0);
        let t_high = SimTime::from_secs(1);
        let t_low = SimTime::from_secs(15);
        assert_eq!(p.rate(ServiceClass::Lc, t_high), 10.0);
        assert!(p.rate(ServiceClass::Be, t_high) > p.rate(ServiceClass::Be, t_low));
    }

    #[test]
    fn p3_is_flat_for_both() {
        let p = Pattern::new(PatternKind::P3, 10.0, 4.0);
        for s in [0, 3, 7, 13, 19] {
            let t = SimTime::from_secs(s);
            assert_eq!(p.rate(ServiceClass::Lc, t), 10.0);
            assert_eq!(p.rate(ServiceClass::Be, t), 4.0);
        }
    }

    #[test]
    fn periodic_mean_is_preserved() {
        let p = Pattern::new(PatternKind::P1, 10.0, 4.0);
        // integrate the LC rate over one period in 1ms steps
        let period = SimTime::from_secs(20);
        let steps = 20_000;
        let sum: f64 = (0..steps)
            .map(|i| {
                p.rate(
                    ServiceClass::Lc,
                    SimTime::from_micros(i * period.as_micros() / steps),
                )
            })
            .sum();
        let mean = sum / steps as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn peak_rate_bounds_instantaneous_rate() {
        for kind in PatternKind::ALL {
            let p = Pattern::new(kind, 10.0, 4.0);
            for class in [ServiceClass::Lc, ServiceClass::Be] {
                let peak = p.peak_rate(class);
                for s in 0..40 {
                    let r = p.rate(class, SimTime::from_millis(s * 500));
                    assert!(r <= peak + 1e-9, "{kind:?}/{class}: {r} > {peak}");
                }
            }
        }
    }

    #[test]
    fn rates_are_never_negative() {
        for kind in PatternKind::ALL {
            let p = Pattern::new(kind, 5.0, 5.0);
            for s in 0..60 {
                for class in [ServiceClass::Lc, ServiceClass::Be] {
                    assert!(p.rate(class, SimTime::from_millis(s * 333)) >= 0.0);
                }
            }
        }
    }
}

//! PARTIES-style QoS target calibration (§6.2).
//!
//! The paper determines each service's expected resource allocation and QoS
//! target "based on network transfer latency and service pressure
//! measurement, leveraging methods mentioned in PARTIES". We reproduce the
//! procedure against the simulator's processing model: press a service at
//! increasing concurrency under its minimum allocation, read the latency
//! curve, and set the target at `headroom × knee-latency + RTT allowance`.

use crate::catalog::ServiceCatalog;
use tango_types::{ServiceSpec, SimTime};

/// Latency of one request of `spec` when `concurrency` requests share an
/// allocation of `cpu_milli` — the simulator's processor-sharing model,
/// exposed here so the calibration measures exactly what execution will do.
pub fn pressure_latency(spec: &ServiceSpec, cpu_milli: u64, concurrency: u64) -> SimTime {
    if cpu_milli == 0 || concurrency == 0 {
        return SimTime::MAX;
    }
    let per_request = cpu_milli / concurrency.max(1);
    spec.compute_time(per_request.max(1))
}

/// Sweep concurrency 1..=max and return (concurrency, latency) points —
/// the pressure curve a PARTIES-style controller would measure.
pub fn pressure_curve(
    spec: &ServiceSpec,
    cpu_milli: u64,
    max_concurrency: u64,
) -> Vec<(u64, SimTime)> {
    (1..=max_concurrency.max(1))
        .map(|m| (m, pressure_latency(spec, cpu_milli, m)))
        .collect()
}

/// Re-derive every LC service's QoS target from pressure measurement:
/// `γ = headroom × latency(min_request, nominal_concurrency) + rtt_allowance`.
/// BE services keep their "no target" sentinel. Returns the calibrated
/// catalog.
pub fn calibrate_qos_targets(
    mut catalog: ServiceCatalog,
    headroom: f64,
    nominal_concurrency: u64,
    rtt_allowance: SimTime,
) -> ServiceCatalog {
    for spec in catalog.specs_mut() {
        if spec.class.is_lc() {
            let knee = pressure_latency(spec, spec.min_request.cpu_milli, nominal_concurrency);
            let target_ms =
                knee.as_millis_f64() * headroom.max(1.0) + rtt_allowance.as_millis_f64();
            spec.qos_target = SimTime::from_millis_f64(target_ms);
        }
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::ServiceId;

    #[test]
    fn pressure_latency_grows_linearly_with_concurrency() {
        let c = ServiceCatalog::standard();
        let s = c.get(ServiceId(0)); // cloud-render: 60ms base at 500m
        let l1 = pressure_latency(s, 500, 1);
        let l2 = pressure_latency(s, 500, 2);
        let l4 = pressure_latency(s, 500, 4);
        assert_eq!(l1, SimTime::from_millis(60));
        assert_eq!(l2, SimTime::from_millis(120));
        assert_eq!(l4, SimTime::from_millis(240));
    }

    #[test]
    fn degenerate_inputs_yield_never_finishing() {
        let c = ServiceCatalog::standard();
        let s = c.get(ServiceId(0));
        assert_eq!(pressure_latency(s, 0, 1), SimTime::MAX);
        assert_eq!(pressure_latency(s, 500, 0), SimTime::MAX);
    }

    #[test]
    fn pressure_curve_is_monotonic() {
        let c = ServiceCatalog::standard();
        let s = c.get(ServiceId(2));
        let curve = pressure_curve(s, s.min_request.cpu_milli, 8);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn calibration_sets_lc_targets_above_knee_and_keeps_be_unbounded() {
        let base = ServiceCatalog::standard();
        let rtt = SimTime::from_millis(20);
        let cal = calibrate_qos_targets(base.clone(), 1.5, 2, rtt);
        for (orig, new) in base.specs().iter().zip(cal.specs()) {
            if orig.class.is_lc() {
                let knee = pressure_latency(orig, orig.min_request.cpu_milli, 2);
                assert!(new.qos_target > knee);
                assert!(new.qos_target < SimTime::from_secs(10));
            } else {
                assert_eq!(new.qos_target, SimTime::MAX);
            }
        }
    }

    #[test]
    fn headroom_below_one_is_clamped() {
        let base = ServiceCatalog::standard();
        let a = calibrate_qos_targets(base.clone(), 0.1, 1, SimTime::ZERO);
        let b = calibrate_qos_targets(base, 1.0, 1, SimTime::ZERO);
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.qos_target, y.qos_target);
        }
    }
}

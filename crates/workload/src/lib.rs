//! Workload synthesis for the Tango experiments.
//!
//! The paper drives its dual-space testbed with the 2019 Google cluster
//! trace (§6.2): records with `<EventType, SCHEDULE>` and
//! `<CollectionType, JOB>` are bucketed into **ten service categories** by
//! the `LatencySensitivity` field, split between Latency-Critical and
//! Best-Effort, and replayed by a request generator. QoS targets are set by
//! PARTIES-style pressure measurement.
//!
//! We cannot ship the 8 GB proprietary trace, so this crate synthesizes a
//! statistically equivalent stream (see DESIGN.md): the same ten-category
//! catalog, heavy-tailed per-request demands, the diurnal load shape of
//! Fig. 1, the three §7.1 request patterns (P1/P2/P3), and a Google-like
//! bursty job-arrival process. Every generator is deterministic per seed.

pub mod calibration;
pub mod catalog;
pub mod diurnal;
pub mod patterns;
pub mod trace;
pub mod trace_io;

pub use calibration::calibrate_qos_targets;
pub use catalog::ServiceCatalog;
pub use diurnal::DiurnalProfile;
pub use patterns::{Pattern, PatternKind};
pub use trace::{TraceEvent, TraceGenerator, TraceSpec};
pub use trace_io::{load_trace, save_trace};

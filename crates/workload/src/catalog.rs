//! The ten-service catalog.
//!
//! §6.2: the `LatencySensitivity` field of the Google trace classifies
//! services into ten categories of LC and BE services; each application
//! runs in a single container. The concrete names below are the edge
//! workloads the paper's introduction and footnote 3 motivate (cloud
//! rendering, audio/video, AR/VR for LC; analytics and training for BE).
//!
//! QoS targets cluster around the ~300 ms the Fig. 1 measurement reports
//! for production LC services.

use tango_types::{Resources, ServiceClass, ServiceId, ServiceSpec, SimTime};

/// An immutable set of service specifications, indexed densely by
/// [`ServiceId`].
#[derive(Debug, Clone)]
pub struct ServiceCatalog {
    specs: Vec<ServiceSpec>,
}

impl ServiceCatalog {
    /// Build a catalog from raw specs. Ids are re-assigned densely in
    /// order.
    pub fn from_specs(mut specs: Vec<ServiceSpec>) -> Self {
        for (i, s) in specs.iter_mut().enumerate() {
            s.id = ServiceId(i as u16);
        }
        ServiceCatalog { specs }
    }

    /// The standard ten-service catalog (five LC + five BE).
    pub fn standard() -> Self {
        let lc = |name: &str, cpu: u64, mem: u64, work: u64, qos_ms: u64, kib: u64| ServiceSpec {
            id: ServiceId(0),
            name: name.into(),
            class: ServiceClass::Lc,
            min_request: Resources::new(cpu, mem, 20, 64),
            work_milli_ms: work,
            qos_target: SimTime::from_millis(qos_ms),
            payload_kib: kib,
        };
        let be = |name: &str, cpu: u64, mem: u64, work: u64, kib: u64| ServiceSpec {
            id: ServiceId(0),
            name: name.into(),
            class: ServiceClass::Be,
            min_request: Resources::new(cpu, mem, 10, 256),
            work_milli_ms: work,
            qos_target: SimTime::MAX,
            payload_kib: kib,
        };
        ServiceCatalog::from_specs(vec![
            // --- Latency-Critical (γ ≈ 200-400 ms, base service 40-120 ms) ---
            // name            cpu   mem  work[mcore·ms]  γ[ms] payload
            lc("cloud-render", 500, 512, 30_000, 250, 256), // 60ms base
            lc("ar-vr", 400, 256, 16_000, 200, 128),        // 40ms base
            lc("cloud-gaming", 600, 512, 48_000, 300, 256), // 80ms base
            lc("video-conference", 300, 256, 24_000, 350, 192), // 80ms base
            lc("ml-inference", 800, 1_024, 96_000, 400, 64), // 120ms base
            // --- Best-Effort (no γ; base service 0.5-4 s) ---
            be("data-analytics", 500, 1_024, 400_000, 512), // 0.8s base
            be("model-training", 1_000, 2_048, 4_000_000, 1_024), // 4s base
            be("video-transcode", 800, 512, 1_600_000, 2_048), // 2s base
            be("log-compaction", 300, 512, 300_000, 768),   // 1s base
            be("web-indexing", 400, 768, 600_000, 384),     // 1.5s base
        ])
    }

    /// Number of service types.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the catalog has no services.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Spec by id. Panics on out-of-range id (catalog ids are dense).
    pub fn get(&self, id: ServiceId) -> &ServiceSpec {
        &self.specs[id.index()]
    }

    /// All specs in id order.
    pub fn specs(&self) -> &[ServiceSpec] {
        &self.specs
    }

    /// Mutable access for calibration.
    pub fn specs_mut(&mut self) -> &mut [ServiceSpec] {
        &mut self.specs
    }

    /// Ids of all LC services.
    pub fn lc_ids(&self) -> Vec<ServiceId> {
        self.specs
            .iter()
            .filter(|s| s.class.is_lc())
            .map(|s| s.id)
            .collect()
    }

    /// Ids of all BE services.
    pub fn be_ids(&self) -> Vec<ServiceId> {
        self.specs
            .iter()
            .filter(|s| s.class.is_be())
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_ten_services_five_per_class() {
        let c = ServiceCatalog::standard();
        assert_eq!(c.len(), 10);
        assert_eq!(c.lc_ids().len(), 5);
        assert_eq!(c.be_ids().len(), 5);
    }

    #[test]
    fn ids_are_dense_and_in_order() {
        let c = ServiceCatalog::standard();
        for (i, s) in c.specs().iter().enumerate() {
            assert_eq!(s.id.index(), i);
            assert_eq!(c.get(s.id).name, s.name);
        }
    }

    #[test]
    fn lc_targets_are_near_the_papers_300ms_and_be_has_none() {
        let c = ServiceCatalog::standard();
        for id in c.lc_ids() {
            let t = c.get(id).qos_target;
            assert!(
                (SimTime::from_millis(150)..=SimTime::from_millis(500)).contains(&t),
                "{} target {t}",
                c.get(id).name
            );
        }
        for id in c.be_ids() {
            assert_eq!(c.get(id).qos_target, SimTime::MAX);
        }
    }

    #[test]
    fn lc_base_service_time_fits_within_target() {
        let c = ServiceCatalog::standard();
        for id in c.lc_ids() {
            let s = c.get(id);
            let base = s.base_service_time();
            assert!(
                base.as_millis_f64() < s.qos_target.as_millis_f64() * 0.5,
                "{}: base {} vs target {}",
                s.name,
                base,
                s.qos_target
            );
        }
    }

    #[test]
    fn be_services_are_heavier_than_lc() {
        let c = ServiceCatalog::standard();
        let avg = |ids: &[ServiceId]| -> f64 {
            ids.iter()
                .map(|&i| c.get(i).work_milli_ms as f64)
                .sum::<f64>()
                / ids.len() as f64
        };
        assert!(avg(&c.be_ids()) > 10.0 * avg(&c.lc_ids()));
    }

    #[test]
    fn from_specs_reassigns_ids() {
        let mut specs = ServiceCatalog::standard().specs().to_vec();
        specs.reverse();
        let c = ServiceCatalog::from_specs(specs);
        assert_eq!(c.get(ServiceId(0)).name, "web-indexing");
        assert_eq!(c.get(ServiceId(0)).id, ServiceId(0));
    }
}

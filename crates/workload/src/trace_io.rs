//! Trace persistence: save a synthesized trace to disk and replay it
//! later — the moral equivalent of the paper's recorded Google-trace
//! replay, and the hook for plugging a *real* trace (converted to the
//! same CSV) into the harness.
//!
//! Format: a header line, then one CSV row per request, sorted by arrival
//! time:
//!
//! ```text
//! at_us,service,class,origin,cpu_milli,memory_mib,bandwidth_mbps,disk_mib
//! 1042,3,LC,0,512,260,20,64
//! ```

use crate::trace::TraceEvent;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tango_types::{ClusterId, Resources, ServiceClass, ServiceId, SimTime};

/// The CSV header written and expected by this module.
pub const TRACE_HEADER: &str =
    "at_us,service,class,origin,cpu_milli,memory_mib,bandwidth_mbps,disk_mib";

fn format_event(e: &TraceEvent) -> String {
    format!(
        "{},{},{},{},{},{},{},{}",
        e.at.as_micros(),
        e.service.0,
        e.class,
        e.origin.raw(),
        e.demand.cpu_milli,
        e.demand.memory_mib,
        e.demand.bandwidth_mbps,
        e.demand.disk_mib
    )
}

fn parse_event(line: &str, lineno: usize) -> std::io::Result<TraceEvent> {
    let bad = |msg: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("trace line {lineno}: {msg}: {line}"),
        )
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 8 {
        return Err(bad("expected 8 fields"));
    }
    let num = |i: usize| -> std::io::Result<u64> {
        fields[i]
            .trim()
            .parse::<u64>()
            .map_err(|_| bad("non-numeric field"))
    };
    let class = match fields[2].trim() {
        "LC" => ServiceClass::Lc,
        "BE" => ServiceClass::Be,
        _ => return Err(bad("class must be LC or BE")),
    };
    Ok(TraceEvent {
        at: SimTime::from_micros(num(0)?),
        service: ServiceId(num(1)? as u16),
        class,
        origin: ClusterId(num(3)? as u32),
        demand: Resources::new(num(4)?, num(5)?, num(6)?, num(7)?),
    })
}

/// Write a trace as CSV with header.
pub fn save_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{TRACE_HEADER}")?;
    for e in events {
        writeln!(w, "{}", format_event(e))?;
    }
    w.flush()
}

/// Read a trace back, re-sorting by arrival time (imported traces may be
/// unsorted). The header line is required; blank lines are skipped.
pub fn load_trace(path: &Path) -> std::io::Result<Vec<TraceEvent>> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut events = Vec::new();
    let mut lines = reader.lines().enumerate();
    match lines.next() {
        Some((_, Ok(header))) if header.trim() == TRACE_HEADER => {}
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing or malformed trace header",
            ))
        }
    }
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event(&line, i + 1)?);
    }
    events.sort_by_key(|e| e.at);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServiceCatalog;
    use crate::patterns::{Pattern, PatternKind};
    use crate::trace::{TraceGenerator, TraceSpec};

    fn sample_trace() -> Vec<TraceEvent> {
        let catalog = ServiceCatalog::standard();
        let spec = TraceSpec::new(
            Pattern::new(PatternKind::P3, 50.0, 10.0),
            3,
            SimTime::from_secs(5),
            9,
        );
        TraceGenerator::new(&catalog, spec).collect_events()
    }

    #[test]
    fn save_load_roundtrips_exactly() {
        let events = sample_trace();
        assert!(!events.is_empty());
        let path = std::env::temp_dir().join("tango_trace_roundtrip.csv");
        save_trace(&path, &events).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(events, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_resorts_unsorted_input() {
        let events = sample_trace();
        let path = std::env::temp_dir().join("tango_trace_unsorted.csv");
        let mut reversed = events.clone();
        reversed.reverse();
        save_trace(&path, &reversed).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(events, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_parse_roundtrip_single_line() {
        let e = &sample_trace()[0];
        let parsed = parse_event(&format_event(e), 1).unwrap();
        assert_eq!(&parsed, e);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_event("1,2,3", 1).is_err()); // too few fields
        assert!(parse_event("x,1,LC,0,1,1,1,1", 1).is_err()); // non-numeric
        assert!(parse_event("1,1,XX,0,1,1,1,1", 1).is_err()); // bad class
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = std::env::temp_dir().join("tango_trace_noheader.csv");
        std::fs::write(&path, "1,1,LC,0,1,1,1,1\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_trace(Path::new("/nonexistent/definitely/not.csv")).is_err());
    }
}

//! Trace persistence: save a synthesized trace to disk and replay it
//! later — the moral equivalent of the paper's recorded Google-trace
//! replay, and the hook for plugging a *real* trace (converted to the
//! same CSV) into the harness.
//!
//! Format: a header line, then one CSV row per request, sorted by arrival
//! time:
//!
//! ```text
//! at_us,service,class,origin,cpu_milli,memory_mib,bandwidth_mbps,disk_mib
//! 1042,3,LC,0,512,260,20,64
//! ```

use crate::trace::TraceEvent;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tango_snap::{
    fnv1a, SnapDecode, SnapEncode, SnapError, SnapFile, SnapFileBuilder, SnapReader, SnapWriter,
};
use tango_types::{ClusterId, Resources, ServiceClass, ServiceId, SimTime};

/// The CSV header written and expected by this module.
pub const TRACE_HEADER: &str =
    "at_us,service,class,origin,cpu_milli,memory_mib,bandwidth_mbps,disk_mib";

fn format_event(e: &TraceEvent) -> String {
    format!(
        "{},{},{},{},{},{},{},{}",
        e.at.as_micros(),
        e.service.0,
        e.class,
        e.origin.raw(),
        e.demand.cpu_milli,
        e.demand.memory_mib,
        e.demand.bandwidth_mbps,
        e.demand.disk_mib
    )
}

fn parse_event(line: &str, lineno: usize) -> std::io::Result<TraceEvent> {
    let bad = |msg: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("trace line {lineno}: {msg}: {line}"),
        )
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 8 {
        return Err(bad("expected 8 fields"));
    }
    let num = |i: usize| -> std::io::Result<u64> {
        fields[i]
            .trim()
            .parse::<u64>()
            .map_err(|_| bad("non-numeric field"))
    };
    let class = match fields[2].trim() {
        "LC" => ServiceClass::Lc,
        "BE" => ServiceClass::Be,
        _ => return Err(bad("class must be LC or BE")),
    };
    Ok(TraceEvent {
        at: SimTime::from_micros(num(0)?),
        service: ServiceId(num(1)? as u16),
        class,
        origin: ClusterId(num(3)? as u32),
        demand: Resources::new(num(4)?, num(5)?, num(6)?, num(7)?),
    })
}

/// Write a trace as CSV with header.
pub fn save_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{TRACE_HEADER}")?;
    for e in events {
        writeln!(w, "{}", format_event(e))?;
    }
    w.flush()
}

/// Read a trace back, re-sorting by arrival time (imported traces may be
/// unsorted). The header line is required; blank lines are skipped.
pub fn load_trace(path: &Path) -> std::io::Result<Vec<TraceEvent>> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut events = Vec::new();
    let mut lines = reader.lines().enumerate();
    match lines.next() {
        Some((_, Ok(header))) if header.trim() == TRACE_HEADER => {}
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing or malformed trace header",
            ))
        }
    }
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event(&line, i + 1)?);
    }
    events.sort_by_key(|e| e.at);
    Ok(events)
}

impl SnapEncode for TraceEvent {
    fn encode(&self, w: &mut SnapWriter) {
        self.at.encode(w);
        self.service.encode(w);
        self.class.encode(w);
        self.origin.encode(w);
        self.demand.encode(w);
    }
}
impl SnapDecode for TraceEvent {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TraceEvent {
            at: SimTime::decode(r)?,
            service: ServiceId::decode(r)?,
            class: ServiceClass::decode(r)?,
            origin: ClusterId::decode(r)?,
            demand: Resources::decode(r)?,
        })
    }
}

/// Section tag of the event stream inside a binary trace file.
const TRACE_SECTION: u32 = 0x5452_4143; // "TRAC"

/// Fingerprint stamped on binary trace files so a system snapshot handed
/// to [`decode_trace`] (or vice versa) fails with
/// [`SnapError::ConfigMismatch`] instead of misparsing.
fn trace_fingerprint() -> u64 {
    fnv1a(b"tango-workload-trace")
}

/// Encode a trace into the checksummed snap container (magic, format
/// version, FNV-1a whole-file checksum). The compact binary alternative
/// to [`save_trace`]'s CSV for large traces.
pub fn encode_trace(events: &[TraceEvent]) -> Vec<u8> {
    let mut b = SnapFileBuilder::new(trace_fingerprint());
    b.section(TRACE_SECTION, |w| {
        w.put_u64(events.len() as u64);
        for e in events {
            e.encode(w);
        }
    });
    b.seal()
}

/// Decode a trace produced by [`encode_trace`], verifying magic, format
/// version and checksum, and re-sorting by arrival time. Truncated bytes,
/// flipped bits and foreign snapshots all fail with a typed [`SnapError`].
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<TraceEvent>, SnapError> {
    let file = SnapFile::parse(bytes)?;
    if file.fingerprint != trace_fingerprint() {
        return Err(SnapError::ConfigMismatch {
            found: file.fingerprint,
            expected: trace_fingerprint(),
        });
    }
    let mut r = file.section(TRACE_SECTION, "trace section")?;
    let mut events = Vec::<TraceEvent>::decode(&mut r)?;
    r.expect_end("trace section trailing bytes")?;
    events.sort_by_key(|e| e.at);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServiceCatalog;
    use crate::patterns::{Pattern, PatternKind};
    use crate::trace::{TraceGenerator, TraceSpec};

    fn sample_trace() -> Vec<TraceEvent> {
        let catalog = ServiceCatalog::standard();
        let spec = TraceSpec::new(
            Pattern::new(PatternKind::P3, 50.0, 10.0),
            3,
            SimTime::from_secs(5),
            9,
        );
        TraceGenerator::new(&catalog, spec).collect_events()
    }

    #[test]
    fn save_load_roundtrips_exactly() {
        let events = sample_trace();
        assert!(!events.is_empty());
        let path = std::env::temp_dir().join("tango_trace_roundtrip.csv");
        save_trace(&path, &events).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(events, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_resorts_unsorted_input() {
        let events = sample_trace();
        let path = std::env::temp_dir().join("tango_trace_unsorted.csv");
        let mut reversed = events.clone();
        reversed.reverse();
        save_trace(&path, &reversed).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(events, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_parse_roundtrip_single_line() {
        let e = &sample_trace()[0];
        let parsed = parse_event(&format_event(e), 1).unwrap();
        assert_eq!(&parsed, e);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_event("1,2,3", 1).is_err()); // too few fields
        assert!(parse_event("x,1,LC,0,1,1,1,1", 1).is_err()); // non-numeric
        assert!(parse_event("1,1,XX,0,1,1,1,1", 1).is_err()); // bad class
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = std::env::temp_dir().join("tango_trace_noheader.csv");
        std::fs::write(&path, "1,1,LC,0,1,1,1,1\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_trace(Path::new("/nonexistent/definitely/not.csv")).is_err());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let events = sample_trace();
        let bytes = encode_trace(&events);
        assert_eq!(decode_trace(&bytes).unwrap(), events);
    }

    #[test]
    fn binary_decode_resorts_unsorted_input() {
        let mut reversed = sample_trace();
        reversed.reverse();
        let bytes = encode_trace(&reversed);
        let mut sorted = reversed.clone();
        sorted.sort_by_key(|e| e.at);
        assert_eq!(decode_trace(&bytes).unwrap(), sorted);
    }

    #[test]
    fn truncated_bytes_are_rejected_at_every_cut() {
        let bytes = encode_trace(&sample_trace());
        // every proper prefix must fail with a typed error, never panic
        for cut in [0, 4, 8, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let mut bytes = encode_trace(&sample_trace());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_trace(&bytes),
            Err(SnapError::BadChecksum { .. })
        ));
    }

    #[test]
    fn foreign_snapshot_is_rejected_by_fingerprint() {
        let mut b = SnapFileBuilder::new(0xDEAD_BEEF);
        b.section(TRACE_SECTION, |w| sample_trace().encode(w));
        assert!(matches!(
            decode_trace(&b.seal()),
            Err(SnapError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn garbage_magic_is_rejected() {
        assert!(matches!(
            decode_trace(b"definitely not a snapshot"),
            Err(SnapError::BadMagic)
        ));
    }
}

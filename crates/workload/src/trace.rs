//! The request generator.
//!
//! Mirrors the paper's §6.2 setup: one server replays a trace of LC/BE
//! service requests against the edge-cloud system. Arrivals are a
//! non-homogeneous Poisson process — pattern rate × diurnal multiplier —
//! realized by thinning; BE requests additionally arrive in small bursts
//! (Google batch jobs schedule many tasks at once). Per-request resource
//! demands jitter log-normally around the service's minimum request, and
//! request origins are skewed across clusters ("user requests' loads are
//! uneven and fluctuating across geographical locations", §1).

use crate::catalog::ServiceCatalog;
use crate::diurnal::DiurnalProfile;
use crate::patterns::Pattern;
use tango_simcore::SimRng;
use tango_types::{ClusterId, Resources, ServiceClass, ServiceId, SimTime};

/// One synthesized arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time at the origin master node.
    pub at: SimTime,
    /// Service type.
    pub service: ServiceId,
    /// LC or BE.
    pub class: ServiceClass,
    /// Cluster whose master receives the request.
    pub origin: ClusterId,
    /// Jittered per-request resource demand.
    pub demand: Resources,
}

/// Parameters of a synthesized trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Arrival pattern (P1/P2/P3 with mean rates).
    pub pattern: Pattern,
    /// Diurnal modulation (use [`DiurnalProfile::flat`] to disable).
    pub diurnal: DiurnalProfile,
    /// Hour-of-day at simulation t = 0.
    pub start_hour: f64,
    /// Number of clusters requests can originate from.
    pub clusters: usize,
    /// Trace length.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// σ of the log-normal demand jitter (0 disables jitter).
    pub demand_jitter_sigma: f64,
    /// Zipf exponent for the cluster-origin skew (0 = uniform).
    pub cluster_skew: f64,
    /// Mean BE burst size (≥ 1.0; 1.0 = no bursts).
    pub be_burst_mean: f64,
}

impl TraceSpec {
    /// A reasonable default around a given pattern.
    pub fn new(pattern: Pattern, clusters: usize, duration: SimTime, seed: u64) -> Self {
        TraceSpec {
            pattern,
            diurnal: DiurnalProfile::flat(),
            start_hour: 12.0,
            clusters: clusters.max(1),
            duration,
            seed,
            demand_jitter_sigma: 0.25,
            cluster_skew: 0.6,
            be_burst_mean: 2.0,
        }
    }
}

/// Iterator producing [`TraceEvent`]s in non-decreasing time order.
pub struct TraceGenerator<'a> {
    catalog: &'a ServiceCatalog,
    spec: TraceSpec,
    rng: SimRng,
    /// Independent thinned-Poisson clocks per class.
    next_lc: SimTime,
    next_be: SimTime,
    cluster_weights: Vec<f64>,
    lc_ids: Vec<ServiceId>,
    be_ids: Vec<ServiceId>,
    /// Pending burst copies of the last BE arrival.
    pending: Vec<TraceEvent>,
}

impl<'a> TraceGenerator<'a> {
    /// Create a generator over `catalog` according to `spec`.
    pub fn new(catalog: &'a ServiceCatalog, spec: TraceSpec) -> Self {
        let mut rng = SimRng::new(spec.seed);
        let cluster_weights: Vec<f64> = (0..spec.clusters)
            .map(|i| 1.0 / ((i + 1) as f64).powf(spec.cluster_skew))
            .collect();
        let lc_ids = catalog.lc_ids();
        let be_ids = catalog.be_ids();
        let mut gen = TraceGenerator {
            catalog,
            spec,
            next_lc: SimTime::ZERO,
            next_be: SimTime::ZERO,
            cluster_weights,
            lc_ids,
            be_ids,
            pending: Vec::new(),
            rng: SimRng::new(0), // replaced below
        };
        gen.rng = rng.fork();
        gen.next_lc = gen.draw_next(ServiceClass::Lc, SimTime::ZERO);
        gen.next_be = gen.draw_next(ServiceClass::Be, SimTime::ZERO);
        gen
    }

    fn envelope(&self, class: ServiceClass) -> f64 {
        self.spec.pattern.peak_rate(class).max(1e-9)
    }

    /// Draw the next *candidate* arrival for a class strictly after `from`
    /// using the envelope rate; thinning happens at emission time.
    fn draw_next(&mut self, class: ServiceClass, from: SimTime) -> SimTime {
        let mean_gap_s = 1.0 / self.envelope(class);
        let gap = self.rng.exponential(mean_gap_s);
        from + SimTime::from_micros((gap * 1e6).max(1.0) as u64)
    }

    fn hour_at(&self, at: SimTime) -> f64 {
        self.spec.start_hour + at.as_secs_f64() / 3_600.0
    }

    fn accept(&mut self, class: ServiceClass, at: SimTime) -> bool {
        let rate =
            self.spec.pattern.rate(class, at) * self.spec.diurnal.multiplier(self.hour_at(at));
        self.rng.chance(rate / self.envelope(class))
    }

    fn jitter_demand(&mut self, base: Resources) -> Resources {
        let sigma = self.spec.demand_jitter_sigma;
        if sigma <= 0.0 {
            return base;
        }
        // log-normal with median 1, clamped to keep demands schedulable.
        let factor = self.rng.log_normal(0.0, sigma).clamp(0.5, 3.0);
        base.scale_f64(factor).max(&Resources::new(1, 1, 0, 0))
    }

    fn make_event(&mut self, class: ServiceClass, at: SimTime) -> Option<TraceEvent> {
        let ids = match class {
            ServiceClass::Lc => &self.lc_ids,
            ServiceClass::Be => &self.be_ids,
        };
        if ids.is_empty() {
            return None;
        }
        let service = ids[self.rng.next_below(ids.len() as u64) as usize];
        let origin = ClusterId(self.rng.weighted_index(&self.cluster_weights).unwrap_or(0) as u32);
        let demand = self.jitter_demand(self.catalog.get(service).min_request);
        Some(TraceEvent {
            at,
            service,
            class,
            origin,
            demand,
        })
    }

    /// Queue extra burst copies after a BE head event.
    fn maybe_burst(&mut self, head: &TraceEvent) {
        if self.spec.be_burst_mean <= 1.0 {
            return;
        }
        // geometric extra count with mean be_burst_mean - 1
        let p = 1.0 / self.spec.be_burst_mean;
        let mut extra = 0usize;
        while !self.rng.chance(p) && extra < 16 {
            extra += 1;
        }
        for i in 0..extra {
            // burst members share the origin; demands re-jittered, times
            // offset by a few ms so they stay ordered.
            let base = self.catalog.get(head.service).min_request;
            let demand = self.jitter_demand(base);
            let at = head.at + SimTime::from_millis((i as u64 + 1) * 2);
            if at <= self.spec.duration {
                self.pending.push(TraceEvent {
                    at,
                    demand,
                    ..head.clone()
                });
            }
        }
        // keep pending sorted ascending so pop() from the back yields the
        // earliest... simpler: sort descending and pop from the end.
        self.pending.sort_by_key(|e| std::cmp::Reverse(e.at));
    }

    /// Generate the whole trace eagerly.
    pub fn collect_events(self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for e in self {
            out.push(e);
        }
        out
    }
}

impl<'a> Iterator for TraceGenerator<'a> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            // flush pending burst members that precede both clocks
            if let Some(p) = self.pending.last() {
                if p.at <= self.next_lc && p.at <= self.next_be {
                    return self.pending.pop();
                }
            }
            let (class, at) = if self.next_lc <= self.next_be {
                (ServiceClass::Lc, self.next_lc)
            } else {
                (ServiceClass::Be, self.next_be)
            };
            if at > self.spec.duration {
                // drain remaining pending burst events within duration
                return self.pending.pop();
            }
            // advance that clock
            let next = self.draw_next(class, at);
            match class {
                ServiceClass::Lc => self.next_lc = next,
                ServiceClass::Be => self.next_be = next,
            }
            if self.accept(class, at) {
                if let Some(e) = self.make_event(class, at) {
                    if class.is_be() {
                        self.maybe_burst(&e);
                    }
                    return Some(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;

    fn gen_events(kind: PatternKind, lc: f64, be: f64, secs: u64, seed: u64) -> Vec<TraceEvent> {
        let catalog = ServiceCatalog::standard();
        let spec = TraceSpec::new(
            Pattern::new(kind, lc, be),
            4,
            SimTime::from_secs(secs),
            seed,
        );
        TraceGenerator::new(&catalog, spec).collect_events()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen_events(PatternKind::P3, 20.0, 10.0, 30, 5);
        let b = gen_events(PatternKind::P3, 20.0, 10.0, 30, 5);
        assert_eq!(a, b);
        let c = gen_events(PatternKind::P3, 20.0, 10.0, 30, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_time_ordered_and_within_duration() {
        let ev = gen_events(PatternKind::P1, 30.0, 15.0, 60, 1);
        assert!(!ev.is_empty());
        for w in ev.windows(2) {
            assert!(w[0].at <= w[1].at, "{} > {}", w[0].at, w[1].at);
        }
        assert!(ev.iter().all(|e| e.at <= SimTime::from_secs(60)));
    }

    #[test]
    fn mean_rates_are_approximated() {
        let ev = gen_events(PatternKind::P3, 50.0, 10.0, 120, 3);
        let lc = ev.iter().filter(|e| e.class.is_lc()).count() as f64 / 120.0;
        // BE rate counts head events plus bursts; only check LC precisely.
        assert!((lc - 50.0).abs() < 5.0, "lc rate = {lc}");
    }

    #[test]
    fn be_bursts_inflate_be_count() {
        let catalog = ServiceCatalog::standard();
        let mk = |burst: f64, seed: u64| {
            let mut spec = TraceSpec::new(
                Pattern::new(PatternKind::P3, 0.0, 10.0),
                4,
                SimTime::from_secs(60),
                seed,
            );
            spec.be_burst_mean = burst;
            TraceGenerator::new(&catalog, spec).collect_events().len()
        };
        let without: usize = (0..5).map(|s| mk(1.0, s)).sum();
        let with: usize = (0..5).map(|s| mk(2.5, s)).sum();
        assert!(
            with as f64 > without as f64 * 1.5,
            "with={with} without={without}"
        );
    }

    #[test]
    fn demands_jitter_around_min_request() {
        let ev = gen_events(PatternKind::P3, 50.0, 0.0, 30, 9);
        let catalog = ServiceCatalog::standard();
        let mut saw_above = false;
        let mut saw_below = false;
        for e in &ev {
            let base = catalog.get(e.service).min_request.cpu_milli;
            let d = e.demand.cpu_milli;
            assert!(d >= base / 2 && d <= base * 3 + 1, "d={d} base={base}");
            if d > base {
                saw_above = true;
            }
            if d < base {
                saw_below = true;
            }
        }
        assert!(saw_above && saw_below);
    }

    #[test]
    fn origins_are_skewed_but_cover_clusters() {
        let ev = gen_events(PatternKind::P3, 80.0, 20.0, 60, 13);
        let mut counts = [0usize; 4];
        for e in &ev {
            counts[e.origin.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "counts={counts:?}");
        assert!(counts[0] > counts[3], "counts={counts:?}");
    }

    #[test]
    fn p1_lc_arrivals_oscillate() {
        // Count LC arrivals in the high half vs low half of each period.
        let ev = gen_events(PatternKind::P1, 60.0, 0.0, 120, 21);
        let period_us = 20_000_000u64;
        let mut high = 0usize;
        let mut low = 0usize;
        for e in ev.iter().filter(|e| e.class.is_lc()) {
            if (e.at.as_micros() % period_us) < period_us / 2 {
                high += 1;
            } else {
                low += 1;
            }
        }
        assert!(high as f64 > 2.0 * low as f64, "high={high} low={low}");
    }

    #[test]
    fn zero_rate_classes_produce_nothing() {
        let ev = gen_events(PatternKind::P3, 0.0, 0.0, 30, 2);
        assert!(ev.is_empty());
    }
}

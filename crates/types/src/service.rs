//! Service classes and specifications.
//!
//! Tango co-locates two classes of services (§1): **Latency-Critical** (LC)
//! services with a tail-latency QoS target γ, and **Best-Effort** (BE)
//! services optimized for long-term throughput. The workload crate
//! instantiates ten concrete [`ServiceSpec`]s (five per class) mirroring the
//! 2019 Google cluster-data categorization used in §6.2.

use crate::resources::Resources;
use crate::time::SimTime;
use std::fmt;

/// The co-location class of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Latency-Critical: has a QoS target on p95 tail latency, scheduled by
    /// the distributed DSS-LC dispatcher, highest K8s QoS priority.
    Lc,
    /// Best-Effort: no latency target, scheduled centrally by DCG-BE,
    /// preemptible by LC services under the §4.1 regulations.
    Be,
}

impl ServiceClass {
    /// `true` for Latency-Critical services.
    #[inline]
    pub const fn is_lc(self) -> bool {
        matches!(self, ServiceClass::Lc)
    }

    /// `true` for Best-Effort services.
    #[inline]
    pub const fn is_be(self) -> bool {
        matches!(self, ServiceClass::Be)
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceClass::Lc => write!(f, "LC"),
            ServiceClass::Be => write!(f, "BE"),
        }
    }
}

/// Identifies a service *type* k ∈ K (§5.2.1). Small and dense: the
/// schedulers index per-type tables with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceId(pub u16);

impl ServiceId {
    /// Value as a `usize`, for indexing into dense per-type tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc-{}", self.0)
    }
}

/// Static description of one service type.
///
/// `min_request` is the *initial* minimum resource request (r^{c,k}, r^{m,k}
/// in §5.2.1); at run time the QoS re-assurance mechanism adjusts a per-node
/// copy of it. `work_milli_ms` is the nominal amount of CPU work one request
/// carries, expressed in millicore-milliseconds: a request running alone in
/// a container with exactly `min_request.cpu_milli` of CPU finishes its
/// compute phase in `base_service_ms` = work_milli_ms / min_request.cpu_milli
/// milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Dense id of this service type.
    pub id: ServiceId,
    /// Human-readable name ("cloud-render", "model-training", …).
    pub name: String,
    /// LC or BE.
    pub class: ServiceClass,
    /// Initial minimum per-request resource requirement.
    pub min_request: Resources,
    /// Nominal CPU work per request, in millicore-milliseconds.
    pub work_milli_ms: u64,
    /// QoS target γ_k on p95 latency. `SimTime::MAX` for BE services
    /// (no target).
    pub qos_target: SimTime,
    /// Request payload size in KiB (drives network transfer time).
    pub payload_kib: u64,
}

impl ServiceSpec {
    /// Compute time for one request given an effective CPU allocation in
    /// millicores (perfectly compressible: halving CPU doubles time).
    /// Returns `SimTime::MAX` when the allocation is zero.
    pub fn compute_time(&self, effective_cpu_milli: u64) -> SimTime {
        if effective_cpu_milli == 0 {
            return SimTime::MAX;
        }
        // work [mcore·ms] / cpu [mcore] = ms; keep µs precision.
        SimTime::from_micros(self.work_milli_ms.saturating_mul(1_000) / effective_cpu_milli)
    }

    /// Nominal service time when granted exactly the minimum request.
    pub fn base_service_time(&self) -> SimTime {
        self.compute_time(self.min_request.cpu_milli)
    }

    /// Whether a measured latency meets this service's QoS target.
    #[inline]
    pub fn meets_qos(&self, latency: SimTime) -> bool {
        latency <= self.qos_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServiceSpec {
        ServiceSpec {
            id: ServiceId(0),
            name: "test".into(),
            class: ServiceClass::Lc,
            min_request: Resources::cpu_mem(500, 256),
            work_milli_ms: 50_000, // 100ms at 500 mcores
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        }
    }

    #[test]
    fn compute_time_is_inverse_in_cpu() {
        let s = spec();
        assert_eq!(s.compute_time(500), SimTime::from_millis(100));
        assert_eq!(s.compute_time(1000), SimTime::from_millis(50));
        assert_eq!(s.compute_time(250), SimTime::from_millis(200));
    }

    #[test]
    fn zero_cpu_never_finishes() {
        assert_eq!(spec().compute_time(0), SimTime::MAX);
    }

    #[test]
    fn base_service_time_uses_min_request() {
        assert_eq!(spec().base_service_time(), SimTime::from_millis(100));
    }

    #[test]
    fn qos_check_is_inclusive() {
        let s = spec();
        assert!(s.meets_qos(SimTime::from_millis(300)));
        assert!(!s.meets_qos(SimTime::from_micros(300_001)));
    }

    #[test]
    fn class_predicates() {
        assert!(ServiceClass::Lc.is_lc());
        assert!(!ServiceClass::Lc.is_be());
        assert!(ServiceClass::Be.is_be());
        assert_eq!(ServiceClass::Lc.to_string(), "LC");
    }
}

//! Workspace-wide error type.

use crate::ids::{ContainerId, NodeId, PodId};
use crate::resources::Resources;
use std::fmt;

/// Errors surfaced by the Tango substrates and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum TangoError {
    /// A resource accounting operation would overdraw a budget.
    InsufficientResources {
        /// What was requested.
        requested: Resources,
        /// What was available.
        available: Resources,
    },
    /// A cgroup write violated the hierarchy invariants (e.g. child limit
    /// above parent limit, or wrong pod/container write order).
    CgroupViolation(String),
    /// Referenced a node that does not exist.
    UnknownNode(NodeId),
    /// Referenced a pod that does not exist.
    UnknownPod(PodId),
    /// Referenced a container that does not exist.
    UnknownContainer(ContainerId),
    /// A scheduler could not produce a placement.
    Unschedulable(String),
    /// The flow solver was given an infeasible or malformed problem.
    FlowInfeasible(String),
    /// Shape mismatch or invalid parameter in the neural-network stack.
    NnShape(String),
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::InsufficientResources {
                requested,
                available,
            } => write!(
                f,
                "insufficient resources: requested [{requested}] but only [{available}] available"
            ),
            TangoError::CgroupViolation(msg) => write!(f, "cgroup violation: {msg}"),
            TangoError::UnknownNode(id) => write!(f, "unknown node {id}"),
            TangoError::UnknownPod(id) => write!(f, "unknown pod {id}"),
            TangoError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            TangoError::Unschedulable(msg) => write!(f, "unschedulable: {msg}"),
            TangoError::FlowInfeasible(msg) => write!(f, "flow problem infeasible: {msg}"),
            TangoError::NnShape(msg) => write!(f, "nn shape error: {msg}"),
            TangoError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for TangoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_helpfully() {
        let e = TangoError::InsufficientResources {
            requested: Resources::cpu_mem(100, 50),
            available: Resources::cpu_mem(10, 5),
        };
        let s = e.to_string();
        assert!(s.contains("insufficient"));
        assert!(s.contains("cpu=100m"));

        assert!(TangoError::UnknownNode(NodeId(3))
            .to_string()
            .contains("node-3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TangoError::Config("x".into()));
    }
}

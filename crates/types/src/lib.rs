//! Shared domain types for the Tango edge-cloud co-location framework.
//!
//! This crate defines the vocabulary every other crate speaks: resource
//! vectors, service classes (Latency-Critical vs Best-Effort), requests,
//! simulation time, and the identifier newtypes for clusters, nodes, pods
//! and containers.
//!
//! Nothing in here does any work — these are plain data types with careful
//! arithmetic, so that the substrate crates (cgroup, kube, net, …) and the
//! algorithm crates (hrm, sched) can interoperate without depending on each
//! other.

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod request;
pub mod resources;
pub mod service;
pub mod snap_impls;
pub mod time;

pub use error::TangoError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{ClusterId, ContainerId, NodeId, PodId, RequestId};
pub use request::{Request, RequestOutcome, RequestState};
pub use resources::{ResourceKind, Resources};
pub use service::{ServiceClass, ServiceId, ServiceSpec};
pub use time::SimTime;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, TangoError>;

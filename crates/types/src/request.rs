//! Service requests and their lifecycle.
//!
//! A request is born at a master node (the edge access point), waits in the
//! LC or BE scheduling queue, is dispatched to a worker node (possibly in a
//! different cluster, paying WAN latency), executes inside a container, and
//! completes — or is abandoned if it cannot be placed. The timestamps
//! recorded here are what the QoS detector and all evaluation metrics are
//! computed from.

use crate::ids::{ClusterId, NodeId, RequestId};
use crate::resources::Resources;
use crate::service::{ServiceClass, ServiceId};
use crate::time::SimTime;

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Waiting in a master node's scheduling queue.
    Queued,
    /// Dispatched; in flight to (or queued at) the target worker node.
    Dispatched {
        /// The worker chosen by the scheduler.
        target: NodeId,
    },
    /// Executing inside a container on the target node.
    Running {
        /// The worker executing the request.
        target: NodeId,
    },
    /// Detached from `src` and in flight to `dst`: its execution state is
    /// being transferred over the inter-cluster link and resumes on the
    /// destination at `done_at`. The work already performed travels with
    /// the transfer, so a crash of either endpoint neither loses nor
    /// duplicates the request.
    Migrating {
        /// The node the request was detached from.
        src: NodeId,
        /// The node it will resume on.
        dst: NodeId,
        /// When the state transfer lands at `dst`.
        done_at: SimTime,
    },
    /// Finished; see [`RequestOutcome`].
    Done(RequestOutcome),
}

/// Terminal status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Completed successfully; latency = completion − arrival.
    Completed,
    /// Dropped: the scheduler could not place it before its patience/
    /// queueing bound expired (the "abandoned requests" metric of §7.2).
    Abandoned,
    /// Evicted mid-run by an LC preemption (§4.1) and re-queued too many
    /// times; counted as failed.
    Failed,
}

/// One service request flowing through the system.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Service type k.
    pub service: ServiceId,
    /// LC or BE (denormalized from the service spec for cheap access).
    pub class: ServiceClass,
    /// Cluster whose master received the request.
    pub origin: ClusterId,
    /// Time the master received the request.
    pub arrival: SimTime,
    /// Per-request resource demand (the γ^f of Eq. 4; usually the service's
    /// current minimum request, possibly adjusted by re-assurance).
    pub demand: Resources,
    /// Current lifecycle state.
    pub state: RequestState,
    /// When the request started executing (set on admission to a container).
    pub started: Option<SimTime>,
    /// When the request reached a terminal state.
    pub finished: Option<SimTime>,
    /// Number of times this request was evicted/requeued.
    pub requeues: u32,
}

impl Request {
    /// Create a fresh queued request.
    pub fn new(
        id: RequestId,
        service: ServiceId,
        class: ServiceClass,
        origin: ClusterId,
        arrival: SimTime,
        demand: Resources,
    ) -> Self {
        Request {
            id,
            service,
            class,
            origin,
            arrival,
            demand,
            state: RequestState::Queued,
            started: None,
            finished: None,
            requeues: 0,
        }
    }

    /// End-to-end latency if the request completed.
    pub fn latency(&self) -> Option<SimTime> {
        match (self.state, self.finished) {
            (RequestState::Done(RequestOutcome::Completed), Some(fin)) => {
                Some(fin.saturating_since(self.arrival))
            }
            _ => None,
        }
    }

    /// `true` once the request is in a terminal state.
    pub fn is_done(&self) -> bool {
        matches!(self.state, RequestState::Done(_))
    }

    /// Terminal outcome, if any.
    pub fn outcome(&self) -> Option<RequestOutcome> {
        match self.state {
            RequestState::Done(o) => Some(o),
            _ => None,
        }
    }

    /// Mark the request dispatched to `target`.
    pub fn mark_dispatched(&mut self, target: NodeId) {
        self.state = RequestState::Dispatched { target };
    }

    /// Mark the request running on `target` at time `now`.
    pub fn mark_running(&mut self, target: NodeId, now: SimTime) {
        self.state = RequestState::Running { target };
        self.started = Some(now);
    }

    /// Mark the request finished with `outcome` at time `now`.
    pub fn mark_done(&mut self, outcome: RequestOutcome, now: SimTime) {
        self.state = RequestState::Done(outcome);
        self.finished = Some(now);
    }

    /// Return the request to the queued state after an eviction.
    pub fn mark_requeued(&mut self) {
        self.state = RequestState::Queued;
        self.started = None;
        self.requeues += 1;
    }

    /// Mark the request as migrating from `src` to `dst`, landing at
    /// `done_at`. Execution is suspended for the transfer; `started` is
    /// preserved so end-to-end latency still counts from first admission.
    pub fn mark_migrating(&mut self, src: NodeId, dst: NodeId, done_at: SimTime) {
        self.state = RequestState::Migrating { src, dst, done_at };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request::new(
            RequestId(1),
            ServiceId(2),
            ServiceClass::Lc,
            ClusterId(0),
            SimTime::from_millis(10),
            Resources::cpu_mem(100, 64),
        )
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut r = req();
        assert_eq!(r.state, RequestState::Queued);
        assert!(!r.is_done());

        r.mark_dispatched(NodeId(5));
        assert_eq!(r.state, RequestState::Dispatched { target: NodeId(5) });

        r.mark_running(NodeId(5), SimTime::from_millis(12));
        assert_eq!(r.started, Some(SimTime::from_millis(12)));

        r.mark_done(RequestOutcome::Completed, SimTime::from_millis(42));
        assert!(r.is_done());
        assert_eq!(r.outcome(), Some(RequestOutcome::Completed));
        assert_eq!(r.latency(), Some(SimTime::from_millis(32)));
    }

    #[test]
    fn abandoned_requests_have_no_latency() {
        let mut r = req();
        r.mark_done(RequestOutcome::Abandoned, SimTime::from_millis(50));
        assert_eq!(r.latency(), None);
        assert_eq!(r.outcome(), Some(RequestOutcome::Abandoned));
    }

    #[test]
    fn requeue_resets_execution_state() {
        let mut r = req();
        r.mark_running(NodeId(3), SimTime::from_millis(20));
        r.mark_requeued();
        assert_eq!(r.state, RequestState::Queued);
        assert_eq!(r.started, None);
        assert_eq!(r.requeues, 1);
    }

    #[test]
    fn migration_preserves_started_and_is_not_terminal() {
        let mut r = req();
        r.mark_running(NodeId(3), SimTime::from_millis(20));
        r.mark_migrating(NodeId(3), NodeId(7), SimTime::from_millis(95));
        assert_eq!(
            r.state,
            RequestState::Migrating {
                src: NodeId(3),
                dst: NodeId(7),
                done_at: SimTime::from_millis(95),
            }
        );
        assert!(!r.is_done());
        assert_eq!(r.started, Some(SimTime::from_millis(20)));
        // landing resumes execution on the destination
        r.mark_running(NodeId(7), SimTime::from_millis(95));
        assert_eq!(r.state, RequestState::Running { target: NodeId(7) });
    }
}

//! Simulation time.
//!
//! Time is tracked in integer **microseconds** so that event ordering is
//! exact and runs are bit-for-bit reproducible. Floating-point seconds are
//! only produced at reporting boundaries.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimTime(0)
        } else {
            SimTime((ms * 1_000.0).round() as u64)
        }
    }

    /// Whole microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the epoch.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whole milliseconds since the epoch (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`, useful when clock skew in a
    /// distributed trace could otherwise underflow.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, delta: SimTime) -> Option<SimTime> {
        self.0.checked_add(delta.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis_f64(), 1.5);
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimTime::from_millis_f64(1.0004).as_micros(), 1_000);
        assert_eq!(SimTime::from_millis_f64(1.0006).as_micros(), 1_001);
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(b.saturating_since(a).as_millis(), 20);
        assert_eq!(a.saturating_since(b), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn display_shows_millis() {
        assert_eq!(SimTime::from_micros(1234).to_string(), "1.234ms");
    }
}

//! `SnapEncode`/`SnapDecode` implementations for the shared domain
//! types, so every state-bearing crate can serialize them into
//! checkpoints without re-deriving the framing.
//!
//! Encodings are little-endian and field-ordered exactly as declared;
//! enum discriminants are explicit single bytes. Any change here is a
//! snapshot format change and must bump `tango_snap::FORMAT_VERSION`.

use crate::ids::{ClusterId, ContainerId, NodeId, PodId, RequestId};
use crate::request::{Request, RequestOutcome, RequestState};
use crate::resources::Resources;
use crate::service::{ServiceClass, ServiceId};
use crate::time::SimTime;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};

macro_rules! newtype_codec {
    ($name:ident, $put:ident, $get:ident, $inner:ty) => {
        impl SnapEncode for $name {
            fn encode(&self, w: &mut SnapWriter) {
                w.$put(self.0);
            }
        }
        impl SnapDecode for $name {
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok($name(r.$get()?))
            }
        }
    };
}

newtype_codec!(ClusterId, put_u32, u32, u32);
newtype_codec!(NodeId, put_u32, u32, u32);
newtype_codec!(PodId, put_u64, u64, u64);
newtype_codec!(ContainerId, put_u64, u64, u64);
newtype_codec!(RequestId, put_u64, u64, u64);
newtype_codec!(ServiceId, put_u16, u16, u16);
newtype_codec!(SimTime, put_u64, u64, u64);

impl SnapEncode for Resources {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.cpu_milli);
        w.put_u64(self.memory_mib);
        w.put_u64(self.bandwidth_mbps);
        w.put_u64(self.disk_mib);
    }
}
impl SnapDecode for Resources {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Resources {
            cpu_milli: r.u64()?,
            memory_mib: r.u64()?,
            bandwidth_mbps: r.u64()?,
            disk_mib: r.u64()?,
        })
    }
}

impl SnapEncode for ServiceClass {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            ServiceClass::Lc => 0,
            ServiceClass::Be => 1,
        });
    }
}
impl SnapDecode for ServiceClass {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(ServiceClass::Lc),
            1 => Ok(ServiceClass::Be),
            _ => Err(SnapError::Corrupt("service class tag")),
        }
    }
}

impl SnapEncode for RequestOutcome {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            RequestOutcome::Completed => 0,
            RequestOutcome::Abandoned => 1,
            RequestOutcome::Failed => 2,
        });
    }
}
impl SnapDecode for RequestOutcome {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(RequestOutcome::Completed),
            1 => Ok(RequestOutcome::Abandoned),
            2 => Ok(RequestOutcome::Failed),
            _ => Err(SnapError::Corrupt("request outcome tag")),
        }
    }
}

impl SnapEncode for RequestState {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            RequestState::Queued => w.put_u8(0),
            RequestState::Dispatched { target } => {
                w.put_u8(1);
                target.encode(w);
            }
            RequestState::Running { target } => {
                w.put_u8(2);
                target.encode(w);
            }
            RequestState::Done(outcome) => {
                w.put_u8(3);
                outcome.encode(w);
            }
            RequestState::Migrating { src, dst, done_at } => {
                w.put_u8(4);
                src.encode(w);
                dst.encode(w);
                done_at.encode(w);
            }
        }
    }
}
impl SnapDecode for RequestState {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(RequestState::Queued),
            1 => Ok(RequestState::Dispatched {
                target: NodeId::decode(r)?,
            }),
            2 => Ok(RequestState::Running {
                target: NodeId::decode(r)?,
            }),
            3 => Ok(RequestState::Done(RequestOutcome::decode(r)?)),
            4 => Ok(RequestState::Migrating {
                src: NodeId::decode(r)?,
                dst: NodeId::decode(r)?,
                done_at: SimTime::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("request state tag")),
        }
    }
}

impl SnapEncode for Request {
    fn encode(&self, w: &mut SnapWriter) {
        self.id.encode(w);
        self.service.encode(w);
        self.class.encode(w);
        self.origin.encode(w);
        self.arrival.encode(w);
        self.demand.encode(w);
        self.state.encode(w);
        self.started.encode(w);
        self.finished.encode(w);
        w.put_u32(self.requeues);
    }
}
impl SnapDecode for Request {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Request {
            id: RequestId::decode(r)?,
            service: ServiceId::decode(r)?,
            class: ServiceClass::decode(r)?,
            origin: ClusterId::decode(r)?,
            arrival: SimTime::decode(r)?,
            demand: Resources::decode(r)?,
            state: RequestState::decode(r)?,
            started: Option::<SimTime>::decode(r)?,
            finished: Option::<SimTime>::decode(r)?,
            requeues: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SnapEncode + SnapDecode + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_empty(), "{v:?} left trailing bytes");
    }

    #[test]
    fn ids_and_time_round_trip() {
        round_trip(ClusterId(3));
        round_trip(NodeId(u32::MAX));
        round_trip(PodId(12));
        round_trip(ContainerId(999));
        round_trip(RequestId(u64::MAX - 1));
        round_trip(ServiceId(65_000));
        round_trip(SimTime::from_micros(123_456_789));
    }

    #[test]
    fn resources_round_trip() {
        round_trip(Resources::new(4_000, 8_192, 1_000, 100_000));
    }

    #[test]
    fn request_round_trips_in_every_state() {
        let base = Request::new(
            RequestId(7),
            ServiceId(3),
            ServiceClass::Be,
            ClusterId(1),
            SimTime::from_millis(55),
            Resources::cpu_mem(500, 256),
        );
        round_trip(base.clone());
        let mut r = base.clone();
        r.mark_dispatched(NodeId(9));
        round_trip(r.clone());
        r.mark_running(NodeId(9), SimTime::from_millis(60));
        round_trip(r.clone());
        r.mark_requeued();
        round_trip(r.clone());
        r.mark_migrating(NodeId(9), NodeId(11), SimTime::from_millis(80));
        round_trip(r.clone());
        r.mark_done(RequestOutcome::Failed, SimTime::from_millis(99));
        round_trip(r);
    }

    #[test]
    fn bad_discriminants_are_typed_errors() {
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(
            ServiceClass::decode(&mut r),
            Err(SnapError::Corrupt(_))
        ));
        let mut r = SnapReader::new(&[5]);
        assert!(matches!(
            RequestState::decode(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }
}

//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The simulator's inner loops are dominated by map lookups keyed on
//! small integer ids (`NodeId`, `ServiceId`, `RequestId`, cgroup paths).
//! `std`'s default SipHash is DoS-resistant but costs more than the
//! lookup itself for such keys; profiles of a whole-system tick showed
//! ~a quarter of CPU time inside SipHash. None of these maps are fed
//! attacker-controlled keys, so the multiply-rotate-xor scheme used by
//! rustc (`FxHasher`) is the right trade.
//!
//! Deterministic by construction (no per-process random seed), which
//! also keeps iteration order stable across runs for a given insertion
//! sequence — the simulator sorts where ordering matters regardless.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate-xor hasher in the style of rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher. Construct with
/// `FxHashMap::default()` (the `new()` constructor is only available for
/// the `RandomState` hasher).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // not a collision-resistance claim — just a sanity check that the
        // mixer actually mixes across the id ranges the simulator uses
        let mut seen = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"cg/lc/pod3/ctr7");
        b.write(b"cg/lc/pod3/ctr7");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        m.insert((3, 4), 1.5);
        m.insert((4, 3), 2.5);
        assert_eq!(m.get(&(3, 4)), Some(&1.5));
        assert_eq!(m.get(&(4, 3)), Some(&2.5));
        assert_eq!(m.len(), 2);
    }
}

//! Resource vectors.
//!
//! Tango's regulations (§4.1) distinguish **compressible** resources (CPU,
//! network bandwidth — can be throttled/shared away from a running BE
//! container without killing it) from **incompressible** resources (memory,
//! disk — reclaiming them requires evicting the container). The
//! [`Resources`] vector carries all four dimensions in integer units so the
//! accounting in the cgroup/kube substrates is exact.
//!
//! Units: CPU in **millicores**, memory in **MiB**, bandwidth in **Mbps**,
//! disk in **MiB**.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// One dimension of a [`Resources`] vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU time, in millicores. Compressible.
    Cpu,
    /// Memory, in MiB. Incompressible.
    Memory,
    /// Network bandwidth, in Mbps. Compressible.
    Bandwidth,
    /// Disk, in MiB. Incompressible.
    Disk,
}

impl ResourceKind {
    /// All four dimensions, in canonical order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Bandwidth,
        ResourceKind::Disk,
    ];

    /// Whether a running container can give this resource up without being
    /// evicted (§4.1: CPU and bandwidth are reclaimed by share transfer;
    /// memory and disk require eviction).
    #[inline]
    pub const fn is_compressible(self) -> bool {
        matches!(self, ResourceKind::Cpu | ResourceKind::Bandwidth)
    }
}

/// A four-dimensional resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Resources {
    /// CPU in millicores (1000 = one core).
    pub cpu_milli: u64,
    /// Memory in MiB.
    pub memory_mib: u64,
    /// Network bandwidth in Mbps.
    pub bandwidth_mbps: u64,
    /// Disk in MiB.
    pub disk_mib: u64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu_milli: 0,
        memory_mib: 0,
        bandwidth_mbps: 0,
        disk_mib: 0,
    };

    /// Construct a full vector.
    pub const fn new(cpu_milli: u64, memory_mib: u64, bandwidth_mbps: u64, disk_mib: u64) -> Self {
        Resources {
            cpu_milli,
            memory_mib,
            bandwidth_mbps,
            disk_mib,
        }
    }

    /// Construct a CPU+memory vector (the two dimensions the schedulers'
    /// graphs track, §5.2.1), leaving bandwidth/disk at zero.
    pub const fn cpu_mem(cpu_milli: u64, memory_mib: u64) -> Self {
        Resources {
            cpu_milli,
            memory_mib,
            bandwidth_mbps: 0,
            disk_mib: 0,
        }
    }

    /// Read one dimension.
    #[inline]
    pub const fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Cpu => self.cpu_milli,
            ResourceKind::Memory => self.memory_mib,
            ResourceKind::Bandwidth => self.bandwidth_mbps,
            ResourceKind::Disk => self.disk_mib,
        }
    }

    /// Write one dimension.
    #[inline]
    pub fn set(&mut self, kind: ResourceKind, value: u64) {
        match kind {
            ResourceKind::Cpu => self.cpu_milli = value,
            ResourceKind::Memory => self.memory_mib = value,
            ResourceKind::Bandwidth => self.bandwidth_mbps = value,
            ResourceKind::Disk => self.disk_mib = value,
        }
    }

    /// `true` if every dimension of `self` fits inside `capacity`.
    #[inline]
    pub fn fits_within(&self, capacity: &Resources) -> bool {
        self.cpu_milli <= capacity.cpu_milli
            && self.memory_mib <= capacity.memory_mib
            && self.bandwidth_mbps <= capacity.bandwidth_mbps
            && self.disk_mib <= capacity.disk_mib
    }

    /// `true` on the all-zero vector.
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }

    /// Element-wise saturating subtraction.
    #[inline]
    pub fn saturating_sub(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.saturating_sub(rhs.cpu_milli),
            memory_mib: self.memory_mib.saturating_sub(rhs.memory_mib),
            bandwidth_mbps: self.bandwidth_mbps.saturating_sub(rhs.bandwidth_mbps),
            disk_mib: self.disk_mib.saturating_sub(rhs.disk_mib),
        }
    }

    /// Element-wise checked subtraction; `None` if any dimension underflows.
    #[inline]
    pub fn checked_sub(&self, rhs: &Resources) -> Option<Resources> {
        Some(Resources {
            cpu_milli: self.cpu_milli.checked_sub(rhs.cpu_milli)?,
            memory_mib: self.memory_mib.checked_sub(rhs.memory_mib)?,
            bandwidth_mbps: self.bandwidth_mbps.checked_sub(rhs.bandwidth_mbps)?,
            disk_mib: self.disk_mib.checked_sub(rhs.disk_mib)?,
        })
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.min(rhs.cpu_milli),
            memory_mib: self.memory_mib.min(rhs.memory_mib),
            bandwidth_mbps: self.bandwidth_mbps.min(rhs.bandwidth_mbps),
            disk_mib: self.disk_mib.min(rhs.disk_mib),
        }
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.max(rhs.cpu_milli),
            memory_mib: self.memory_mib.max(rhs.memory_mib),
            bandwidth_mbps: self.bandwidth_mbps.max(rhs.bandwidth_mbps),
            disk_mib: self.disk_mib.max(rhs.disk_mib),
        }
    }

    /// Scale every dimension by an integer factor, saturating.
    #[inline]
    pub fn scale(&self, factor: u64) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.saturating_mul(factor),
            memory_mib: self.memory_mib.saturating_mul(factor),
            bandwidth_mbps: self.bandwidth_mbps.saturating_mul(factor),
            disk_mib: self.disk_mib.saturating_mul(factor),
        }
    }

    /// Scale by a non-negative float, rounding each dimension.
    pub fn scale_f64(&self, factor: f64) -> Resources {
        let f = factor.max(0.0);
        let s = |v: u64| ((v as f64) * f).round() as u64;
        Resources {
            cpu_milli: s(self.cpu_milli),
            memory_mib: s(self.memory_mib),
            bandwidth_mbps: s(self.bandwidth_mbps),
            disk_mib: s(self.disk_mib),
        }
    }

    /// How many copies of `unit` fit into `self` — the capacity term
    /// `min(r_ava^c / r^c, r_ava^m / r^m)` of Eq. 2, extended to all four
    /// dimensions. Dimensions where `unit` is zero are unconstrained.
    pub fn capacity_for(&self, unit: &Resources) -> u64 {
        let mut cap = u64::MAX;
        for kind in ResourceKind::ALL {
            if let Some(k) = self.get(kind).checked_div(unit.get(kind)) {
                cap = cap.min(k);
            }
        }
        if cap == u64::MAX {
            0 // a zero-demand unit "fits" zero times: avoids infinite capacity
        } else {
            cap
        }
    }

    /// Fractional utilization of `self` against `capacity`, averaged over
    /// the dimensions where `capacity` is nonzero. Returns a value in \[0,1\]
    /// if `self <= capacity` element-wise.
    pub fn utilization_against(&self, capacity: &Resources) -> f64 {
        let mut total = 0.0;
        let mut dims = 0u32;
        for kind in ResourceKind::ALL {
            let cap = capacity.get(kind);
            if cap > 0 {
                total += self.get(kind) as f64 / cap as f64;
                dims += 1;
            }
        }
        if dims == 0 {
            0.0
        } else {
            total / dims as f64
        }
    }

    /// The largest single-dimension fraction of `capacity` used (the
    /// bottleneck dimension); used by the DCG-BE short-term reward.
    pub fn max_fraction_of(&self, capacity: &Resources) -> f64 {
        let mut worst: f64 = 0.0;
        for kind in ResourceKind::ALL {
            let cap = capacity.get(kind);
            if cap > 0 {
                worst = worst.max(self.get(kind) as f64 / cap as f64);
            }
        }
        worst
    }

    /// Split into the compressible part (cpu, bandwidth) and the
    /// incompressible part (memory, disk).
    pub fn split_compressible(&self) -> (Resources, Resources) {
        (
            Resources {
                cpu_milli: self.cpu_milli,
                bandwidth_mbps: self.bandwidth_mbps,
                ..Resources::ZERO
            },
            Resources {
                memory_mib: self.memory_mib,
                disk_mib: self.disk_mib,
                ..Resources::ZERO
            },
        )
    }
}

impl Add for Resources {
    type Output = Resources;
    #[inline]
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli + rhs.cpu_milli,
            memory_mib: self.memory_mib + rhs.memory_mib,
            bandwidth_mbps: self.bandwidth_mbps + rhs.bandwidth_mbps,
            disk_mib: self.disk_mib + rhs.disk_mib,
        }
    }
}

impl AddAssign for Resources {
    #[inline]
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Panics on underflow in debug builds; use [`Resources::saturating_sub`]
    /// or [`Resources::checked_sub`] where underflow is expected.
    #[inline]
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli - rhs.cpu_milli,
            memory_mib: self.memory_mib - rhs.memory_mib,
            bandwidth_mbps: self.bandwidth_mbps - rhs.bandwidth_mbps,
            disk_mib: self.disk_mib - rhs.disk_mib,
        }
    }
}

impl SubAssign for Resources {
    #[inline]
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={}m mem={}Mi bw={}Mbps disk={}Mi",
            self.cpu_milli, self.memory_mib, self.bandwidth_mbps, self.disk_mib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(c: u64, m: u64) -> Resources {
        Resources::cpu_mem(c, m)
    }

    #[test]
    fn compressibility_classification_matches_paper() {
        assert!(ResourceKind::Cpu.is_compressible());
        assert!(ResourceKind::Bandwidth.is_compressible());
        assert!(!ResourceKind::Memory.is_compressible());
        assert!(!ResourceKind::Disk.is_compressible());
    }

    #[test]
    fn fits_within_is_elementwise() {
        assert!(r(100, 200).fits_within(&r(100, 200)));
        assert!(!r(101, 200).fits_within(&r(100, 200)));
        assert!(!r(100, 201).fits_within(&r(100, 200)));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Resources::new(100, 200, 30, 40);
        let b = Resources::new(10, 20, 3, 4);
        assert_eq!(a + b - b, a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(r(5, 5).saturating_sub(&r(10, 2)), r(0, 3));
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(r(5, 5).checked_sub(&r(5, 5)), Some(Resources::ZERO));
        assert_eq!(r(5, 5).checked_sub(&r(6, 0)), None);
    }

    #[test]
    fn capacity_for_takes_bottleneck_dimension() {
        // 10 cpu-units, 3 mem-units available -> min is 3.
        assert_eq!(r(1000, 300).capacity_for(&r(100, 100)), 3);
        // zero-demand dims are unconstrained
        assert_eq!(r(1000, 300).capacity_for(&r(100, 0)), 10);
    }

    #[test]
    fn capacity_for_zero_unit_is_zero() {
        assert_eq!(r(1000, 300).capacity_for(&Resources::ZERO), 0);
    }

    #[test]
    fn utilization_averages_nonzero_dims() {
        let used = r(500, 100);
        let cap = r(1000, 200);
        assert!((used.utilization_against(&cap) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_fraction_picks_bottleneck() {
        let used = r(900, 100);
        let cap = r(1000, 1000);
        assert!((used.max_fraction_of(&cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn split_compressible_partitions_dimensions() {
        let a = Resources::new(100, 200, 30, 40);
        let (comp, incomp) = a.split_compressible();
        assert_eq!(comp, Resources::new(100, 0, 30, 0));
        assert_eq!(incomp, Resources::new(0, 200, 0, 40));
        assert_eq!(comp + incomp, a);
    }

    #[test]
    fn scale_f64_rounds() {
        assert_eq!(r(100, 201).scale_f64(0.5), r(50, 101)); // 100.5 rounds to 101
        assert_eq!(r(100, 200).scale_f64(-1.0), Resources::ZERO);
    }
}

//! Identifier newtypes.
//!
//! Every entity in the system gets a small, `Copy`, totally-ordered id so
//! that cross-crate references never require pointers or lifetimes. Nodes
//! are identified *globally* (not per-cluster) because the schedulers build
//! system-wide graphs over them.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,

        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value of this id.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Value as a `usize`, for indexing into dense tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies an edge-cloud cluster (the set `B` in §5.1.1).
    ClusterId, u32, "cluster-"
);
id_type!(
    /// Globally identifies a node (master or worker) across all clusters.
    NodeId, u32, "node-"
);
id_type!(
    /// Identifies a pod within the whole system.
    PodId, u64, "pod-"
);
id_type!(
    /// Identifies a container within the whole system.
    ContainerId, u64, "ctr-"
);
id_type!(
    /// Identifies a single service request.
    RequestId, u64, "req-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ClusterId(3).to_string(), "cluster-3");
        assert_eq!(NodeId(17).to_string(), "node-17");
        assert_eq!(PodId(5).to_string(), "pod-5");
        assert_eq!(ContainerId(9).to_string(), "ctr-9");
        assert_eq!(RequestId(101).to_string(), "req-101");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(RequestId(7).raw(), 7);
    }
}

//! Keep-alive failure detection.
//!
//! Real clusters do not get crash notifications from an oracle: a node
//! is declared down after it misses enough keep-alive probes. The
//! runtime observes each worker once per sync tick — a node that
//! answers the tick records a heartbeat; a node that does not answers
//! raises suspicion by one. When suspicion reaches the configured miss
//! threshold the detector *trips* and the runtime converts the physical
//! crash into a detected one (rescheduling, reservation teardown,
//! candidate-view structure invalidation). Heartbeats decay suspicion
//! multiplicatively instead of resetting it, so a flapping node that
//! answers one probe out of three still trends toward detection.
//!
//! The detector holds only `f64` suspicion per node, so it checkpoints
//! trivially; its state rides in the system snapshot.

use tango_snap::{SnapError, SnapReader, SnapWriter};
use tango_types::NodeId;

/// Tuning for the keep-alive failure detector.
///
/// With the physical-testbed sync interval of 100 ms and the default
/// threshold of 3, a crash is detected at most 300 ms after the tick
/// that follows it — the bound asserted by the detection-lag tests.
#[derive(Debug, Clone, PartialEq)]
pub struct KeepAliveConfig {
    /// Consecutive-miss budget: the detector trips when a node's
    /// suspicion reaches this many missed sync-tick probes.
    pub miss_threshold: u32,
    /// Multiplicative decay applied to suspicion on every answered
    /// probe, in `[0, 1)`. `0.0` forgives all history on one heartbeat;
    /// values near `1.0` make the detector remember flapping.
    pub suspicion_decay: f64,
}

impl Default for KeepAliveConfig {
    fn default() -> Self {
        KeepAliveConfig {
            miss_threshold: 3,
            suspicion_decay: 0.5,
        }
    }
}

/// Per-node suspicion bookkeeping for keep-alive detection.
#[derive(Debug, Clone)]
pub struct HealthDetector {
    cfg: KeepAliveConfig,
    suspicion: Vec<f64>,
}

impl HealthDetector {
    /// A detector over `nodes` workers, all initially trusted.
    pub fn new(cfg: KeepAliveConfig, nodes: usize) -> Self {
        HealthDetector {
            cfg,
            suspicion: vec![0.0; nodes],
        }
    }

    /// The configuration this detector runs under.
    pub fn config(&self) -> &KeepAliveConfig {
        &self.cfg
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.suspicion.len()
    }

    /// True when no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.suspicion.is_empty()
    }

    /// Current suspicion for one node.
    pub fn suspicion(&self, node: NodeId) -> f64 {
        self.suspicion[node.0 as usize]
    }

    /// The node answered this sync tick's probe: decay its suspicion.
    pub fn observe_heartbeat(&mut self, node: NodeId) {
        let s = &mut self.suspicion[node.0 as usize];
        *s *= self.cfg.suspicion_decay;
        if *s < 1e-9 {
            *s = 0.0;
        }
    }

    /// The node missed this sync tick's probe. Returns `true` when the
    /// miss pushes suspicion to the threshold — the trip edge; callers
    /// stop feeding misses for the node once they act on it.
    pub fn observe_miss(&mut self, node: NodeId) -> bool {
        let s = &mut self.suspicion[node.0 as usize];
        *s += 1.0;
        *s >= self.cfg.miss_threshold as f64
    }

    /// Forget a node's history (on recovery, or when its containers are
    /// re-admitted after a restart).
    pub fn reset_node(&mut self, node: NodeId) {
        self.suspicion[node.0 as usize] = 0.0;
    }

    /// Serialize suspicion state for a checkpoint.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u32(self.suspicion.len() as u32);
        for s in &self.suspicion {
            w.put_f64(*s);
        }
    }

    /// Restore suspicion state captured by [`HealthDetector::snapshot`].
    /// The node count must match the detector's construction-time count.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.u32()? as usize;
        if n != self.suspicion.len() {
            return Err(SnapError::Corrupt("health detector node count"));
        }
        for s in self.suspicion.iter_mut() {
            *s = r.f64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_misses() {
        let mut d = HealthDetector::new(KeepAliveConfig::default(), 2);
        let n = NodeId(1);
        assert!(!d.observe_miss(n));
        assert!(!d.observe_miss(n));
        assert!(d.observe_miss(n));
        // the other node is untouched
        assert_eq!(d.suspicion(NodeId(0)), 0.0);
    }

    #[test]
    fn heartbeat_decays_instead_of_resetting() {
        let cfg = KeepAliveConfig {
            miss_threshold: 3,
            suspicion_decay: 0.5,
        };
        let mut d = HealthDetector::new(cfg, 1);
        let n = NodeId(0);
        d.observe_miss(n);
        d.observe_miss(n);
        d.observe_heartbeat(n);
        assert_eq!(d.suspicion(n), 1.0);
        // a flapping node still trends toward the threshold
        assert!(!d.observe_miss(n));
        assert!(d.observe_miss(n));
    }

    #[test]
    fn zero_decay_forgives_everything() {
        let cfg = KeepAliveConfig {
            miss_threshold: 2,
            suspicion_decay: 0.0,
        };
        let mut d = HealthDetector::new(cfg, 1);
        d.observe_miss(NodeId(0));
        d.observe_heartbeat(NodeId(0));
        assert_eq!(d.suspicion(NodeId(0)), 0.0);
    }

    #[test]
    fn snapshot_round_trips_and_validates_count() {
        let mut d = HealthDetector::new(KeepAliveConfig::default(), 3);
        d.observe_miss(NodeId(2));
        let mut w = SnapWriter::new();
        d.snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = HealthDetector::new(KeepAliveConfig::default(), 3);
        let mut r = SnapReader::new(&bytes);
        fresh.restore(&mut r).unwrap();
        assert_eq!(fresh.suspicion(NodeId(2)), 1.0);
        assert_eq!(fresh.suspicion(NodeId(0)), 0.0);

        let mut wrong = HealthDetector::new(KeepAliveConfig::default(), 4);
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            wrong.restore(&mut r),
            Err(SnapError::Corrupt("health detector node count"))
        );
    }
}

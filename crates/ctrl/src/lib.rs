//! Delegated-orchestration control plane for Tango.
//!
//! The paper's deployment (§5) runs a management plane *beside* the
//! scheduler; EDGELESS's ε-ORC shows the same seam as a proxy that
//! mirrors orchestrator state outward and accepts policy decisions from
//! outside. This crate builds that seam for the single-process runtime
//! so it can later be split into communicating processes, in three
//! pillars:
//!
//! * [`mirror`] — a **ClusterStateMirror**: a serializable, versioned
//!   view of cluster/node/QoS/reservation state, published as framed
//!   full-or-delta updates keyed on the candidate-view structure clock,
//!   so calm ticks publish near-nothing;
//! * [`proxy`] — a **ProxyBackend** implementing the unified
//!   `SchedulerBackend` surface: forwards each dispatch round's
//!   candidate views to an external decision source over a framed wire
//!   format and falls back deterministically to the wrapped local
//!   backend on decline, deadline miss, or malformed decision;
//! * [`health`] — a **keep-alive failure detector**: per-node heartbeat
//!   bookkeeping driven from sync-tick observations, with a configurable
//!   miss threshold and suspicion decay, so crash handling is triggered
//!   by detection rather than by the fault-plan oracle.
//!
//! The crate deliberately depends only on the substrate crates
//! (tango-types, tango-snap, tango-sched, tango-par); the system runtime
//! in tango-core drives it at stage boundaries. Everything here is
//! deterministic: frames carry sim-time, never wall-clock, and the proxy
//! deadline is judged against the decision source's *claimed* sim-time
//! compute latency.

#[deny(missing_docs)]
pub mod health;
#[deny(missing_docs)]
pub mod mirror;
#[deny(missing_docs)]
pub mod proxy;

pub use health::{HealthDetector, KeepAliveConfig};
pub use mirror::{
    apply_frame, decode_frame, encode_frame, MirrorFrame, MirrorHandle, MirrorNode, MirrorSnapshot,
    MirrorStats,
};
pub use proxy::{
    channel_pair, ChannelServer, ChannelSource, DecisionReply, DecisionRequest, DecisionSource,
    NoopProxy, PolicyFn, ProxyBackend, ProxyStats, RequestBatch,
};

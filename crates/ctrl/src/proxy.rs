//! ProxyBackend: delegate LC dispatch decisions to an external source.
//!
//! The inbound half of the delegated-orchestration seam. Each dispatch
//! round the proxy serializes the round's candidate views into a framed
//! [`DecisionRequest`] (`TGDQ`), offers it to a [`DecisionSource`], and
//! validates whatever comes back as a [`DecisionReply`] (`TGDR`). The
//! wrapped local backend (DSS-LC or a baseline) remains the authority of
//! last resort — the proxy falls back to it deterministically when the
//! source declines, misses its sim-time deadline, or returns a malformed
//! or inconsistent decision. Fallback therefore never depends on
//! wall-clock: the source *claims* a sim-time compute latency in its
//! reply, and the proxy judges it against the configured deadline, so a
//! run is bit-identical regardless of how slow the external process
//! really was.
//!
//! The BE role (`pick_be`/`feedback_be`) passes straight through to the
//! wrapped backend — delegation covers LC round planning, the decision
//! with a wire-shaped batch view.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;

use tango_par::Pool;
use tango_sched::{CandidateNode, SchedulerBackend, TypeBatch};
use tango_snap::{fnv1a, SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// Wire magic for a decision request frame.
pub const DECISION_REQUEST_MAGIC: u32 = u32::from_le_bytes(*b"TGDQ");
/// Wire magic for a decision reply frame.
pub const DECISION_REPLY_MAGIC: u32 = u32::from_le_bytes(*b"TGDR");
/// Decision wire-format version, bumped on any layout change.
pub const DECISION_FORMAT_VERSION: u16 = 1;

/// One per-type batch as it travels in a decision request: the pending
/// requests plus the full candidate views the local policy would see.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestBatch {
    /// The request type k.
    pub service: ServiceId,
    /// Pending request ids, in queue order.
    pub requests: Vec<RequestId>,
    /// Candidate nodes with their §5.2.1 attributes.
    pub candidates: Vec<CandidateNode>,
}

/// One dispatch round offered to an external decision source.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRequest {
    /// Monotone per-proxy round counter; the reply must echo it.
    pub round: u64,
    /// The deciding master's cluster.
    pub cluster: ClusterId,
    /// Sim-time compute budget: replies claiming more are discarded.
    pub deadline: SimTime,
    /// The round's per-type batches.
    pub batches: Vec<RequestBatch>,
}

/// An external source's placements for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionReply {
    /// Echo of [`DecisionRequest::round`].
    pub round: u64,
    /// Sim-time the source claims the decision took. Judged against the
    /// request's deadline — never wall-clock, so runs stay deterministic.
    pub compute_latency: SimTime,
    /// Placements per batch, in batch order. Requests left out stay
    /// queued, exactly as with a local policy.
    pub placements: Vec<Vec<(RequestId, NodeId)>>,
}

/// Encode a decision request frame.
pub fn encode_request(req: &DecisionRequest) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u32(DECISION_REQUEST_MAGIC);
    w.put_u16(DECISION_FORMAT_VERSION);
    w.put_u64(req.round);
    req.cluster.encode(&mut w);
    req.deadline.encode(&mut w);
    w.put_u64(req.batches.len() as u64);
    for b in &req.batches {
        b.service.encode(&mut w);
        b.requests.encode(&mut w);
        b.candidates.encode(&mut w);
    }
    seal(w)
}

/// Decode and validate a decision request frame.
pub fn decode_request(bytes: &[u8]) -> Result<DecisionRequest, SnapError> {
    let mut r = open(bytes, DECISION_REQUEST_MAGIC)?;
    let round = r.u64()?;
    let cluster = ClusterId::decode(&mut r)?;
    let deadline = SimTime::decode(&mut r)?;
    let n = r.len_prefix(4)?;
    let mut batches = Vec::with_capacity(n);
    for _ in 0..n {
        batches.push(RequestBatch {
            service: ServiceId::decode(&mut r)?,
            requests: Vec::<RequestId>::decode(&mut r)?,
            candidates: Vec::<CandidateNode>::decode(&mut r)?,
        });
    }
    r.expect_end("decision request")?;
    Ok(DecisionRequest {
        round,
        cluster,
        deadline,
        batches,
    })
}

/// Encode a decision reply frame.
pub fn encode_reply(reply: &DecisionReply) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u32(DECISION_REPLY_MAGIC);
    w.put_u16(DECISION_FORMAT_VERSION);
    w.put_u64(reply.round);
    reply.compute_latency.encode(&mut w);
    w.put_u64(reply.placements.len() as u64);
    for batch in &reply.placements {
        w.put_u64(batch.len() as u64);
        for (rid, node) in batch {
            rid.encode(&mut w);
            node.encode(&mut w);
        }
    }
    seal(w)
}

/// Decode and validate a decision reply frame.
pub fn decode_reply(bytes: &[u8]) -> Result<DecisionReply, SnapError> {
    let mut r = open(bytes, DECISION_REPLY_MAGIC)?;
    let round = r.u64()?;
    let compute_latency = SimTime::decode(&mut r)?;
    let n = r.len_prefix(4)?;
    let mut placements = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len_prefix(12)?;
        let mut batch = Vec::with_capacity(m);
        for _ in 0..m {
            let rid = RequestId::decode(&mut r)?;
            batch.push((rid, NodeId::decode(&mut r)?));
        }
        placements.push(batch);
    }
    r.expect_end("decision reply")?;
    Ok(DecisionReply {
        round,
        compute_latency,
        placements,
    })
}

fn seal(w: SnapWriter) -> Vec<u8> {
    let mut bytes = w.into_bytes();
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn open(bytes: &[u8], want_magic: u32) -> Result<SnapReader<'_>, SnapError> {
    if bytes.len() < 4 + 2 + 8 {
        return Err(SnapError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let found = u64::from_le_bytes(trailer.try_into().unwrap());
    let computed = fnv1a(body);
    if found != computed {
        return Err(SnapError::BadChecksum { found, computed });
    }
    let mut r = SnapReader::new(body);
    if r.u32()? != want_magic {
        return Err(SnapError::BadMagic);
    }
    let version = r.u16()?;
    if version != DECISION_FORMAT_VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: DECISION_FORMAT_VERSION,
        });
    }
    Ok(r)
}

/// An external decision authority as the proxy sees it: give it encoded
/// request bytes, get encoded reply bytes back — or `None` to decline
/// the round (the wrapped local policy then plans it). The byte-level
/// surface is what a socket transport will implement; the in-process
/// transports below speak it already.
pub trait DecisionSource: Send {
    /// Offer one round. `None` = decline (not a failure).
    fn decide(&mut self, request: &[u8]) -> Option<Vec<u8>>;
}

/// A decision source that declines every round: attaching it must leave
/// runs bit-identical to local mode — the golden-digest proof that the
/// proxy seam is inert until someone actually decides.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProxy;

impl DecisionSource for NoopProxy {
    fn decide(&mut self, _request: &[u8]) -> Option<Vec<u8>> {
        None
    }
}

/// Wrap a decoded-level policy closure as a byte-level decision source:
/// decodes each request, runs the closure, encodes its reply. Malformed
/// requests (impossible from the in-process proxy) are declined.
pub struct PolicyFn<F>(F);

impl<F> PolicyFn<F>
where
    F: FnMut(&DecisionRequest) -> Option<DecisionReply> + Send,
{
    /// Lift `f` into a [`DecisionSource`].
    pub fn new(f: F) -> Self {
        PolicyFn(f)
    }
}

impl<F> DecisionSource for PolicyFn<F>
where
    F: FnMut(&DecisionRequest) -> Option<DecisionReply> + Send,
{
    fn decide(&mut self, request: &[u8]) -> Option<Vec<u8>> {
        let req = decode_request(request).ok()?;
        (self.0)(&req).map(|reply| encode_reply(&reply))
    }
}

/// Client end of the in-process channel transport: ships request bytes
/// to a [`ChannelServer`] (typically on another thread) and blocks for
/// the reply. A hung-up server reads as a decline, so a dead external
/// process degrades to local planning instead of wedging the run.
pub struct ChannelSource {
    tx: SyncSender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl DecisionSource for ChannelSource {
    fn decide(&mut self, request: &[u8]) -> Option<Vec<u8>> {
        self.tx.send(request.to_vec()).ok()?;
        self.rx.recv().ok()
    }
}

/// Server end of the in-process channel transport.
pub struct ChannelServer {
    rx: Receiver<Vec<u8>>,
    tx: Sender<Vec<u8>>,
}

impl ChannelServer {
    /// Block for the next request's bytes; `None` when the proxy side
    /// has been dropped (run over).
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rx.recv().ok()
    }

    /// Send one reply's bytes. Errors (client gone) are ignored — the
    /// run has already moved on via fallback.
    pub fn reply(&self, bytes: Vec<u8>) {
        let _ = self.tx.send(bytes);
    }

    /// Serve requests with a decoded-level policy until the client hangs
    /// up. Convenience for example/test server threads.
    pub fn serve<F>(&self, mut policy: F)
    where
        F: FnMut(&DecisionRequest) -> Option<DecisionReply>,
    {
        while let Some(req_bytes) = self.recv() {
            let reply = decode_request(&req_bytes)
                .ok()
                .and_then(|req| policy(&req))
                .map(|r| encode_reply(&r))
                .unwrap_or_default();
            self.reply(reply);
        }
    }
}

/// Build a connected in-process transport pair. The request channel is
/// rendezvous-bounded so an absent server back-pressures immediately.
pub fn channel_pair() -> (ChannelSource, ChannelServer) {
    let (req_tx, req_rx) = std::sync::mpsc::sync_channel(1);
    let (rep_tx, rep_rx) = std::sync::mpsc::channel();
    (
        ChannelSource {
            tx: req_tx,
            rx: rep_rx,
        },
        ChannelServer {
            rx: req_rx,
            tx: rep_tx,
        },
    )
}

/// Why delegation handed a round back to the local policy, per round.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Rounds the external source placed (validated replies).
    pub accepted: AtomicU64,
    /// Rounds the source declined (no reply) — the NoopProxy path.
    pub declined: AtomicU64,
    /// Rounds with a reply that was malformed, inconsistent, or over
    /// the sim-time deadline — the deterministic-fallback path.
    pub fallbacks: AtomicU64,
}

impl ProxyStats {
    /// Snapshot of (accepted, declined, fallbacks).
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.accepted.load(Ordering::Relaxed),
            self.declined.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }
}

/// A [`SchedulerBackend`] that delegates LC round planning to a
/// [`DecisionSource`], falling back to the wrapped backend whenever the
/// source does not produce a valid in-deadline decision.
pub struct ProxyBackend {
    inner: Box<dyn SchedulerBackend + Send>,
    source: Box<dyn DecisionSource + Send>,
    cluster: ClusterId,
    deadline: SimTime,
    round: u64,
    stats: Arc<ProxyStats>,
}

impl ProxyBackend {
    /// Wrap `inner`, delegating each LC round to `source` with the given
    /// sim-time decision deadline.
    pub fn new(
        inner: Box<dyn SchedulerBackend + Send>,
        source: Box<dyn DecisionSource + Send>,
        cluster: ClusterId,
        deadline: SimTime,
    ) -> Self {
        ProxyBackend {
            inner,
            source,
            cluster,
            deadline,
            round: 0,
            stats: Arc::new(ProxyStats::default()),
        }
    }

    /// Shared handle to this proxy's outcome counters.
    pub fn stats(&self) -> Arc<ProxyStats> {
        Arc::clone(&self.stats)
    }

    /// Validate a reply against the round's batches; `Err` names the
    /// first inconsistency (drives the fallback counter).
    fn validate(
        &self,
        reply: &DecisionReply,
        batches: &[TypeBatch],
    ) -> Result<Vec<Vec<(RequestId, NodeId)>>, &'static str> {
        if reply.round != self.round {
            return Err("round mismatch");
        }
        if reply.compute_latency > self.deadline {
            return Err("deadline miss");
        }
        if reply.placements.len() != batches.len() {
            return Err("batch count mismatch");
        }
        let mut out = Vec::with_capacity(batches.len());
        for (placed, batch) in reply.placements.iter().zip(batches) {
            let mut seen: Vec<RequestId> = Vec::with_capacity(placed.len());
            for &(rid, node) in placed {
                if !batch.requests.contains(&rid) {
                    return Err("placement for a request not in the batch");
                }
                if seen.contains(&rid) {
                    return Err("request placed twice");
                }
                let Some(cand) = batch.nodes.iter().find(|c| c.node == node) else {
                    return Err("placement onto a non-candidate node");
                };
                if !cand.alive {
                    return Err("placement onto a dead node");
                }
                seen.push(rid);
            }
            out.push(placed.clone());
        }
        Ok(out)
    }
}

impl SchedulerBackend for ProxyBackend {
    fn name(&self) -> &'static str {
        "proxy"
    }

    fn plan_lc(&mut self, batches: &[TypeBatch], pool: &Pool) -> Vec<Vec<(RequestId, NodeId)>> {
        if batches.iter().all(|b| b.requests.is_empty()) {
            return self.inner.plan_lc(batches, pool);
        }
        self.round += 1;
        let request = DecisionRequest {
            round: self.round,
            cluster: self.cluster,
            deadline: self.deadline,
            batches: batches
                .iter()
                .map(|b| RequestBatch {
                    service: b.service,
                    requests: b.requests.clone(),
                    candidates: b.nodes.as_ref().clone(),
                })
                .collect(),
        };
        let Some(reply_bytes) = self.source.decide(&encode_request(&request)) else {
            self.stats.declined.fetch_add(1, Ordering::Relaxed);
            return self.inner.plan_lc(batches, pool);
        };
        let placements = decode_reply(&reply_bytes)
            .map_err(|_| "malformed reply frame")
            .and_then(|reply| self.validate(&reply, batches));
        match placements {
            Ok(p) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                p
            }
            Err(_) => {
                self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.inner.plan_lc(batches, pool)
            }
        }
    }

    fn pick_be(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        self.inner.pick_be(demand, nodes)
    }

    fn feedback_be(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]) {
        self.inner.feedback_be(reward, next_demand, next_nodes)
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Err("proxy backend delegates to an external source and cannot checkpoint it")
    }

    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), &'static str> {
        Err("proxy backend delegates to an external source and cannot restore it")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn cand(node: u32, alive: bool) -> CandidateNode {
        CandidateNode {
            node: NodeId(node),
            cluster: ClusterId(0),
            total: Resources::cpu_mem(4000, 8192),
            available_lc: Resources::cpu_mem(2000, 4096),
            available_be: Resources::cpu_mem(1000, 2048),
            min_request: Resources::cpu_mem(250, 256),
            delay: SimTime::from_millis(2),
            link_capacity: 8,
            slack: 1.0,
            alive,
        }
    }

    fn batch(reqs: &[u64], nodes: Vec<CandidateNode>) -> TypeBatch {
        TypeBatch {
            service: ServiceId(0),
            requests: reqs.iter().map(|&r| RequestId(r)).collect(),
            nodes: StdArc::new(nodes),
        }
    }

    /// A local stand-in that places every request on a fixed node.
    struct PinAll(NodeId);
    impl SchedulerBackend for PinAll {
        fn name(&self) -> &'static str {
            "pin-all"
        }
        fn plan_lc(&mut self, batches: &[TypeBatch], _p: &Pool) -> Vec<Vec<(RequestId, NodeId)>> {
            batches
                .iter()
                .map(|b| b.requests.iter().map(|&r| (r, self.0)).collect())
                .collect()
        }
        fn pick_be(&mut self, _d: &Resources, _n: &[CandidateNode]) -> Option<NodeId> {
            None
        }
        fn feedback_be(&mut self, _r: f32, _d: &Resources, _n: &[CandidateNode]) {}
    }

    #[test]
    fn request_and_reply_frames_round_trip() {
        let req = DecisionRequest {
            round: 7,
            cluster: ClusterId(3),
            deadline: SimTime::from_millis(5),
            batches: vec![RequestBatch {
                service: ServiceId(1),
                requests: vec![RequestId(10), RequestId(11)],
                candidates: vec![cand(0, true), cand(1, false)],
            }],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);

        let reply = DecisionReply {
            round: 7,
            compute_latency: SimTime::from_millis(1),
            placements: vec![vec![(RequestId(10), NodeId(0))]],
        };
        assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
    }

    #[test]
    fn corrupt_decision_frames_map_to_snap_errors() {
        let bytes = encode_reply(&DecisionReply {
            round: 1,
            compute_latency: SimTime::ZERO,
            placements: vec![],
        });
        assert_eq!(decode_reply(&bytes[..5]), Err(SnapError::Truncated));
        let mut flipped = bytes.clone();
        flipped[6] ^= 1;
        assert!(matches!(
            decode_reply(&flipped),
            Err(SnapError::BadChecksum { .. })
        ));
        assert!(matches!(
            decode_request(&bytes),
            Err(SnapError::BadMagic) | Err(SnapError::BadChecksum { .. })
        ));
    }

    #[test]
    fn accepted_decision_overrides_the_local_policy() {
        let source = PolicyFn::new(|req: &DecisionRequest| {
            Some(DecisionReply {
                round: req.round,
                compute_latency: SimTime::from_millis(1),
                placements: req
                    .batches
                    .iter()
                    .map(|b| b.requests.iter().map(|&r| (r, NodeId(1))).collect())
                    .collect(),
            })
        });
        let mut proxy = ProxyBackend::new(
            Box::new(PinAll(NodeId(0))),
            Box::new(source),
            ClusterId(0),
            SimTime::from_millis(5),
        );
        let batches = [batch(&[1, 2], vec![cand(0, true), cand(1, true)])];
        let out = proxy.plan_lc(&batches, &Pool::single());
        assert_eq!(
            out,
            vec![vec![(RequestId(1), NodeId(1)), (RequestId(2), NodeId(1))]]
        );
        assert_eq!(proxy.stats().totals(), (1, 0, 0));
    }

    #[test]
    fn deadline_miss_falls_back_to_the_local_policy() {
        let source = PolicyFn::new(|req: &DecisionRequest| {
            Some(DecisionReply {
                round: req.round,
                compute_latency: SimTime::from_millis(50), // over the 5 ms budget
                placements: req
                    .batches
                    .iter()
                    .map(|b| b.requests.iter().map(|&r| (r, NodeId(1))).collect())
                    .collect(),
            })
        });
        let mut proxy = ProxyBackend::new(
            Box::new(PinAll(NodeId(0))),
            Box::new(source),
            ClusterId(0),
            SimTime::from_millis(5),
        );
        let batches = [batch(&[1], vec![cand(0, true), cand(1, true)])];
        let out = proxy.plan_lc(&batches, &Pool::single());
        assert_eq!(out, vec![vec![(RequestId(1), NodeId(0))]]);
        assert_eq!(proxy.stats().totals(), (0, 0, 1));
    }

    #[test]
    fn invalid_placements_fall_back() {
        // Places onto a dead node → rejected, local policy plans.
        let source = PolicyFn::new(|req: &DecisionRequest| {
            Some(DecisionReply {
                round: req.round,
                compute_latency: SimTime::ZERO,
                placements: req
                    .batches
                    .iter()
                    .map(|b| b.requests.iter().map(|&r| (r, NodeId(1))).collect())
                    .collect(),
            })
        });
        let mut proxy = ProxyBackend::new(
            Box::new(PinAll(NodeId(0))),
            Box::new(source),
            ClusterId(0),
            SimTime::from_millis(5),
        );
        let batches = [batch(&[1], vec![cand(0, true), cand(1, false)])];
        let out = proxy.plan_lc(&batches, &Pool::single());
        assert_eq!(out, vec![vec![(RequestId(1), NodeId(0))]]);
        assert_eq!(proxy.stats().totals(), (0, 0, 1));
    }

    #[test]
    fn noop_proxy_declines_and_the_local_policy_plans() {
        let mut proxy = ProxyBackend::new(
            Box::new(PinAll(NodeId(0))),
            Box::new(NoopProxy),
            ClusterId(0),
            SimTime::from_millis(5),
        );
        let batches = [batch(&[1], vec![cand(0, true)])];
        let out = proxy.plan_lc(&batches, &Pool::single());
        assert_eq!(out, vec![vec![(RequestId(1), NodeId(0))]]);
        assert_eq!(proxy.stats().totals(), (0, 1, 0));
        assert!(proxy.snapshot_state().is_err());
    }

    #[test]
    fn channel_transport_round_trips_through_a_server_thread() {
        let (source, server) = channel_pair();
        let t = std::thread::spawn(move || {
            server.serve(|req| {
                Some(DecisionReply {
                    round: req.round,
                    compute_latency: SimTime::ZERO,
                    placements: req
                        .batches
                        .iter()
                        .map(|b| b.requests.iter().map(|&r| (r, NodeId(0))).collect())
                        .collect(),
                })
            });
        });
        let mut proxy = ProxyBackend::new(
            Box::new(PinAll(NodeId(1))),
            Box::new(source),
            ClusterId(0),
            SimTime::from_millis(5),
        );
        let batches = [batch(&[9], vec![cand(0, true), cand(1, true)])];
        let out = proxy.plan_lc(&batches, &Pool::single());
        assert_eq!(out, vec![vec![(RequestId(9), NodeId(0))]]);
        drop(proxy); // hang up so the server thread exits
        t.join().unwrap();
    }
}

//! ClusterStateMirror: a serializable, versioned view of cluster state.
//!
//! The mirror is the outbound half of the delegated-orchestration seam:
//! after every sync tick the runtime assembles one [`MirrorNode`] row per
//! worker (capacity, availability, QoS slack, reservations, liveness,
//! last heartbeat) and hands the batch to a [`MirrorHandle`]. The handle
//! versions the state and publishes framed updates an external store
//! could consume:
//!
//! * a **full frame** (`TGMR`) whenever the candidate-view *structure
//!   clock* changed since the last publication (topology-shaped events:
//!   crash, recovery, partition) or on first publication;
//! * a **delta frame** (`TGMD`) carrying only the rows whose encoded
//!   bytes changed, keyed by row index against the base version;
//! * **nothing at all** on a calm tick where no row changed — the common
//!   case, counted in [`MirrorStats::calm_ticks`].
//!
//! Frames are self-validating: magic word, format version, and a
//! trailing FNV-1a checksum, decoded through the same [`SnapError`]
//! taxonomy as system snapshots. [`apply_frame`] is the consumer half:
//! folding the frame stream over `Option<MirrorSnapshot>` reproduces the
//! publisher's latest state exactly.

use std::sync::{Arc, Mutex};

use tango_snap::{fnv1a, SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ClusterId, NodeId, Resources, ServiceId, SimTime};

/// Wire magic for a full mirror frame.
pub const MIRROR_FULL_MAGIC: u32 = u32::from_le_bytes(*b"TGMR");
/// Wire magic for a delta mirror frame.
pub const MIRROR_DELTA_MAGIC: u32 = u32::from_le_bytes(*b"TGMD");
/// Mirror wire-format version, bumped on any layout change.
pub const MIRROR_FORMAT_VERSION: u16 = 1;

/// One worker node as the mirror exposes it: the state-storage row plus
/// the control-plane facts an external orchestrator needs (reservations,
/// liveness, heartbeat age).
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorNode {
    /// Node id.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Whether this node is the cluster master.
    pub is_master: bool,
    /// Total resources.
    pub total: Resources,
    /// Resources currently available.
    pub available: Resources,
    /// Resources held by running BE work (preemptible for LC).
    pub be_held: Resources,
    /// Dispatcher in-flight reservations against the node.
    pub reserved: Resources,
    /// Per-service QoS slack δ.
    pub slack: Vec<(ServiceId, f64)>,
    /// Per-service pending-container counts.
    pub pending: Vec<(ServiceId, u32)>,
    /// Sim-time of the state-storage row this was built from.
    pub updated_at: SimTime,
    /// Liveness as the control plane believes it (detected, not
    /// physical — an undetected crash still shows `true` here until the
    /// keep-alive detector trips).
    pub alive: bool,
    /// Last sync tick at which the node answered its keep-alive probe.
    pub last_heartbeat: SimTime,
}

impl SnapEncode for MirrorNode {
    fn encode(&self, w: &mut SnapWriter) {
        self.node.encode(w);
        self.cluster.encode(w);
        w.put_bool(self.is_master);
        self.total.encode(w);
        self.available.encode(w);
        self.be_held.encode(w);
        self.reserved.encode(w);
        w.put_u64(self.slack.len() as u64);
        for (sid, s) in &self.slack {
            sid.encode(w);
            w.put_f64(*s);
        }
        w.put_u64(self.pending.len() as u64);
        for (sid, n) in &self.pending {
            sid.encode(w);
            w.put_u32(*n);
        }
        self.updated_at.encode(w);
        w.put_bool(self.alive);
        self.last_heartbeat.encode(w);
    }
}

impl SnapDecode for MirrorNode {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let node = NodeId::decode(r)?;
        let cluster = ClusterId::decode(r)?;
        let is_master = r.bool()?;
        let total = Resources::decode(r)?;
        let available = Resources::decode(r)?;
        let be_held = Resources::decode(r)?;
        let reserved = Resources::decode(r)?;
        let n = r.len_prefix(10)?;
        let mut slack = Vec::with_capacity(n);
        for _ in 0..n {
            let sid = ServiceId::decode(r)?;
            slack.push((sid, r.f64()?));
        }
        let n = r.len_prefix(6)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let sid = ServiceId::decode(r)?;
            pending.push((sid, r.u32()?));
        }
        Ok(MirrorNode {
            node,
            cluster,
            is_master,
            total,
            available,
            be_held,
            reserved,
            slack,
            pending,
            updated_at: SimTime::decode(r)?,
            alive: r.bool()?,
            last_heartbeat: SimTime::decode(r)?,
        })
    }
}

/// A complete versioned mirror state: what an external store holds after
/// applying the frame stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorSnapshot {
    /// Monotone publication version (first publication is 1).
    pub version: u64,
    /// Sim-time of the sync tick that produced this state.
    pub at: SimTime,
    /// Candidate-view structure clock at publication — full frames are
    /// keyed on changes of this clock.
    pub structure_clock: u64,
    /// Candidate-view value clock at publication.
    pub value_clock: u64,
    /// One row per worker, in node-id order.
    pub nodes: Vec<MirrorNode>,
}

impl SnapEncode for MirrorSnapshot {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.version);
        self.at.encode(w);
        w.put_u64(self.structure_clock);
        w.put_u64(self.value_clock);
        self.nodes.encode(w);
    }
}

impl SnapDecode for MirrorSnapshot {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MirrorSnapshot {
            version: r.u64()?,
            at: SimTime::decode(r)?,
            structure_clock: r.u64()?,
            value_clock: r.u64()?,
            nodes: Vec::<MirrorNode>::decode(r)?,
        })
    }
}

/// One published mirror update, as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum MirrorFrame {
    /// Full republication of the whole state.
    Full(MirrorSnapshot),
    /// Row-level delta against a base version.
    Delta {
        /// Version the receiver must hold for the delta to apply.
        base_version: u64,
        /// Version after applying.
        version: u64,
        /// Sim-time of the producing sync tick.
        at: SimTime,
        /// Value clock after applying.
        value_clock: u64,
        /// Changed rows, as `(row index, new row)` in index order.
        rows: Vec<(u32, MirrorNode)>,
    },
}

/// Encode a frame: magic, format version, body, FNV-1a checksum trailer.
pub fn encode_frame(frame: &MirrorFrame) -> Vec<u8> {
    let mut w = SnapWriter::new();
    match frame {
        MirrorFrame::Full(snap) => {
            w.put_u32(MIRROR_FULL_MAGIC);
            w.put_u16(MIRROR_FORMAT_VERSION);
            snap.encode(&mut w);
        }
        MirrorFrame::Delta {
            base_version,
            version,
            at,
            value_clock,
            rows,
        } => {
            w.put_u32(MIRROR_DELTA_MAGIC);
            w.put_u16(MIRROR_FORMAT_VERSION);
            w.put_u64(*base_version);
            w.put_u64(*version);
            at.encode(&mut w);
            w.put_u64(*value_clock);
            w.put_u64(rows.len() as u64);
            for (idx, row) in rows {
                w.put_u32(*idx);
                row.encode(&mut w);
            }
        }
    }
    let mut bytes = w.into_bytes();
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decode and validate one frame. Every malformed input maps onto the
/// snapshot error taxonomy; decoding never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<MirrorFrame, SnapError> {
    if bytes.len() < 4 + 2 + 8 {
        return Err(SnapError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let found = u64::from_le_bytes(trailer.try_into().unwrap());
    let computed = fnv1a(body);
    if found != computed {
        return Err(SnapError::BadChecksum { found, computed });
    }
    let mut r = SnapReader::new(body);
    let magic = r.u32()?;
    if magic != MIRROR_FULL_MAGIC && magic != MIRROR_DELTA_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u16()?;
    if version != MIRROR_FORMAT_VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: MIRROR_FORMAT_VERSION,
        });
    }
    let frame = if magic == MIRROR_FULL_MAGIC {
        MirrorFrame::Full(MirrorSnapshot::decode(&mut r)?)
    } else {
        let base_version = r.u64()?;
        let version = r.u64()?;
        let at = SimTime::decode(&mut r)?;
        let value_clock = r.u64()?;
        let n = r.len_prefix(4)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32()?;
            rows.push((idx, MirrorNode::decode(&mut r)?));
        }
        MirrorFrame::Delta {
            base_version,
            version,
            at,
            value_clock,
            rows,
        }
    };
    r.expect_end("mirror frame")?;
    Ok(frame)
}

/// Consumer half: fold one frame into a receiver-side state. A full
/// frame replaces the state; a delta requires the receiver to hold
/// exactly the base version and patches rows in place.
pub fn apply_frame(
    state: &mut Option<MirrorSnapshot>,
    frame: &MirrorFrame,
) -> Result<(), SnapError> {
    match frame {
        MirrorFrame::Full(snap) => {
            *state = Some(snap.clone());
            Ok(())
        }
        MirrorFrame::Delta {
            base_version,
            version,
            at,
            value_clock,
            rows,
        } => {
            let cur = state
                .as_mut()
                .ok_or(SnapError::Corrupt("mirror delta with no base state"))?;
            if cur.version != *base_version {
                return Err(SnapError::Corrupt("mirror delta base version mismatch"));
            }
            for (idx, row) in rows {
                let slot = cur
                    .nodes
                    .get_mut(*idx as usize)
                    .ok_or(SnapError::Corrupt("mirror delta row index out of range"))?;
                *slot = row.clone();
            }
            cur.version = *version;
            cur.at = *at;
            cur.value_clock = *value_clock;
            Ok(())
        }
    }
}

/// Publication counters for one mirror.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// Full frames published.
    pub full_frames: u64,
    /// Delta frames published.
    pub delta_frames: u64,
    /// Total rows carried across all frames.
    pub rows_published: u64,
    /// Sync ticks where nothing changed and no frame was emitted.
    pub calm_ticks: u64,
}

#[derive(Default)]
struct MirrorInner {
    latest: Option<MirrorSnapshot>,
    row_hashes: Vec<u64>,
    structure_clock: u64,
    next_version: u64,
    last_frame: Option<Vec<u8>>,
    retained: Option<Vec<Vec<u8>>>,
    stats: MirrorStats,
}

/// Change-detection hash of one row: everything *except* the pure
/// observation timestamps (`updated_at`, `last_heartbeat`). Timestamps
/// advance on every sync tick even when nothing else moved; hashing them
/// would make every delta carry the whole cluster. A row publishes only
/// when its substance changes, and keeps its last published timestamps
/// in the meantime.
fn change_hash(n: &MirrorNode) -> u64 {
    let mut w = SnapWriter::new();
    n.node.encode(&mut w);
    n.cluster.encode(&mut w);
    w.put_bool(n.is_master);
    n.total.encode(&mut w);
    n.available.encode(&mut w);
    n.be_held.encode(&mut w);
    n.reserved.encode(&mut w);
    w.put_u64(n.slack.len() as u64);
    for (sid, v) in &n.slack {
        sid.encode(&mut w);
        w.put_f64(*v);
    }
    w.put_u64(n.pending.len() as u64);
    for (sid, c) in &n.pending {
        sid.encode(&mut w);
        w.put_u32(*c);
    }
    w.put_bool(n.alive);
    fnv1a(&w.into_bytes())
}

/// Shared, cloneable handle to one published mirror — the runtime's
/// publisher end and any consumer's read end. Cloning shares the state
/// (the `TraceRecorder` pattern).
#[derive(Clone, Default)]
pub struct MirrorHandle {
    inner: Arc<Mutex<MirrorInner>>,
}

impl MirrorHandle {
    /// A fresh mirror with nothing published yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep every published frame in memory (for tests and replay
    /// consumers). Off by default so long runs stay bounded.
    pub fn retain_frames(&self, on: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.retained = if on { Some(Vec::new()) } else { None };
    }

    /// Publish one sync tick's state. Decides full vs delta vs nothing
    /// and returns the number of rows actually carried on the wire.
    pub fn publish(
        &self,
        at: SimTime,
        structure_clock: u64,
        value_clock: u64,
        nodes: Vec<MirrorNode>,
    ) -> usize {
        let hashes: Vec<u64> = nodes.iter().map(change_hash).collect();
        let mut inner = self.inner.lock().unwrap();
        let needs_full = match &inner.latest {
            None => true,
            Some(last) => {
                last.nodes.len() != nodes.len() || inner.structure_clock != structure_clock
            }
        };
        if needs_full {
            let version = inner.next_version + 1;
            inner.next_version = version;
            let snap = MirrorSnapshot {
                version,
                at,
                structure_clock,
                value_clock,
                nodes,
            };
            let frame = encode_frame(&MirrorFrame::Full(snap.clone()));
            let carried = snap.nodes.len();
            inner.stats.full_frames += 1;
            inner.stats.rows_published += carried as u64;
            inner.structure_clock = structure_clock;
            inner.row_hashes = hashes;
            inner.latest = Some(snap);
            if let Some(kept) = inner.retained.as_mut() {
                kept.push(frame.clone());
            }
            inner.last_frame = Some(frame);
            return carried;
        }
        let changed: Vec<u32> = hashes
            .iter()
            .zip(inner.row_hashes.iter())
            .enumerate()
            .filter(|(_, (new, old))| new != old)
            .map(|(i, _)| i as u32)
            .collect();
        if changed.is_empty() {
            inner.stats.calm_ticks += 1;
            return 0;
        }
        let base_version = inner.latest.as_ref().unwrap().version;
        let version = inner.next_version + 1;
        inner.next_version = version;
        let rows: Vec<(u32, MirrorNode)> = changed
            .iter()
            .map(|&i| (i, nodes[i as usize].clone()))
            .collect();
        let frame = encode_frame(&MirrorFrame::Delta {
            base_version,
            version,
            at,
            value_clock,
            rows,
        });
        let carried = changed.len();
        inner.stats.delta_frames += 1;
        inner.stats.rows_published += carried as u64;
        inner.row_hashes = hashes;
        let latest = inner.latest.as_mut().unwrap();
        latest.version = version;
        latest.at = at;
        latest.value_clock = value_clock;
        // Only the published rows move; unpublished rows keep their last
        // published contents (including timestamps), so replaying the
        // frame stream lands on exactly this snapshot.
        for &i in &changed {
            latest.nodes[i as usize] = nodes[i as usize].clone();
        }
        if let Some(kept) = inner.retained.as_mut() {
            kept.push(frame.clone());
        }
        inner.last_frame = Some(frame);
        carried
    }

    /// The latest published state, if anything has been published.
    pub fn latest(&self) -> Option<MirrorSnapshot> {
        self.inner.lock().unwrap().latest.clone()
    }

    /// The most recently published frame's bytes.
    pub fn last_frame(&self) -> Option<Vec<u8>> {
        self.inner.lock().unwrap().last_frame.clone()
    }

    /// Take all retained frames (empties the retention buffer). Empty
    /// unless [`MirrorHandle::retain_frames`] was switched on.
    pub fn take_retained(&self) -> Vec<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .retained
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Publication counters so far.
    pub fn stats(&self) -> MirrorStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(node: u32, avail_cpu: u64) -> MirrorNode {
        MirrorNode {
            node: NodeId(node),
            cluster: ClusterId(0),
            is_master: node == 0,
            total: Resources::cpu_mem(4000, 8192),
            available: Resources::cpu_mem(avail_cpu, 4096),
            be_held: Resources::ZERO,
            reserved: Resources::ZERO,
            slack: vec![(ServiceId(0), 1.0)],
            pending: vec![(ServiceId(0), 2)],
            updated_at: SimTime::from_millis(100),
            alive: true,
            last_heartbeat: SimTime::from_millis(100),
        }
    }

    #[test]
    fn first_publish_is_full_then_calm_ticks_publish_nothing() {
        let m = MirrorHandle::new();
        let nodes = vec![row(0, 1000), row(1, 2000)];
        assert_eq!(m.publish(SimTime::from_millis(100), 1, 1, nodes.clone()), 2);
        assert_eq!(m.publish(SimTime::from_millis(200), 1, 2, nodes), 0);
        let s = m.stats();
        assert_eq!(s.full_frames, 1);
        assert_eq!(s.delta_frames, 0);
        assert_eq!(s.calm_ticks, 1);
        assert_eq!(m.latest().unwrap().version, 1);
    }

    #[test]
    fn value_change_publishes_a_single_row_delta() {
        let m = MirrorHandle::new();
        m.publish(
            SimTime::from_millis(100),
            1,
            1,
            vec![row(0, 1000), row(1, 2000)],
        );
        let carried = m.publish(
            SimTime::from_millis(200),
            1,
            2,
            vec![row(0, 1000), row(1, 500)],
        );
        assert_eq!(carried, 1);
        let s = m.stats();
        assert_eq!((s.full_frames, s.delta_frames), (1, 1));
        let latest = m.latest().unwrap();
        assert_eq!(latest.version, 2);
        assert_eq!(latest.nodes[1].available.cpu_milli, 500);
    }

    #[test]
    fn structure_clock_change_forces_a_full_frame() {
        let m = MirrorHandle::new();
        let nodes = vec![row(0, 1000)];
        m.publish(SimTime::from_millis(100), 1, 1, nodes.clone());
        m.publish(SimTime::from_millis(200), 2, 2, nodes);
        assert_eq!(m.stats().full_frames, 2);
    }

    #[test]
    fn frame_stream_reconstructs_publisher_state() {
        let m = MirrorHandle::new();
        m.retain_frames(true);
        m.publish(
            SimTime::from_millis(100),
            1,
            1,
            vec![row(0, 1000), row(1, 2000)],
        );
        m.publish(
            SimTime::from_millis(200),
            1,
            2,
            vec![row(0, 900), row(1, 2000)],
        );
        m.publish(
            SimTime::from_millis(300),
            2,
            3,
            vec![row(0, 900), row(1, 0)],
        );
        let mut state = None;
        for bytes in m.take_retained() {
            let frame = decode_frame(&bytes).unwrap();
            apply_frame(&mut state, &frame).unwrap();
        }
        assert_eq!(state.unwrap(), m.latest().unwrap());
    }

    #[test]
    fn delta_against_wrong_base_is_rejected() {
        let m = MirrorHandle::new();
        m.retain_frames(true);
        m.publish(SimTime::from_millis(100), 1, 1, vec![row(0, 1000)]);
        m.publish(SimTime::from_millis(200), 1, 2, vec![row(0, 500)]);
        let frames = m.take_retained();
        let delta = decode_frame(&frames[1]).unwrap();
        let mut state = None;
        assert!(matches!(
            apply_frame(&mut state, &delta),
            Err(SnapError::Corrupt("mirror delta with no base state"))
        ));
    }

    #[test]
    fn truncation_and_bitflips_are_rejected_not_panicking() {
        let m = MirrorHandle::new();
        m.publish(SimTime::from_millis(100), 1, 1, vec![row(0, 1000)]);
        let frame = m.last_frame().unwrap();
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x40;
            assert!(decode_frame(&bad).is_err(), "flip at byte {byte}");
        }
    }
}

//! Resource usage regulations (§4.1) — the HRM allocator.
//!
//! The rules, verbatim from the paper:
//!
//! * LC services outrank BE services (K8s QoS levels).
//! * Resources available to LC requests = idle resources **plus** the
//!   resources BE services currently hold; idle is preferred.
//! * BE services maximize their use of idle resources.
//! * Under pressure, LC preempts: **compressible** resources (CPU,
//!   bandwidth) transfer by share — running BE containers are throttled,
//!   not killed; **incompressible** resources (memory, disk) are freed by
//!   evicting BE containers, which restart later.
//!
//! Feasibility summary: an LC request fits a node iff LC-held + demand ≤
//! capacity (BE holdings are reclaimable); a BE request fits iff
//! everything-held + demand ≤ capacity (BE may only take idle).
//!
//! After every admission and completion the allocator **rebalances**: each
//! active LC container's limit is raised to cover its in-flight demands
//! (through D-VPA, pod-before-container), and the CPU/bandwidth left over
//! is distributed to active BE containers in proportion to their demand —
//! possibly below that demand, which is exactly the throttling preemption.
//!
//! Invariant kept by construction: Σ active-container limits ≤ node
//! capacity, so the per-container processor-sharing execution model never
//! oversubscribes the node.

use crate::dvpa::Dvpa;
use std::collections::HashMap;
use tango_kube::node::RunningRequest;
use tango_kube::Node;
use tango_types::{ContainerId, Request, Resources, ServiceClass, ServiceId, SimTime, TangoError};

/// What an admission did to the node.
#[derive(Debug, Default)]
pub struct AdmitOutcome {
    /// BE requests evicted to free incompressible resources; the caller
    /// requeues them.
    pub evicted: Vec<(ServiceId, RunningRequest)>,
}

/// The HRM allocator: regulations + D-VPA rebalancing.
#[derive(Debug)]
pub struct HrmAllocator {
    /// The D-VPA component doing the actual limit writes.
    pub dvpa: Dvpa,
    /// How long an evicted BE container takes to restart.
    pub be_restart_delay: SimTime,
    /// Per-service floor limits (the service's base minimum request).
    floors: HashMap<ServiceId, Resources>,
}

impl HrmAllocator {
    /// Build an allocator with per-service floor limits (usually each
    /// service's `min_request`).
    pub fn new(floors: HashMap<ServiceId, Resources>) -> Self {
        HrmAllocator {
            dvpa: Dvpa::default(),
            be_restart_delay: SimTime::from_millis(2_300),
            floors,
        }
    }

    fn floor(&self, service: ServiceId) -> Resources {
        self.floors
            .get(&service)
            .copied()
            .unwrap_or(Resources::ZERO)
    }

    /// Regulation feasibility check (does not mutate the node).
    pub fn feasible(node: &Node, class: ServiceClass, demand: &Resources) -> bool {
        let (lc_held, be_held) = node.demand_usage();
        let cap = node.capacity();
        match class {
            ServiceClass::Lc => (lc_held + *demand).fits_within(&cap),
            ServiceClass::Be => (lc_held + be_held + *demand).fits_within(&cap),
        }
    }

    /// Admit `req` onto `node` under the regulations, evicting/throttling
    /// BE as needed, growing limits through D-VPA, and rebalancing.
    pub fn try_admit(
        &mut self,
        node: &mut Node,
        req: &Request,
        work_milli_ms: u64,
        now: SimTime,
    ) -> Result<AdmitOutcome, TangoError> {
        node.advance(now);
        let ctr = node.container_for(req.service).ok_or_else(|| {
            TangoError::Unschedulable(format!("{} not deployed on {}", req.service, node.id))
        })?;
        if !node.is_available(ctr, now) {
            return Err(TangoError::Unschedulable(format!(
                "container for {} on {} is restarting",
                req.service, node.id
            )));
        }
        if !Self::feasible(node, req.class, &req.demand) {
            let (lc, be) = node.demand_usage();
            return Err(TangoError::InsufficientResources {
                requested: req.demand,
                available: node.capacity().saturating_sub(&lc).saturating_sub(&be),
            });
        }

        let mut outcome = AdmitOutcome::default();
        if req.class.is_lc() {
            outcome.evicted = self.evict_for_incompressible(node, &req.demand, now)?;
        }
        self.rebalance_with_extra(node, Some((req.service, req.demand)), now);
        node.admit(req.id, req.service, req.demand, work_milli_ms, now)?;
        Ok(outcome)
    }

    /// Admit a migrated BE pod carrying residual work: the same BE-side
    /// regulations as [`try_admit`](Self::try_admit) (feasibility over
    /// everything-held, D-VPA limit growth), but the pod resumes from the
    /// fractional work the migration shipped rather than the service's
    /// nominal work. Migrating pods are BE by policy, so the LC eviction
    /// path never applies.
    pub fn try_admit_migrated(
        &mut self,
        node: &mut Node,
        request: tango_types::RequestId,
        service: ServiceId,
        demand: Resources,
        remaining_work: f64,
        now: SimTime,
    ) -> Result<(), TangoError> {
        node.advance(now);
        let ctr = node.container_for(service).ok_or_else(|| {
            TangoError::Unschedulable(format!("{service} not deployed on {}", node.id))
        })?;
        if !node.is_available(ctr, now) {
            return Err(TangoError::Unschedulable(format!(
                "container for {service} on {} is restarting",
                node.id
            )));
        }
        if !Self::feasible(node, ServiceClass::Be, &demand) {
            let (lc, be) = node.demand_usage();
            return Err(TangoError::InsufficientResources {
                requested: demand,
                available: node.capacity().saturating_sub(&lc).saturating_sub(&be),
            });
        }
        self.rebalance_with_extra(node, Some((service, demand)), now);
        node.admit_migrated(request, service, demand, remaining_work, now)
    }

    /// Evict BE containers (cheapest remaining work first) until the LC
    /// demand's incompressible part fits in capacity − held.
    fn evict_for_incompressible(
        &mut self,
        node: &mut Node,
        demand: &Resources,
        now: SimTime,
    ) -> Result<Vec<(ServiceId, RunningRequest)>, TangoError> {
        let cap = node.capacity();
        let fits = |node: &Node| -> bool {
            let (lc, be) = node.demand_usage();
            let total = lc + be + *demand;
            total.memory_mib <= cap.memory_mib && total.disk_mib <= cap.disk_mib
        };
        let mut evicted = Vec::new();
        if fits(node) {
            return Ok(evicted);
        }
        // candidate BE containers ordered by least remaining work
        let mut candidates: Vec<(ContainerId, ServiceId, f64)> = node
            .container_ids()
            .into_iter()
            .filter_map(|c| {
                let meta = node.container(c)?;
                if meta.class.is_be() && !node.running_in(c).is_empty() {
                    let work: f64 = node.running_in(c).iter().map(|r| r.remaining_work).sum();
                    Some((c, meta.service, work))
                } else {
                    None
                }
            })
            .collect();
        candidates.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        for (ctr, service, _) in candidates {
            if fits(node) {
                break;
            }
            let interrupted = node.kill_container(ctr, now, now + self.be_restart_delay)?;
            evicted.extend(interrupted.into_iter().map(|r| (service, r)));
        }
        if fits(node) {
            Ok(evicted)
        } else {
            // shouldn't happen given the feasibility pre-check, but be safe
            Err(TangoError::Unschedulable(
                "could not free enough incompressible resources".into(),
            ))
        }
    }

    /// Recompute every active container's limits (see module docs) and
    /// apply them through D-VPA. `extra` accounts for a demand about to be
    /// admitted into a service's container.
    pub fn rebalance_with_extra(
        &mut self,
        node: &mut Node,
        extra: Option<(ServiceId, Resources)>,
        now: SimTime,
    ) {
        node.advance(now);
        let cap = node.capacity();
        // Gather per-container active demand.
        struct Entry {
            service: ServiceId,
            class: ServiceClass,
            active: Resources,
        }
        let mut entries: Vec<Entry> = Vec::new();
        for ctr in node.container_ids() {
            let Some(meta) = node.container(ctr) else {
                continue;
            };
            let mut active = Resources::ZERO;
            for r in node.running_in(ctr) {
                active += r.demand;
            }
            if let Some((svc, d)) = extra {
                if svc == meta.service {
                    active += d;
                }
            }
            entries.push(Entry {
                service: meta.service,
                class: meta.class,
                active,
            });
        }
        // LC containers take what they need; compute the leftover budget.
        let mut lc_cpu = 0u64;
        let mut lc_bw = 0u64;
        for e in entries.iter().filter(|e| e.class.is_lc()) {
            lc_cpu += e.active.cpu_milli;
            lc_bw += e.active.bandwidth_mbps;
        }
        let be_cpu_budget = cap.cpu_milli.saturating_sub(lc_cpu);
        let be_bw_budget = cap.bandwidth_mbps.saturating_sub(lc_bw);
        let be_cpu_demand: u64 = entries
            .iter()
            .filter(|e| e.class.is_be())
            .map(|e| e.active.cpu_milli)
            .sum();
        let be_bw_demand: u64 = entries
            .iter()
            .filter(|e| e.class.is_be())
            .map(|e| e.active.bandwidth_mbps)
            .sum();
        let cpu_factor = if be_cpu_demand > be_cpu_budget && be_cpu_demand > 0 {
            be_cpu_budget as f64 / be_cpu_demand as f64
        } else {
            1.0
        };
        let bw_factor = if be_bw_demand > be_bw_budget && be_bw_demand > 0 {
            be_bw_budget as f64 / be_bw_demand as f64
        } else {
            1.0
        };

        for e in &entries {
            let floor = self.floor(e.service);
            let target = match e.class {
                ServiceClass::Lc => {
                    // cover in-flight demand; never below the floor
                    e.active.max(&floor)
                }
                ServiceClass::Be => {
                    if e.active.is_zero() {
                        floor
                    } else {
                        let mut t = e.active;
                        t.cpu_milli = ((t.cpu_milli as f64) * cpu_factor).floor() as u64;
                        t.bandwidth_mbps = ((t.bandwidth_mbps as f64) * bw_factor).floor() as u64;
                        // keep a sliver of CPU so throttled BE still drains
                        t.cpu_milli = t.cpu_milli.max(10);
                        t
                    }
                }
            };
            // dvpa clamps incompressible dims to usage internally
            let _ = self.dvpa.scale(node, e.service, target, now);
        }
    }

    /// Reclaim resources after completions: shrink containers back to
    /// their active demands (§4.2: "reclaims them upon completion").
    pub fn rebalance(&mut self, node: &mut Node, now: SimTime) {
        self.rebalance_with_extra(node, None, now);
    }
}

/// The K8s-native baseline: fixed limits set at deployment, never changed,
/// no preemption, no rebalancing. Requests contend inside the static
/// limits, producing the paper's "turbulent allocation" (Fig. 9(c)).
#[derive(Debug, Default)]
pub struct StaticAllocator;

impl StaticAllocator {
    /// Admit without touching any limits. A request whose demand exceeds
    /// the fixed container limit is clamped to it — native K8s does not
    /// reject a request for being hungry; the kernel squeezes it inside
    /// the cgroup (the "unordered competition" of Fig. 9(c)). Fails only
    /// when the container's memory limit cannot take another resident.
    pub fn try_admit(
        &mut self,
        node: &mut Node,
        req: &Request,
        work_milli_ms: u64,
        now: SimTime,
    ) -> Result<AdmitOutcome, TangoError> {
        let clamped = match node
            .scaling_cgroups(req.service)
            .map(|(_, ctr_cg)| node.cgroups.limit(ctr_cg))
        {
            Some(limit) => req.demand.min(&limit).max(&Resources::new(1, 1, 0, 0)),
            None => req.demand,
        };
        node.admit(req.id, req.service, clamped, work_milli_ms, now)?;
        Ok(AdmitOutcome::default())
    }

    /// Migrated-pod admission under static limits: clamp into the fixed
    /// container limit like [`try_admit`](Self::try_admit), resume from
    /// the shipped residual work.
    pub fn try_admit_migrated(
        &mut self,
        node: &mut Node,
        request: tango_types::RequestId,
        service: ServiceId,
        demand: Resources,
        remaining_work: f64,
        now: SimTime,
    ) -> Result<(), TangoError> {
        let clamped = match node
            .scaling_cgroups(service)
            .map(|(_, ctr_cg)| node.cgroups.limit(ctr_cg))
        {
            Some(limit) => demand.min(&limit).max(&Resources::new(1, 1, 0, 0)),
            None => demand,
        };
        node.admit_migrated(request, service, clamped, remaining_work, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::{ClusterId, NodeId, RequestId, ServiceSpec, SimTime};

    fn spec(id: u16, class: ServiceClass, cpu: u64, mem: u64, work: u64) -> ServiceSpec {
        ServiceSpec {
            id: ServiceId(id),
            name: format!("svc{id}"),
            class,
            min_request: Resources::cpu_mem(cpu, mem),
            work_milli_ms: work,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        }
    }

    /// Node with one LC service (500m/256Mi) and one BE service
    /// (1000m/1024Mi), capacity 4 cores / 4 GiB.
    fn setup() -> (Node, ServiceSpec, ServiceSpec, HrmAllocator) {
        let mut n = Node::new(
            NodeId(1),
            ClusterId(0),
            false,
            Resources::new(4_000, 4_096, 1_000, 50_000),
        );
        let lc = spec(0, ServiceClass::Lc, 500, 256, 50_000);
        let be = spec(1, ServiceClass::Be, 1_000, 1_024, 2_000_000);
        n.deploy_service(&lc, lc.min_request, SimTime::ZERO)
            .unwrap();
        n.deploy_service(&be, be.min_request, SimTime::ZERO)
            .unwrap();
        let mut floors = HashMap::new();
        floors.insert(lc.id, lc.min_request);
        floors.insert(be.id, be.min_request);
        let alloc = HrmAllocator::new(floors);
        (n, lc, be, alloc)
    }

    fn lc_req(id: u64, spec: &ServiceSpec) -> Request {
        Request::new(
            RequestId(id),
            spec.id,
            spec.class,
            ClusterId(0),
            SimTime::ZERO,
            spec.min_request,
        )
    }

    #[test]
    fn be_fills_idle_resources() {
        let (mut n, _lc, be, mut alloc) = setup();
        // three BE requests of 1000m each fit in the 4000m node
        for i in 0..3 {
            let r = lc_req(i, &be);
            alloc
                .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        // container limit grew to cover all three (3000m)
        let ctr = n.container_for(be.id).unwrap();
        assert_eq!(n.effective_cpu(ctr), 3_000);
        // a fourth BE (would be 4000m total + lc floor) still fits idle:
        let r = lc_req(9, &be);
        alloc
            .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
            .unwrap();
        // a fifth does not: total held would exceed capacity
        let r = lc_req(10, &be);
        assert!(alloc
            .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn lc_preempts_compressible_by_throttling_be() {
        let (mut n, lc, be, mut alloc) = setup();
        // fill node with 4 BE requests: 4000m demand
        for i in 0..4 {
            let r = lc_req(i, &be);
            alloc
                .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        let be_ctr = n.container_for(be.id).unwrap();
        assert_eq!(n.effective_cpu(be_ctr), 4_000);
        // LC request arrives: feasible (lc_held + 500 <= 4000)
        let r = lc_req(100, &lc);
        let out = alloc
            .try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
            .unwrap();
        // no evictions: memory fits (4*1024 + 256 <= 4096)... wait, 4096+256
        // exceeds 4096 — so one BE container eviction would trigger. Use
        // the outcome to check consistency instead:
        let (lcu, beu) = n.demand_usage();
        let total_mem = lcu.memory_mib + beu.memory_mib;
        assert!(total_mem <= 4_096, "mem overcommitted: {total_mem}");
        // LC container runs at its demand; BE throttled below its demand
        let lc_ctr = n.container_for(lc.id).unwrap();
        assert_eq!(n.effective_cpu(lc_ctr), 500);
        if out.evicted.is_empty() {
            assert!(n.effective_cpu(be_ctr) < 4_000);
        }
    }

    #[test]
    fn lc_evicts_be_for_incompressible_memory() {
        let (mut n, lc, be, mut alloc) = setup();
        // 4 BE requests hold 4096 MiB — all node memory
        for i in 0..4 {
            let r = lc_req(i, &be);
            alloc
                .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        // LC needs 256 MiB: must evict the BE container
        let r = lc_req(100, &lc);
        let out = alloc
            .try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
            .unwrap();
        assert_eq!(out.evicted.len(), 4, "whole BE container evicted");
        assert!(out.evicted.iter().all(|(s, _)| *s == be.id));
        // BE container is restarting; LC is running
        let be_ctr = n.container_for(be.id).unwrap();
        assert!(!n.is_available(be_ctr, SimTime::from_millis(100)));
        assert_eq!(n.running_count(), 1);
    }

    #[test]
    fn be_cannot_preempt_lc() {
        let (mut n, lc, be, mut alloc) = setup();
        // 7 LC requests: 3500m of 4000m
        for i in 0..7 {
            let r = lc_req(i, &lc);
            alloc
                .try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        // BE asking 1000m: only 500m idle -> rejected
        let r = lc_req(50, &be);
        let err = alloc
            .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TangoError::InsufficientResources { .. }));
    }

    #[test]
    fn completion_reclaims_resources() {
        let (mut n, lc, _be, mut alloc) = setup();
        for i in 0..4 {
            let r = lc_req(i, &lc);
            alloc
                .try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        let lc_ctr = n.container_for(lc.id).unwrap();
        assert_eq!(n.effective_cpu(lc_ctr), 2_000);
        // all four complete at 100ms (each ran at its 500m demand)
        n.advance(SimTime::from_millis(100));
        assert_eq!(n.take_completions().len(), 4);
        alloc.rebalance(&mut n, SimTime::from_millis(100));
        // limit shrank back to the floor
        assert_eq!(n.effective_cpu(lc_ctr), 500);
    }

    #[test]
    fn throttled_be_runs_slower_but_finishes() {
        let (mut n, lc, be, mut alloc) = setup();
        // one BE request (1000m, 2_000_000 mcore·ms -> 2000ms alone)
        let r = lc_req(0, &be);
        alloc
            .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
            .unwrap();
        // six LC requests swallow 3000m; BE budget = 4000-3000-500(floor
        // of LC already counted as demand)... LC active = 3000 -> BE gets
        // 1000m budget but demand is 1000m -> no throttle. Add one more LC:
        for i in 1..=7 {
            let r = lc_req(i, &lc);
            alloc
                .try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        let be_ctr = n.container_for(be.id).unwrap();
        let be_cpu = n.effective_cpu(be_ctr);
        assert!(be_cpu < 1_000, "BE throttled to {be_cpu}");
        assert!(be_cpu >= 10, "BE keeps a survival sliver");
        // LC requests complete on time despite the BE presence
        n.advance(SimTime::from_millis(100));
        let done = n.take_completions();
        assert_eq!(done.len(), 7);
    }

    #[test]
    fn static_allocator_never_resizes() {
        // K8s-native gets a fixed limit sized for steady state: 500m CPU
        // (the contention point) but room for several requests' memory.
        let mut n = Node::new(
            NodeId(2),
            ClusterId(0),
            false,
            Resources::new(4_000, 4_096, 1_000, 50_000),
        );
        let lc = spec(0, ServiceClass::Lc, 500, 256, 50_000);
        n.deploy_service(&lc, Resources::new(500, 1_024, 100, 1_000), SimTime::ZERO)
            .unwrap();
        let mut stat = StaticAllocator;
        let lc_ctr = n.container_for(lc.id).unwrap();
        let before = n.effective_cpu(lc_ctr);
        for i in 0..2 {
            let r = lc_req(i, &lc);
            stat.try_admit(&mut n, &r, lc.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(n.effective_cpu(lc_ctr), before);
        // two 500m requests in a 500m container -> 250m each -> 200ms
        assert_eq!(
            n.next_completion(SimTime::ZERO).unwrap(),
            SimTime::from_millis(200)
        );
    }

    #[test]
    fn feasibility_rules_match_regulations() {
        let (mut n, lc, be, mut alloc) = setup();
        // node filled with BE
        for i in 0..4 {
            let r = lc_req(i, &be);
            alloc
                .try_admit(&mut n, &r, be.work_milli_ms, SimTime::ZERO)
                .unwrap();
        }
        // BE no longer feasible, LC still feasible (can reclaim BE)
        assert!(!HrmAllocator::feasible(
            &n,
            ServiceClass::Be,
            &be.min_request
        ));
        assert!(HrmAllocator::feasible(
            &n,
            ServiceClass::Lc,
            &lc.min_request
        ));
    }
}

//! The D-VPA component (§4.2, Fig. 5).
//!
//! Scales a *running* pod by writing its CGroup control files directly —
//! no delete-and-rebuild, no interruption. The kernel-faithful hierarchy
//! in `tango-cgroup` rejects out-of-order writes, so the sequencing here
//! is load-bearing:
//!
//! * pure expansion: pod-level first, then container-level;
//! * pure shrink: container-level first, then pod-level;
//! * mixed per-dimension changes: raise the pod to the element-wise max
//!   first, write the container target, then settle the pod on the target
//!   (at most three writes).
//!
//! Incompressible dimensions are clamped to current usage before writing —
//! the kernel would return `EBUSY` otherwise; the remaining shrink happens
//! naturally as requests complete and usage drains.

use tango_kube::Node;
use tango_types::{ResourceKind, Resources, ServiceId, SimTime, TangoError};

/// Result of one D-VPA scaling operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleOutcome {
    /// Control-file writes performed (2 for pure expand/shrink, 3 mixed,
    /// 0 when already at target).
    pub writes: u32,
    /// When the operation finished (now + per-op latency).
    pub completed_at: SimTime,
    /// The limit actually applied (after usage clamping).
    pub applied: Resources,
}

/// The dynamic vertical pod autoscaler.
#[derive(Debug, Clone)]
pub struct Dvpa {
    /// Modeled latency of one scaling operation. The paper measures 23 ms.
    pub op_latency: SimTime,
    /// Total scaling operations performed.
    pub ops: u64,
    /// Total control-file writes performed.
    pub total_writes: u64,
}

impl Default for Dvpa {
    fn default() -> Self {
        Dvpa {
            op_latency: SimTime::from_millis(23),
            ops: 0,
            total_writes: 0,
        }
    }
}

impl Dvpa {
    /// Scale `service` on `node` to `target` without interrupting it.
    pub fn scale(
        &mut self,
        node: &mut Node,
        service: ServiceId,
        target: Resources,
        now: SimTime,
    ) -> Result<ScaleOutcome, TangoError> {
        let (pod_cg, ctr_cg) = node
            .scaling_cgroups(service)
            .ok_or_else(|| TangoError::Unschedulable(format!("{service} not on {}", node.id)))?;

        // Usage clamp on incompressible dimensions.
        let usage = node.cgroups.usage(ctr_cg);
        let mut target = target;
        for kind in [ResourceKind::Memory, ResourceKind::Disk] {
            if target.get(kind) < usage.get(kind) {
                target.set(kind, usage.get(kind));
            }
        }

        let cur_pod = node.cgroups.limit(pod_cg);
        let cur_ctr = node.cgroups.limit(ctr_cg);
        if cur_pod == target && cur_ctr == target {
            return Ok(ScaleOutcome {
                writes: 0,
                completed_at: now,
                applied: target,
            });
        }

        let mut writes = 0u32;
        // Phase 1: make room at the pod level (expand-dims first).
        let pod_tmp = cur_pod.max(&target);
        if pod_tmp != cur_pod {
            node.cgroups.set_limit(now, pod_cg, pod_tmp)?;
            writes += 1;
        }
        // Phase 2: the container target is now always legal.
        if cur_ctr != target {
            node.cgroups.set_limit(now, ctr_cg, target)?;
            writes += 1;
        }
        // Phase 3: settle the pod on the target (shrink-dims last).
        if pod_tmp != target {
            node.cgroups.set_limit(now, pod_cg, target)?;
            writes += 1;
        }

        node.touch();
        self.ops += 1;
        self.total_writes += writes as u64;
        Ok(ScaleOutcome {
            writes,
            completed_at: now + self.op_latency,
            applied: target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::{ClusterId, NodeId, RequestId, ServiceClass, ServiceSpec};

    fn setup() -> (Node, ServiceSpec) {
        let mut n = Node::new(
            NodeId(1),
            ClusterId(0),
            false,
            Resources::new(8_000, 16_384, 1_000, 50_000),
        );
        let s = ServiceSpec {
            id: ServiceId(0),
            name: "svc".into(),
            class: ServiceClass::Lc,
            min_request: Resources::cpu_mem(500, 256),
            work_milli_ms: 50_000,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        };
        n.deploy_service(&s, Resources::new(1_000, 1_024, 100, 1_000), SimTime::ZERO)
            .unwrap();
        (n, s)
    }

    #[test]
    fn pure_expand_is_two_writes_pod_first() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        n.cgroups.clear_journal();
        let out = dvpa
            .scale(
                &mut n,
                s.id,
                Resources::new(2_000, 2_048, 200, 2_000),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.writes, 2);
        assert_eq!(out.completed_at, SimTime::from_millis(23));
        let j = n.cgroups.journal();
        assert!(j[0].path.contains("/pod") && !j[0].path.contains("/ctr"));
        assert!(j[1].path.contains("/ctr"));
    }

    #[test]
    fn pure_shrink_is_two_writes_container_first() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        n.cgroups.clear_journal();
        let out = dvpa
            .scale(
                &mut n,
                s.id,
                Resources::new(400, 512, 50, 500),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.writes, 2);
        let j = n.cgroups.journal();
        assert!(j[0].path.contains("/ctr"), "container written first");
        assert!(!j[1].path.contains("/ctr"), "pod written second");
    }

    #[test]
    fn mixed_change_is_three_writes() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        // grow CPU, shrink memory
        let out = dvpa
            .scale(
                &mut n,
                s.id,
                Resources::new(2_000, 512, 100, 1_000),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.writes, 3);
        let ctr = n.container_for(s.id).unwrap();
        assert_eq!(n.effective_cpu(ctr), 2_000);
    }

    #[test]
    fn scaling_does_not_interrupt_running_requests() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        dvpa.scale(
            &mut n,
            s.id,
            Resources::new(2_000, 2_048, 200, 2_000),
            SimTime::from_millis(10),
        )
        .unwrap();
        // request still running, container still available
        assert_eq!(n.running_count(), 1);
        let ctr = n.container_for(s.id).unwrap();
        assert!(n.is_available(ctr, SimTime::from_millis(10)));
        // and it completes on schedule (500m cap unchanged -> 100ms)
        n.advance(SimTime::from_millis(100));
        assert_eq!(n.take_completions().len(), 1);
    }

    #[test]
    fn incompressible_shrink_clamps_to_usage() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap(); // charges 256 MiB
        let out = dvpa
            .scale(
                &mut n,
                s.id,
                Resources::new(500, 100, 50, 500),
                SimTime::ZERO,
            )
            .unwrap();
        // memory clamped to the 256 MiB in use; disk clamped to charged 64
        assert_eq!(out.applied.memory_mib, 256);
        assert!(out.applied.disk_mib >= 64);
    }

    #[test]
    fn noop_scale_is_free() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        let cur = Resources::new(1_000, 1_024, 100, 1_000);
        let out = dvpa
            .scale(&mut n, s.id, cur, SimTime::from_millis(5))
            .unwrap();
        assert_eq!(out.writes, 0);
        assert_eq!(out.completed_at, SimTime::from_millis(5));
        assert_eq!(dvpa.ops, 0, "a no-op is not a scaling operation");
        assert_eq!(dvpa.total_writes, 0);
    }

    #[test]
    fn op_accounting_accumulates() {
        let (mut n, s) = setup();
        let mut dvpa = Dvpa::default();
        dvpa.scale(
            &mut n,
            s.id,
            Resources::new(2_000, 2_048, 200, 2_000),
            SimTime::ZERO,
        )
        .unwrap();
        dvpa.scale(
            &mut n,
            s.id,
            Resources::new(500, 512, 50, 500),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(dvpa.ops, 2);
        assert_eq!(dvpa.total_writes, 4);
    }

    #[test]
    fn unknown_service_errors() {
        let (mut n, _s) = setup();
        let mut dvpa = Dvpa::default();
        assert!(dvpa
            .scale(&mut n, ServiceId(99), Resources::ZERO, SimTime::ZERO)
            .is_err());
    }
}

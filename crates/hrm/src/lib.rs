//! Harmonious Resource Management (§4).
//!
//! HRM is Tango's elastic resource-allocation layer, three cooperating
//! pieces:
//!
//! * [`dvpa::Dvpa`] — the dynamic vertical pod autoscaler (§4.2): scales a
//!   running pod by writing pod-level and container-level CGroup limits in
//!   the mandatory order (expand: pod → container; shrink: container →
//!   pod), ~23 ms per operation, zero interruption — versus the native
//!   VPA's 2.3 s delete-and-rebuild.
//! * [`regulations::HrmAllocator`] — the resource-usage regulations
//!   (§4.1): BE services soak up all idle resources; LC requests may
//!   additionally claim BE-held *compressible* resources by throttling
//!   (CPU/bandwidth share transfer) and BE-held *incompressible* resources
//!   by evicting BE containers. After every admission/completion the
//!   allocator rebalances container limits through D-VPA.
//! * [`reassurance::Reassurer`] — the QoS re-assurance mechanism (§4.3,
//!   Algorithm 1): watches per-(node, service) slack scores δ = 1 − ξ/γ
//!   and nudges the service's minimum resource request up when δ < α
//!   (poor) and down when δ > β (excellent), in small, frequent steps.

pub mod dvpa;
pub mod reassurance;
pub mod regulations;

pub use dvpa::{Dvpa, ScaleOutcome};
pub use reassurance::{ReassuranceConfig, Reassurer};
pub use regulations::{AdmitOutcome, HrmAllocator, StaticAllocator};

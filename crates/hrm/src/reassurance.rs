//! The QoS re-assurance mechanism (§4.3, Algorithm 1).
//!
//! Per worker node and per service, the mechanism reads the slack score
//! δ = 1 − ξ/γ from the QoS detector every tick (the paper runs it "at a
//! high frequency with a small proportion" to keep adjustments smooth) and
//! adjusts the service's *minimum requested resource amount*:
//!
//! * δ < α (poor): increase the minimum request;
//! * δ > β (excellent): decrease it;
//! * otherwise (stable): leave it alone.
//!
//! The adjustment is a multiplicative factor on the service's base
//! `min_request`, clamped to a sane band. Both the demand attached to
//! newly dispatched requests and the t_i^k capacity terms of DSS-LC's
//! graphs (Eq. 2) read the adjusted value.

use tango_metrics::QosDetector;
use tango_types::FxHashMap;
use tango_types::{NodeId, Resources, ServiceId, SimTime};

/// Thresholds and step size for Algorithm 1.
#[derive(Debug, Clone)]
pub struct ReassuranceConfig {
    /// Poor-performance threshold α: increase resources when δ < α.
    pub alpha: f64,
    /// Excellent-performance threshold β: decrease resources when δ > β.
    pub beta: f64,
    /// Multiplicative step per tick ("small proportion").
    pub step: f64,
    /// Lower clamp on the factor.
    pub min_factor: f64,
    /// Upper clamp on the factor.
    pub max_factor: f64,
}

impl Default for ReassuranceConfig {
    fn default() -> Self {
        // α/β empirically chosen (§4.3 "we empirically establish two
        // thresholds"): grow when within 5% of the target, shrink only
        // when latency is below 30% of the target, and never shrink a
        // service below 70% of its base request — adjustments stay
        // "timely and smooth" without trading away the QoS margin.
        ReassuranceConfig {
            alpha: 0.05,
            beta: 0.7,
            step: 0.10,
            min_factor: 0.7,
            max_factor: 3.0,
        }
    }
}

/// One adjustment decision from a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjustment {
    /// Node the adjustment applies to.
    pub node: NodeId,
    /// Service being adjusted.
    pub service: ServiceId,
    /// The slack score that triggered it.
    pub slack: f64,
    /// The new factor.
    pub factor: f64,
}

/// The QoS re-assurer (one per master node in the paper's deployment; one
/// shared instance works identically in simulation because state is keyed
/// by node).
#[derive(Debug)]
pub struct Reassurer {
    cfg: ReassuranceConfig,
    factors: FxHashMap<(NodeId, ServiceId), f64>,
}

impl Reassurer {
    /// Create a re-assurer.
    pub fn new(cfg: ReassuranceConfig) -> Self {
        Reassurer {
            cfg,
            factors: FxHashMap::default(),
        }
    }

    /// Current factor for (node, service); 1.0 until adjusted.
    pub fn factor(&self, node: NodeId, service: ServiceId) -> f64 {
        self.factors.get(&(node, service)).copied().unwrap_or(1.0)
    }

    /// Whether any adjustment factor is currently in effect. While false,
    /// [`Self::min_request`] is a pure function of the base request —
    /// view builders hoist it out of their per-row loops.
    pub fn has_factors(&self) -> bool {
        !self.factors.is_empty()
    }

    /// The adjusted minimum request for (node, service) given the base.
    pub fn min_request(&self, node: NodeId, service: ServiceId, base: Resources) -> Resources {
        // Skip the per-row hash lookup while no adjustment exists (the
        // common steady state); the scale/max arithmetic is kept so the
        // result stays bit-identical with `factor(..) == 1.0`.
        let f = if self.factors.is_empty() {
            1.0
        } else {
            self.factor(node, service)
        };
        base.scale_f64(f).max(&Resources::new(1, 1, 0, 0))
    }

    /// Drop all factors for a node, returning every service to 1.0. A
    /// node recovering from a crash restarts with fresh containers, so the
    /// pre-crash adjustment history no longer describes it.
    pub fn reset_node(&mut self, node: NodeId) {
        self.factors.retain(|(n, _), _| *n != node);
    }

    /// Encode the adjustment factors for a checkpoint (sorted by key so
    /// the bytes are stable; the config is rebuilt from `TangoConfig`).
    pub fn snapshot(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        let mut keys: Vec<(NodeId, ServiceId)> = self.factors.keys().copied().collect();
        keys.sort_unstable();
        w.put_u64(keys.len() as u64);
        for k in keys {
            k.encode(w);
            w.put_f64(self.factors[&k]);
        }
    }

    /// Restore factors captured by [`Reassurer::snapshot`].
    pub fn restore(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::SnapDecode;
        let n = r.u64()? as usize;
        if n > r.remaining() {
            return Err(tango_snap::SnapError::Truncated);
        }
        let mut factors = FxHashMap::default();
        for _ in 0..n {
            let k = <(NodeId, ServiceId)>::decode(r)?;
            factors.insert(k, r.f64()?);
        }
        self.factors = factors;
        Ok(())
    }

    /// Run Algorithm 1 over every (node, service) pair with samples in the
    /// detector's window, using `targets` for γ lookup. Returns the
    /// adjustments made this tick.
    pub fn tick(
        &mut self,
        detector: &mut QosDetector,
        targets: &dyn Fn(ServiceId) -> SimTime,
        now: SimTime,
    ) -> Vec<Adjustment> {
        let mut out = Vec::new();
        for (node, service) in detector.active_pairs(now) {
            let target = targets(service);
            if target == SimTime::MAX {
                continue; // BE: no QoS target, nothing to re-assure
            }
            let Some(slack) = detector.slack(node, service, target, now) else {
                continue;
            };
            let entry = self.factors.entry((node, service)).or_insert(1.0);
            let old = *entry;
            if slack < self.cfg.alpha {
                *entry = (old * (1.0 + self.cfg.step)).min(self.cfg.max_factor);
            } else if slack > self.cfg.beta {
                *entry = (old * (1.0 - self.cfg.step)).max(self.cfg.min_factor);
            }
            if (*entry - old).abs() > f64::EPSILON {
                out.push(Adjustment {
                    node,
                    service,
                    slack,
                    factor: *entry,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn detector_with(node: u32, svc: u16, latency_ms: u64) -> QosDetector {
        let mut d = QosDetector::paper_default();
        for i in 0..5 {
            d.record(NodeId(node), ServiceId(svc), ms(10 + i), ms(latency_ms));
        }
        d
    }

    const TARGET: SimTime = SimTime(300_000); // 300ms

    fn targets(_: ServiceId) -> SimTime {
        TARGET
    }

    #[test]
    fn poor_slack_grows_the_minimum_request() {
        // latency 290ms vs target 300 -> δ ≈ 0.033 < α=0.1 -> grow
        let mut d = detector_with(1, 0, 290);
        let mut r = Reassurer::new(ReassuranceConfig::default());
        let adj = r.tick(&mut d, &targets, ms(50));
        assert_eq!(adj.len(), 1);
        assert!(adj[0].factor > 1.0);
        assert!(r.factor(NodeId(1), ServiceId(0)) > 1.0);
    }

    #[test]
    fn excellent_slack_shrinks_it() {
        // latency 60ms vs 300 -> δ = 0.8 > β=0.5 -> shrink
        let mut d = detector_with(1, 0, 60);
        let mut r = Reassurer::new(ReassuranceConfig::default());
        let adj = r.tick(&mut d, &targets, ms(50));
        assert_eq!(adj.len(), 1);
        assert!(adj[0].factor < 1.0);
    }

    #[test]
    fn stable_slack_leaves_it_alone() {
        // latency 210ms -> δ = 0.3, between α and β
        let mut d = detector_with(1, 0, 210);
        let mut r = Reassurer::new(ReassuranceConfig::default());
        let adj = r.tick(&mut d, &targets, ms(50));
        assert!(adj.is_empty());
        assert_eq!(r.factor(NodeId(1), ServiceId(0)), 1.0);
    }

    #[test]
    fn reset_node_returns_factors_to_one() {
        let mut d = detector_with(1, 0, 290);
        let mut r = Reassurer::new(ReassuranceConfig::default());
        r.tick(&mut d, &targets, ms(50));
        assert!(r.factor(NodeId(1), ServiceId(0)) > 1.0);
        r.reset_node(NodeId(1));
        assert_eq!(r.factor(NodeId(1), ServiceId(0)), 1.0);
    }

    #[test]
    fn factors_clamp_at_band_edges() {
        let cfg = ReassuranceConfig::default();
        let mut r = Reassurer::new(cfg.clone());
        // hammer "poor" for many ticks
        for t in 0..100u64 {
            let mut d = detector_with(1, 0, 400); // violating
            r.tick(&mut d, &targets, ms(50 + t));
        }
        assert!((r.factor(NodeId(1), ServiceId(0)) - cfg.max_factor).abs() < 1e-9);
        // hammer "excellent"
        for t in 0..200u64 {
            let mut d = detector_with(2, 0, 10);
            r.tick(&mut d, &targets, ms(50 + t));
        }
        assert!((r.factor(NodeId(2), ServiceId(0)) - cfg.min_factor).abs() < 1e-9);
    }

    #[test]
    fn be_services_are_ignored() {
        let mut d = detector_with(1, 5, 10_000);
        let mut r = Reassurer::new(ReassuranceConfig::default());
        let be_targets = |_: ServiceId| SimTime::MAX;
        let adj = r.tick(&mut d, &be_targets, ms(50));
        assert!(adj.is_empty());
    }

    #[test]
    fn min_request_scales_base() {
        let mut r = Reassurer::new(ReassuranceConfig::default());
        r.factors.insert((NodeId(1), ServiceId(0)), 2.0);
        let base = Resources::cpu_mem(500, 256);
        let adj = r.min_request(NodeId(1), ServiceId(0), base);
        assert_eq!(adj.cpu_milli, 1_000);
        assert_eq!(adj.memory_mib, 512);
        // unknown pair: factor 1
        assert_eq!(r.min_request(NodeId(9), ServiceId(0), base), base);
    }

    #[test]
    fn adjustments_are_per_node_and_service() {
        let mut d = QosDetector::paper_default();
        d.record(NodeId(1), ServiceId(0), ms(10), ms(400)); // poor
        d.record(NodeId(2), ServiceId(0), ms(10), ms(30)); // excellent
        let mut r = Reassurer::new(ReassuranceConfig::default());
        r.tick(&mut d, &targets, ms(50));
        assert!(r.factor(NodeId(1), ServiceId(0)) > 1.0);
        assert!(r.factor(NodeId(2), ServiceId(0)) < 1.0);
    }
}

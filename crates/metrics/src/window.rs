//! Sliding latency windows.
//!
//! §4.3: "The processing latency of LC service requests on each worker
//! node is collected within a time window of 100 ms." A [`LatencyWindow`]
//! keeps the (timestamp, latency) pairs of the last `width` of simulated
//! time and answers tail-percentile queries over them.

use crate::percentile::percentile;
use std::collections::VecDeque;
use tango_types::SimTime;

/// A time-bounded window of latency samples.
#[derive(Debug, Clone)]
pub struct LatencyWindow {
    pub(crate) width: SimTime,
    pub(crate) samples: VecDeque<(SimTime, SimTime)>,
}

impl LatencyWindow {
    /// Create a window covering the trailing `width` of time.
    pub fn new(width: SimTime) -> Self {
        LatencyWindow {
            width,
            samples: VecDeque::new(),
        }
    }

    /// The paper's 100 ms window.
    pub fn paper_default() -> Self {
        LatencyWindow::new(SimTime::from_millis(100))
    }

    /// Record a completed request's latency observed at time `at`.
    /// Samples must arrive in non-decreasing `at` order (the simulator
    /// guarantees this); out-of-order samples are still accepted but may
    /// be evicted early.
    pub fn record(&mut self, at: SimTime, latency: SimTime) {
        self.samples.push_back((at, latency));
    }

    /// Drop samples older than `now − width`.
    pub fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(self.width);
        while let Some(&(at, _)) = self.samples.front() {
            if at < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of samples currently in the window (after eviction at `now`).
    pub fn count(&mut self, now: SimTime) -> usize {
        self.evict(now);
        self.samples.len()
    }

    /// Tail latency ξ: the p-th percentile of samples within the window at
    /// `now`. `None` when the window is empty.
    pub fn tail(&mut self, now: SimTime, p: f64) -> Option<SimTime> {
        self.evict(now);
        let lats: Vec<SimTime> = self.samples.iter().map(|&(_, l)| l).collect();
        percentile(&lats, p)
    }

    /// p95 — the paper's QoS metric.
    pub fn p95(&mut self, now: SimTime) -> Option<SimTime> {
        self.tail(now, 95.0)
    }

    /// Mean latency over the window, for reporting.
    pub fn mean(&mut self, now: SimTime) -> Option<SimTime> {
        self.evict(now);
        if self.samples.is_empty() {
            return None;
        }
        let sum: u64 = self.samples.iter().map(|&(_, l)| l.as_micros()).sum();
        Some(SimTime::from_micros(sum / self.samples.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_window_has_no_tail() {
        let mut w = LatencyWindow::paper_default();
        assert_eq!(w.p95(ms(1_000)), None);
        assert_eq!(w.mean(ms(1_000)), None);
        assert_eq!(w.count(ms(1_000)), 0);
    }

    #[test]
    fn samples_age_out_after_width() {
        let mut w = LatencyWindow::new(ms(100));
        w.record(ms(0), ms(10));
        w.record(ms(50), ms(20));
        w.record(ms(120), ms(30));
        // at t=130: cutoff 30 -> the t=0 sample is gone
        assert_eq!(w.count(ms(130)), 2);
        // at t=220: cutoff 120 -> only the t=120 sample remains
        assert_eq!(w.count(ms(220)), 1);
        assert_eq!(w.p95(ms(220)), Some(ms(30)));
        // far future: empty
        assert_eq!(w.count(ms(1_000)), 0);
    }

    #[test]
    fn boundary_sample_exactly_at_cutoff_is_kept() {
        let mut w = LatencyWindow::new(ms(100));
        w.record(ms(100), ms(5));
        // cutoff at t=200 is 100; sample at 100 is NOT older than cutoff
        assert_eq!(w.count(ms(200)), 1);
        assert_eq!(w.count(ms(201)), 0);
    }

    #[test]
    fn p95_over_window_contents() {
        let mut w = LatencyWindow::new(ms(1_000));
        for i in 1..=100u64 {
            w.record(ms(i), ms(i));
        }
        assert_eq!(w.p95(ms(100)), Some(ms(95)));
    }

    #[test]
    fn mean_is_average() {
        let mut w = LatencyWindow::new(ms(1_000));
        w.record(ms(1), ms(10));
        w.record(ms(2), ms(30));
        assert_eq!(w.mean(ms(3)), Some(ms(20)));
    }
}

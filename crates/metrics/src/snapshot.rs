//! Checkpoint codecs for the telemetry state.
//!
//! Everything here is *state*, not cache: the QoS detector's latency
//! windows feed the re-assurer's slack decisions, the P² markers carry a
//! whole run's percentile estimate, the experiment counters are the final
//! report, and the state storage is read by dispatch rounds between Sync
//! ticks — none of it can be rebuilt from the config. Hash maps are
//! encoded sorted by key so snapshots are byte-stable.

use crate::counters::{Accum, ExperimentCounters};
use crate::p2::P2Quantile;
use crate::qos::QosDetector;
use crate::store::{NodeRole, NodeSnapshot, StateStorage};
use crate::window::LatencyWindow;
use std::collections::VecDeque;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ClusterId, FxHashMap, NodeId, Resources, ServiceId, SimTime};

impl SnapEncode for LatencyWindow {
    fn encode(&self, w: &mut SnapWriter) {
        self.width.encode(w);
        self.samples.encode(w);
    }
}
impl SnapDecode for LatencyWindow {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LatencyWindow {
            width: SimTime::decode(r)?,
            samples: VecDeque::<(SimTime, SimTime)>::decode(r)?,
        })
    }
}

impl SnapEncode for QosDetector {
    fn encode(&self, w: &mut SnapWriter) {
        self.width.encode(w);
        w.put_u64(self.window_count() as u64);
        for (k, window) in self.sorted_windows() {
            k.encode(w);
            window.encode(w);
        }
    }
}
impl SnapDecode for QosDetector {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let width = SimTime::decode(r)?;
        let n = r.u64()? as usize;
        if n > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut d = QosDetector::new(width);
        for _ in 0..n {
            let (node, service) = <(NodeId, ServiceId)>::decode(r)?;
            d.insert_window(node, service, LatencyWindow::decode(r)?);
        }
        Ok(d)
    }
}

impl SnapEncode for Accum {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.lc_arrived);
        w.put_u64(self.lc_completed);
        w.put_u64(self.lc_satisfied);
        w.put_u64(self.be_completed);
        w.put_u64(self.abandoned);
        w.put_f64(self.util_sum.0);
        w.put_f64(self.util_sum.1);
        w.put_f64(self.util_sum.2);
        w.put_u64(self.util_samples);
        self.lc_latencies_us.encode(w);
        w.put_u64(self.fault_qos_violations);
        w.put_u64(self.detection_lag_us_sum);
        w.put_u64(self.detections);
        w.put_u64(self.proxy_fallbacks);
        w.put_u64(self.migrations_started);
        w.put_u64(self.migrations_completed);
        w.put_u64(self.cloud_egress_kib);
    }
}
impl SnapDecode for Accum {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Accum {
            lc_arrived: r.u64()?,
            lc_completed: r.u64()?,
            lc_satisfied: r.u64()?,
            be_completed: r.u64()?,
            abandoned: r.u64()?,
            util_sum: (r.f64()?, r.f64()?, r.f64()?),
            util_samples: r.u64()?,
            lc_latencies_us: Vec::<u64>::decode(r)?,
            fault_qos_violations: r.u64()?,
            detection_lag_us_sum: r.u64()?,
            detections: r.u64()?,
            proxy_fallbacks: r.u64()?,
            migrations_started: r.u64()?,
            migrations_completed: r.u64()?,
            cloud_egress_kib: r.u64()?,
        })
    }
}

impl SnapEncode for ExperimentCounters {
    fn encode(&self, w: &mut SnapWriter) {
        self.period.encode(w);
        self.buckets.encode(w);
    }
}
impl SnapDecode for ExperimentCounters {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let period = SimTime::decode(r)?;
        if period == SimTime::ZERO {
            return Err(SnapError::Corrupt("zero counters period"));
        }
        Ok(ExperimentCounters {
            period,
            buckets: Vec::<Accum>::decode(r)?,
        })
    }
}

impl SnapEncode for P2Quantile {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_f64(self.q);
        self.heights.encode(w);
        self.positions.encode(w);
        self.desired.encode(w);
        self.increments.encode(w);
        w.put_u64(self.count as u64);
    }
}
impl SnapDecode for P2Quantile {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(P2Quantile {
            q: r.f64()?,
            heights: <[f64; 5]>::decode(r)?,
            positions: <[f64; 5]>::decode(r)?,
            desired: <[f64; 5]>::decode(r)?,
            increments: <[f64; 5]>::decode(r)?,
            count: r.u64()? as usize,
        })
    }
}

impl SnapEncode for NodeRole {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            NodeRole::Master => 0,
            NodeRole::Worker => 1,
        });
    }
}
impl SnapDecode for NodeRole {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(NodeRole::Master),
            1 => Ok(NodeRole::Worker),
            _ => Err(SnapError::Corrupt("node role tag")),
        }
    }
}

fn encode_sorted_map<K, V, F>(w: &mut SnapWriter, map: &FxHashMap<K, V>, put_v: F)
where
    K: Copy + Ord + std::hash::Hash + Eq + SnapEncode,
    F: Fn(&mut SnapWriter, &V),
{
    let mut keys: Vec<K> = map.keys().copied().collect();
    keys.sort_unstable();
    w.put_u64(keys.len() as u64);
    for k in keys {
        k.encode(w);
        put_v(w, &map[&k]);
    }
}

fn decode_map<K, V, F>(r: &mut SnapReader<'_>, get_v: F) -> Result<FxHashMap<K, V>, SnapError>
where
    K: Copy + Ord + std::hash::Hash + Eq + SnapDecode,
    F: Fn(&mut SnapReader<'_>) -> Result<V, SnapError>,
{
    let n = r.u64()? as usize;
    if n > r.remaining() {
        return Err(SnapError::Truncated);
    }
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let k = K::decode(r)?;
        map.insert(k, get_v(r)?);
    }
    Ok(map)
}

impl SnapEncode for NodeSnapshot {
    fn encode(&self, w: &mut SnapWriter) {
        self.node.encode(w);
        self.cluster.encode(w);
        self.role.encode(w);
        self.total.encode(w);
        self.available.encode(w);
        self.be_held.encode(w);
        encode_sorted_map(w, &self.slack, |w, v| w.put_f64(*v));
        encode_sorted_map(w, &self.pending, |w, v| w.put_u32(*v));
        self.updated_at.encode(w);
    }
}
impl SnapDecode for NodeSnapshot {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeSnapshot {
            node: NodeId::decode(r)?,
            cluster: ClusterId::decode(r)?,
            role: NodeRole::decode(r)?,
            total: Resources::decode(r)?,
            available: Resources::decode(r)?,
            be_held: Resources::decode(r)?,
            slack: decode_map(r, |r| r.f64())?,
            pending: decode_map(r, |r| r.u32())?,
            updated_at: SimTime::decode(r)?,
        })
    }
}

impl StateStorage {
    /// Encode every pushed node snapshot (sorted by node id).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        self.all().encode(w);
    }

    /// Overlay a [`StateStorage::snapshot`] payload: every decoded entry
    /// is pushed, replacing whatever the fresh store held for that node.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for snap in Vec::<NodeSnapshot>::decode(r)? {
            self.push(snap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_bytes<T: SnapEncode>(v: &T) -> Vec<u8> {
        let mut w = SnapWriter::new();
        v.encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn qos_detector_round_trips_with_windows() {
        let mut d = QosDetector::paper_default();
        d.record(
            NodeId(2),
            ServiceId(1),
            SimTime::from_millis(10),
            SimTime::from_millis(40),
        );
        d.record(
            NodeId(1),
            ServiceId(0),
            SimTime::from_millis(20),
            SimTime::from_millis(90),
        );
        let bytes = round_trip_bytes(&d);
        let mut r = SnapReader::new(&bytes);
        let mut back = QosDetector::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(
            back.tail(NodeId(1), ServiceId(0), SimTime::from_millis(50)),
            d.tail(NodeId(1), ServiceId(0), SimTime::from_millis(50))
        );
        assert_eq!(
            back.active_pairs(SimTime::from_millis(50)),
            d.active_pairs(SimTime::from_millis(50))
        );
    }

    #[test]
    fn counters_round_trip_preserves_report() {
        let mut c = ExperimentCounters::paper_default();
        c.on_lc_arrival(SimTime::from_millis(100));
        c.on_lc_complete(SimTime::from_millis(200), SimTime::from_millis(42), true);
        c.on_be_complete(SimTime::from_millis(900));
        c.sample_utilization(SimTime::from_millis(400), 0.5, 0.3, 0.2);
        c.on_fault_qos_violation(SimTime::from_millis(850));
        c.on_migration_started(SimTime::from_millis(860));
        c.on_migration_completed(SimTime::from_millis(910));
        c.on_cloud_egress(SimTime::from_millis(860), 832);
        let bytes = round_trip_bytes(&c);
        let mut r = SnapReader::new(&bytes);
        let back = ExperimentCounters::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.periods(), c.periods());
        assert_eq!(back.be_throughput(), c.be_throughput());
    }

    #[test]
    fn p2_round_trip_is_exact() {
        let mut p = P2Quantile::p95();
        for i in 0..1_000 {
            p.observe((i * 7 % 101) as f64);
        }
        let bytes = round_trip_bytes(&p);
        let mut r = SnapReader::new(&bytes);
        let back = P2Quantile::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.estimate(), p.estimate());
        assert_eq!(back.count(), p.count());
    }

    #[test]
    fn state_storage_round_trips_sorted() {
        let mut store = StateStorage::new();
        for node in [3u32, 1, 2] {
            let mut slack = FxHashMap::default();
            slack.insert(ServiceId(0), 0.25);
            store.push(NodeSnapshot {
                node: NodeId(node),
                cluster: ClusterId(0),
                role: NodeRole::Worker,
                total: Resources::cpu_mem(4_000, 8_192),
                available: Resources::cpu_mem(1_000 * node as u64, 1_024),
                be_held: Resources::ZERO,
                slack,
                pending: FxHashMap::default(),
                updated_at: SimTime::from_millis(7),
            });
        }
        let mut w = SnapWriter::new();
        store.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = StateStorage::new();
        let mut r = SnapReader::new(&bytes);
        fresh.restore(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(fresh.len(), 3);
        assert_eq!(
            fresh.get(NodeId(2)).unwrap().available.cpu_milli,
            store.get(NodeId(2)).unwrap().available.cpu_milli
        );
    }

    #[test]
    fn bad_role_tag_is_typed() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(
            NodeRole::decode(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }
}

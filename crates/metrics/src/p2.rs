//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, 1985).
//!
//! The exact windows in [`crate::window`] are right for the QoS detector's
//! small 100 ms windows; the P² estimator serves the *long-horizon*
//! percentiles (a whole run's p95, Fig. 11(b)'s tail latency) in O(1)
//! memory instead of buffering every completion of a multi-hour trace.

use tango_types::SimTime;

/// Streaming estimator for a single quantile q ∈ (0, 1).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    pub(crate) q: f64,
    /// marker heights
    pub(crate) heights: [f64; 5],
    /// marker positions (1-based, as in the paper)
    pub(crate) positions: [f64; 5],
    /// desired marker positions
    pub(crate) desired: [f64; 5],
    /// increments to desired positions
    pub(crate) increments: [f64; 5],
    pub(crate) count: usize,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` (clamped to (0.001, 0.999)).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.001, 0.999);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// A p95 estimator.
    pub fn p95() -> Self {
        P2Quantile::new(0.95)
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            }
            return;
        }
        self.count += 1;

        // locate cell k such that heights[k] <= x < heights[k+1]
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // adjust interior markers with the piecewise-parabolic formula
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d_sign = d.signum();
                let parabolic = self.heights[i]
                    + d_sign / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + d_sign)
                            * (self.heights[i + 1] - self.heights[i])
                            / right
                            + (self.positions[i + 1] - self.positions[i] - d_sign)
                                * (self.heights[i] - self.heights[i - 1])
                                / -left);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        // linear fallback
                        let j = if d_sign > 0.0 { i + 1 } else { i - 1 };
                        self.heights[i]
                            + d_sign * (self.heights[j] - self.heights[i])
                                / (self.positions[j] - self.positions[i])
                    };
                self.heights[i] = new_height;
                self.positions[i] += d_sign;
            }
        }
    }

    /// Feed a latency observation.
    pub fn observe_time(&mut self, t: SimTime) {
        self.observe(t.as_millis_f64());
    }

    /// Current estimate; `None` until at least one sample arrived. For
    /// fewer than five samples, falls back to the exact small-sample
    /// quantile.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut v = self.heights[..n].to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n) - 1;
                Some(v[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_simcore::SimRng;

    #[test]
    fn empty_and_small_sample_paths() {
        let mut p = P2Quantile::p95();
        assert_eq!(p.estimate(), None);
        p.observe(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.observe(20.0);
        p.observe(5.0);
        // 3 samples, p95 -> max
        assert_eq!(p.estimate(), Some(20.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SimRng::new(7);
        for _ in 0..50_000 {
            p.observe(rng.range_f64(0.0, 100.0));
        }
        let est = p.estimate().unwrap();
        assert!((est - 50.0).abs() < 2.0, "median est = {est}");
    }

    #[test]
    fn p95_of_uniform_converges() {
        let mut p = P2Quantile::p95();
        let mut rng = SimRng::new(11);
        for _ in 0..50_000 {
            p.observe(rng.range_f64(0.0, 1000.0));
        }
        let est = p.estimate().unwrap();
        assert!((est - 950.0).abs() < 15.0, "p95 est = {est}");
    }

    #[test]
    fn p95_of_exponential_close_to_exact() {
        // exponential(mean 100): p95 = -100 ln(0.05) ≈ 299.6
        let mut p = P2Quantile::p95();
        let mut rng = SimRng::new(13);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.exponential(100.0);
            p.observe(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = all[(0.95 * all.len() as f64) as usize];
        let est = p.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.08,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn observe_time_uses_millis() {
        let mut p = P2Quantile::new(0.5);
        for i in 1..=5u64 {
            p.observe_time(SimTime::from_millis(i * 10));
        }
        let est = p.estimate().unwrap();
        assert!((10.0..=50.0).contains(&est));
    }

    /// Property test: across many seeds and distribution shapes, the P²
    /// p95 estimate must stay within 10% relative error (absolute 2.0 for
    /// tiny values) of the exact sample p95. The 10% bound is what the
    /// estimator's piecewise-parabolic interpolation guarantees in
    /// practice for ≥10k unimodal samples — heavier error means a marker
    /// update regression, not noise.
    #[test]
    fn p95_tracks_exact_quantile_across_seeded_streams() {
        const N: usize = 10_000;
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed * 7919 + 1);
            // alternate distribution families per seed
            let sample = |rng: &mut SimRng| -> f64 {
                match seed % 4 {
                    0 => rng.range_f64(0.0, 500.0),
                    1 => rng.exponential(80.0),
                    2 => rng.log_normal(3.0, 0.5),
                    _ => rng.normal(200.0, 25.0).abs(),
                }
            };
            let mut p = P2Quantile::p95();
            let mut all = Vec::with_capacity(N);
            for _ in 0..N {
                let x = sample(&mut rng);
                p.observe(x);
                all.push(x);
            }
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = all[((0.95 * N as f64).ceil() as usize).clamp(1, N) - 1];
            let est = p.estimate().unwrap();
            let err = (est - exact).abs();
            assert!(
                err / exact.max(1e-9) < 0.10 || err < 2.0,
                "seed {seed}: est {est} vs exact {exact} (rel err {:.3})",
                err / exact
            );
        }
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut p = P2Quantile::p95();
        for _ in 0..1_000 {
            p.observe(42.0);
        }
        assert_eq!(p.estimate(), Some(42.0));
    }
}

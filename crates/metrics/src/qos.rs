//! Slack scores and the QoS detector (§4.3).
//!
//! The slack score of service k at node n is δ = 1 − ξ/γ where ξ is the
//! p95 tail latency over the trailing 100 ms window and γ the service's
//! QoS target. Negative slack means the QoS target is being violated; the
//! re-assurance mechanism compares δ against thresholds α and β to decide
//! whether to grow or shrink the service's minimum resource request.

use crate::window::LatencyWindow;
use tango_types::FxHashMap;
use tango_types::{NodeId, ServiceId, SimTime};

/// δ = 1 − ξ/γ. BE services (γ = `SimTime::MAX`) always report full slack.
pub fn slack_score(tail: SimTime, target: SimTime) -> f64 {
    if target == SimTime::MAX {
        return 1.0;
    }
    if target == SimTime::ZERO {
        // degenerate target: any latency is a violation
        return if tail == SimTime::ZERO {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - tail.as_micros() as f64 / target.as_micros() as f64
}

/// One node's latency windows, keyed by service. A row of the detector:
/// the sharded sync loop hands each shard `&mut` rows for its own nodes
/// so slack queries (whose window pruning mutates state) run in parallel
/// without cross-node interference.
#[derive(Debug, Default)]
pub struct NodeWindows {
    windows: FxHashMap<ServiceId, LatencyWindow>,
}

impl NodeWindows {
    /// p95 tail latency ξ for one service at `now`.
    pub fn tail(&mut self, service: ServiceId, now: SimTime) -> Option<SimTime> {
        self.windows.get_mut(&service)?.p95(now)
    }

    /// Slack δ for one service at `now`; `None` when no samples exist in
    /// the window.
    pub fn slack(&mut self, service: ServiceId, target: SimTime, now: SimTime) -> Option<f64> {
        let tail = self.tail(service, now)?;
        Some(slack_score(tail, target))
    }

    /// Services with a window, in sorted order (empty windows included).
    fn sorted_services(&self) -> Vec<ServiceId> {
        let mut v: Vec<ServiceId> = self.windows.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Collects per-(node, service) latency windows and answers slack queries —
/// the QoS detector of Fig. 3 ➍. Windows are stored as one row per node
/// ([`NodeWindows`]) so the sync loop can query shards of nodes in
/// parallel.
#[derive(Debug)]
pub struct QosDetector {
    pub(crate) width: SimTime,
    nodes: Vec<NodeWindows>,
}

impl QosDetector {
    /// Create a detector using `width` windows (paper: 100 ms).
    pub fn new(width: SimTime) -> Self {
        QosDetector {
            width,
            nodes: Vec::new(),
        }
    }

    /// Detector with the paper's 100 ms window.
    pub fn paper_default() -> Self {
        QosDetector::new(SimTime::from_millis(100))
    }

    /// Grow the row table to cover node ids `0..n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize_with(n, NodeWindows::default);
        }
    }

    /// Mutable rows, indexed by node id, for sharded queries.
    pub fn rows_mut(&mut self) -> &mut [NodeWindows] {
        &mut self.nodes
    }

    /// Record a completed LC request's latency.
    pub fn record(&mut self, node: NodeId, service: ServiceId, at: SimTime, latency: SimTime) {
        self.ensure_nodes(node.index() + 1);
        self.nodes[node.index()]
            .windows
            .entry(service)
            .or_insert_with(|| LatencyWindow::new(self.width))
            .record(at, latency);
    }

    /// p95 tail latency ξ of (node, service) at `now`.
    pub fn tail(&mut self, node: NodeId, service: ServiceId, now: SimTime) -> Option<SimTime> {
        self.nodes.get_mut(node.index())?.tail(service, now)
    }

    /// Slack δ of (node, service) at `now`; `None` when no samples exist
    /// in the window (no signal — the re-assurer leaves the service alone).
    pub fn slack(
        &mut self,
        node: NodeId,
        service: ServiceId,
        target: SimTime,
        now: SimTime,
    ) -> Option<f64> {
        let tail = self.tail(node, service, now)?;
        Some(slack_score(tail, target))
    }

    /// Drop all latency history for a node. Called when the node crashes:
    /// whatever tail-latency behaviour it had before the fault says
    /// nothing about the recovered instance, which re-admits cold.
    pub fn forget_node(&mut self, node: NodeId) {
        if let Some(row) = self.nodes.get_mut(node.index()) {
            row.windows.clear();
        }
    }

    /// All (node, service) pairs with at least one sample in their window.
    pub fn active_pairs(&mut self, now: SimTime) -> Vec<(NodeId, ServiceId)> {
        let mut pairs = Vec::new();
        for (i, row) in self.nodes.iter_mut().enumerate() {
            let mut services: Vec<ServiceId> = row
                .windows
                .iter_mut()
                .filter_map(|(&s, w)| (w.count(now) > 0).then_some(s))
                .collect();
            services.sort_unstable();
            pairs.extend(services.into_iter().map(|s| (NodeId(i as u32), s)));
        }
        pairs
    }

    /// All windows as sorted `((node, service), window)` references, for
    /// the snapshot codec. Node-major with services sorted within a node
    /// equals the former global `(NodeId, ServiceId)` sort order, so the
    /// wire format is unchanged.
    pub(crate) fn sorted_windows(&self) -> Vec<((NodeId, ServiceId), &LatencyWindow)> {
        let mut out = Vec::new();
        for (i, row) in self.nodes.iter().enumerate() {
            for s in row.sorted_services() {
                out.push(((NodeId(i as u32), s), &row.windows[&s]));
            }
        }
        out
    }

    /// Insert one decoded window (snapshot restore path).
    pub(crate) fn insert_window(&mut self, node: NodeId, service: ServiceId, w: LatencyWindow) {
        self.ensure_nodes(node.index() + 1);
        self.nodes[node.index()].windows.insert(service, w);
    }

    /// Total number of windows (for the snapshot codec's length prefix).
    pub(crate) fn window_count(&self) -> usize {
        self.nodes.iter().map(|r| r.windows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn slack_is_one_minus_ratio() {
        assert!((slack_score(ms(150), ms(300)) - 0.5).abs() < 1e-12);
        assert!((slack_score(ms(300), ms(300)) - 0.0).abs() < 1e-12);
        // violation: tail 450 vs target 300 -> δ = -0.5
        assert!((slack_score(ms(450), ms(300)) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn be_services_always_have_full_slack() {
        assert_eq!(slack_score(ms(10_000), SimTime::MAX), 1.0);
    }

    #[test]
    fn zero_target_is_degenerate() {
        assert_eq!(slack_score(SimTime::ZERO, SimTime::ZERO), 1.0);
        assert_eq!(slack_score(ms(1), SimTime::ZERO), f64::NEG_INFINITY);
    }

    #[test]
    fn detector_tracks_per_pair_windows() {
        let mut d = QosDetector::paper_default();
        let (n1, n2) = (NodeId(1), NodeId(2));
        let s = ServiceId(0);
        d.record(n1, s, ms(10), ms(100));
        d.record(n2, s, ms(10), ms(400));
        let t = ms(50);
        assert_eq!(d.tail(n1, s, t), Some(ms(100)));
        assert_eq!(d.tail(n2, s, t), Some(ms(400)));
        // node 1 healthy, node 2 violating a 300ms target
        assert!(d.slack(n1, s, ms(300), t).unwrap() > 0.0);
        assert!(d.slack(n2, s, ms(300), t).unwrap() < 0.0);
    }

    #[test]
    fn forget_node_drops_only_that_nodes_history() {
        let mut d = QosDetector::paper_default();
        let (n1, n2) = (NodeId(1), NodeId(2));
        let s = ServiceId(0);
        d.record(n1, s, ms(10), ms(100));
        d.record(n2, s, ms(10), ms(400));
        d.forget_node(n1);
        assert_eq!(d.tail(n1, s, ms(50)), None);
        assert_eq!(d.tail(n2, s, ms(50)), Some(ms(400)));
    }

    #[test]
    fn no_samples_means_no_slack_signal() {
        let mut d = QosDetector::paper_default();
        assert_eq!(d.slack(NodeId(9), ServiceId(9), ms(300), ms(50)), None);
    }

    #[test]
    fn samples_age_out_of_the_detector() {
        let mut d = QosDetector::paper_default();
        d.record(NodeId(1), ServiceId(0), ms(10), ms(100));
        assert!(d.tail(NodeId(1), ServiceId(0), ms(50)).is_some());
        assert!(d.tail(NodeId(1), ServiceId(0), ms(500)).is_none());
    }

    #[test]
    fn active_pairs_sorted_and_filtered() {
        let mut d = QosDetector::paper_default();
        d.record(NodeId(2), ServiceId(1), ms(10), ms(1));
        d.record(NodeId(1), ServiceId(3), ms(20), ms(1));
        d.record(NodeId(1), ServiceId(0), ms(990), ms(1));
        let pairs = d.active_pairs(ms(1_000));
        assert_eq!(pairs, vec![(NodeId(1), ServiceId(0))]); // others aged out
    }
}

//! Telemetry for Tango: the state storage fed by Prometheus-style scrapes
//! and the QoS detector (§3 ➋➍).
//!
//! * [`window`] — sliding 100 ms latency windows with exact tail-percentile
//!   queries (the paper's QoS metric is p95 within a 100 ms window, §4.3);
//! * [`qos`] — slack scores δ = 1 − ξ/γ and the per-(node, service)
//!   QoS detector;
//! * [`store`] — the state storage each master consults: per-node resource
//!   snapshots plus RTT and slack, safely shared between the cluster
//!   control threads;
//! * [`counters`] — experiment accounting: per-period utilization,
//!   QoS-guarantee satisfaction rate and BE throughput, i.e. the y-axes of
//!   every figure in §7;
//! * [`trace`] — zero-cost stage-boundary trace hooks: the [`TraceSink`]
//!   interface the core runtime emits into, the no-op default, and a
//!   ring-buffer recorder for per-request timelines.

pub mod counters;
pub mod p2;
pub mod percentile;
pub mod qos;
pub mod snapshot;
pub mod store;
pub mod trace;
pub mod window;

pub use counters::{ExperimentCounters, PeriodRecord};
pub use p2::P2Quantile;
pub use percentile::percentile;
pub use qos::{slack_score, NodeWindows, QosDetector};
pub use store::{NodeRole, NodeSnapshot, StateStorage, StoreRow};
pub use trace::{
    NoopTrace, TraceEvent, TraceLane, TraceRecorder, TraceSink, DEFAULT_TRACE_CAPACITY,
};
pub use window::LatencyWindow;

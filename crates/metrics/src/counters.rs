//! Experiment accounting.
//!
//! §6.2: "each period in figures represents 800 ms, which is the frequency
//! at which we collect data". [`ExperimentCounters`] buckets every request
//! outcome and utilization sample into such periods and yields one
//! [`PeriodRecord`] per period — the rows behind every §7 figure — plus the
//! cumulative objectives of Eq. 1: the QoS-guarantee satisfaction rate φ
//! for LC and the long-term throughput φ′ for BE.

use tango_types::SimTime;

/// Aggregates for one reporting period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeriodRecord {
    /// Period index (time / period length).
    pub index: u64,
    /// LC requests that arrived in this period (Q_{b,t} summed over b).
    pub lc_arrived: u64,
    /// LC requests completed in this period.
    pub lc_completed: u64,
    /// LC requests completed within their QoS target (q_{b,t}).
    pub lc_satisfied: u64,
    /// BE requests completed in this period (q'_{b,t}).
    pub be_completed: u64,
    /// Requests abandoned in this period.
    pub abandoned: u64,
    /// Mean overall resource utilization sampled in this period, [0, 1].
    pub util_overall: f64,
    /// Mean utilization attributable to LC containers.
    pub util_lc: f64,
    /// Mean utilization attributable to BE containers.
    pub util_be: f64,
    /// p95 latency of LC completions in this period, ms (0 when none).
    pub lc_p95_ms: f64,
    /// LC completions that missed their QoS target while a fault (node
    /// down, link degraded, partition) was active in this period.
    pub fault_qos_violations: u64,
    /// Mean keep-alive detection lag (fault injection → detector trip)
    /// over the crashes detected in this period, in ms (0 when none).
    pub detection_lag_ms: f64,
    /// Dispatch rounds a delegated decision source answered but the
    /// reply was discarded (malformed, inconsistent, or over its
    /// sim-time deadline) and the local policy planned instead.
    pub proxy_fallbacks: u64,
    /// Migrations initiated in this period (pod detached, transfer
    /// started).
    pub migrations_started: u64,
    /// Migrations that landed in this period (pod resumed on its
    /// destination).
    pub migrations_completed: u64,
    /// KiB sent toward the cloud tier in this period: BE forward
    /// payloads of cloud placements plus migration state transfers.
    pub cloud_egress_kib: u64,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Accum {
    pub(crate) lc_arrived: u64,
    pub(crate) lc_completed: u64,
    pub(crate) lc_satisfied: u64,
    pub(crate) be_completed: u64,
    pub(crate) abandoned: u64,
    pub(crate) util_sum: (f64, f64, f64),
    pub(crate) util_samples: u64,
    pub(crate) lc_latencies_us: Vec<u64>,
    pub(crate) fault_qos_violations: u64,
    pub(crate) detection_lag_us_sum: u64,
    pub(crate) detections: u64,
    pub(crate) proxy_fallbacks: u64,
    pub(crate) migrations_started: u64,
    pub(crate) migrations_completed: u64,
    pub(crate) cloud_egress_kib: u64,
}

/// Period-bucketed experiment counters.
#[derive(Debug)]
pub struct ExperimentCounters {
    pub(crate) period: SimTime,
    pub(crate) buckets: Vec<Accum>,
}

impl ExperimentCounters {
    /// Create counters with the given period length.
    pub fn new(period: SimTime) -> Self {
        assert!(period > SimTime::ZERO, "period must be positive");
        ExperimentCounters {
            period,
            buckets: Vec::new(),
        }
    }

    /// The paper's 800 ms reporting period.
    pub fn paper_default() -> Self {
        ExperimentCounters::new(SimTime::from_millis(800))
    }

    fn bucket(&mut self, at: SimTime) -> &mut Accum {
        let idx = (at.as_micros() / self.period.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Accum::default());
        }
        &mut self.buckets[idx]
    }

    /// An LC request arrived.
    pub fn on_lc_arrival(&mut self, at: SimTime) {
        self.bucket(at).lc_arrived += 1;
    }

    /// An LC request completed; `within_qos` per its service target.
    pub fn on_lc_complete(&mut self, at: SimTime, latency: SimTime, within_qos: bool) {
        let b = self.bucket(at);
        b.lc_completed += 1;
        if within_qos {
            b.lc_satisfied += 1;
        }
        b.lc_latencies_us.push(latency.as_micros());
    }

    /// A BE request completed.
    pub fn on_be_complete(&mut self, at: SimTime) {
        self.bucket(at).be_completed += 1;
    }

    /// A request was abandoned.
    pub fn on_abandon(&mut self, at: SimTime) {
        self.bucket(at).abandoned += 1;
    }

    /// An LC completion missed its QoS target inside a fault window.
    pub fn on_fault_qos_violation(&mut self, at: SimTime) {
        self.bucket(at).fault_qos_violations += 1;
    }

    /// Total QoS violations attributable to fault windows.
    pub fn total_fault_qos_violations(&self) -> u64 {
        self.buckets.iter().map(|b| b.fault_qos_violations).sum()
    }

    /// The keep-alive detector tripped on a crash: record the lag from
    /// physical fault injection to detection, in sim time.
    pub fn on_detection(&mut self, at: SimTime, lag: SimTime) {
        let b = self.bucket(at);
        b.detection_lag_us_sum += lag.as_micros();
        b.detections += 1;
    }

    /// `n` dispatch rounds fell back from a delegated decision to the
    /// local policy since the last sample.
    pub fn on_proxy_fallbacks(&mut self, at: SimTime, n: u64) {
        self.bucket(at).proxy_fallbacks += n;
    }

    /// A migration was initiated (pod detached, transfer in flight).
    pub fn on_migration_started(&mut self, at: SimTime) {
        self.bucket(at).migrations_started += 1;
    }

    /// A migration landed (pod resumed on its destination).
    pub fn on_migration_completed(&mut self, at: SimTime) {
        self.bucket(at).migrations_completed += 1;
    }

    /// `kib` KiB crossed the edge→cloud boundary (placement payload or
    /// migration state transfer).
    pub fn on_cloud_egress(&mut self, at: SimTime, kib: u64) {
        self.bucket(at).cloud_egress_kib += kib;
    }

    /// (started, completed) migrations over the whole run.
    pub fn migration_totals(&self) -> (u64, u64) {
        self.buckets.iter().fold((0, 0), |(s, c), b| {
            (s + b.migrations_started, c + b.migrations_completed)
        })
    }

    /// Total KiB of cloud egress over the whole run.
    pub fn total_cloud_egress_kib(&self) -> u64 {
        self.buckets.iter().map(|b| b.cloud_egress_kib).sum()
    }

    /// (detected crashes, mean detection lag in ms) over the whole run.
    pub fn detection_lag_summary(&self) -> (u64, f64) {
        let (sum, n) = self.buckets.iter().fold((0u64, 0u64), |(s, n), b| {
            (s + b.detection_lag_us_sum, n + b.detections)
        });
        if n == 0 {
            (0, 0.0)
        } else {
            (n, sum as f64 / n as f64 / 1_000.0)
        }
    }

    /// Total proxy fallbacks over the whole run.
    pub fn total_proxy_fallbacks(&self) -> u64 {
        self.buckets.iter().map(|b| b.proxy_fallbacks).sum()
    }

    /// Record a utilization sample (overall, LC share, BE share), each in
    /// [0, 1].
    pub fn sample_utilization(&mut self, at: SimTime, overall: f64, lc: f64, be: f64) {
        let b = self.bucket(at);
        b.util_sum.0 += overall;
        b.util_sum.1 += lc;
        b.util_sum.2 += be;
        b.util_samples += 1;
    }

    /// Cumulative QoS-guarantee satisfaction rate φ = Σq / ΣQ over all
    /// periods. `None` when no LC requests arrived.
    pub fn qos_satisfaction_rate(&self) -> Option<f64> {
        let arrived: u64 = self.buckets.iter().map(|b| b.lc_arrived).sum();
        if arrived == 0 {
            return None;
        }
        let sat: u64 = self.buckets.iter().map(|b| b.lc_satisfied).sum();
        Some(sat as f64 / arrived as f64)
    }

    /// Satisfaction rate against *completed* LC requests (used when a run
    /// is truncated and late arrivals never finished).
    pub fn qos_satisfaction_of_completed(&self) -> Option<f64> {
        let done: u64 = self.buckets.iter().map(|b| b.lc_completed).sum();
        if done == 0 {
            return None;
        }
        let sat: u64 = self.buckets.iter().map(|b| b.lc_satisfied).sum();
        Some(sat as f64 / done as f64)
    }

    /// Cumulative BE throughput φ′ = Σ q′.
    pub fn be_throughput(&self) -> u64 {
        self.buckets.iter().map(|b| b.be_completed).sum()
    }

    /// Total abandoned requests.
    pub fn total_abandoned(&self) -> u64 {
        self.buckets.iter().map(|b| b.abandoned).sum()
    }

    /// Mean overall utilization across all samples.
    pub fn mean_utilization(&self) -> f64 {
        let (sum, n) = self.buckets.iter().fold((0.0, 0u64), |(s, n), b| {
            (s + b.util_sum.0, n + b.util_samples)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// p95 of all LC completion latencies, in ms.
    pub fn overall_lc_p95_ms(&self) -> f64 {
        let mut all: Vec<u64> = self
            .buckets
            .iter()
            .flat_map(|b| b.lc_latencies_us.iter().copied())
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        let n = all.len();
        let idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        all.select_nth_unstable(idx);
        all[idx] as f64 / 1_000.0
    }

    /// Materialize the per-period rows.
    pub fn periods(&self) -> Vec<PeriodRecord> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let n = b.util_samples.max(1) as f64;
                let p95 = if b.lc_latencies_us.is_empty() {
                    0.0
                } else {
                    let mut v = b.lc_latencies_us.clone();
                    let len = v.len();
                    let idx = ((0.95 * len as f64).ceil() as usize).clamp(1, len) - 1;
                    v.select_nth_unstable(idx);
                    v[idx] as f64 / 1_000.0
                };
                PeriodRecord {
                    index: i as u64,
                    lc_arrived: b.lc_arrived,
                    lc_completed: b.lc_completed,
                    lc_satisfied: b.lc_satisfied,
                    be_completed: b.be_completed,
                    abandoned: b.abandoned,
                    util_overall: b.util_sum.0 / n,
                    util_lc: b.util_sum.1 / n,
                    util_be: b.util_sum.2 / n,
                    lc_p95_ms: p95,
                    fault_qos_violations: b.fault_qos_violations,
                    detection_lag_ms: if b.detections == 0 {
                        0.0
                    } else {
                        b.detection_lag_us_sum as f64 / b.detections as f64 / 1_000.0
                    },
                    proxy_fallbacks: b.proxy_fallbacks,
                    migrations_started: b.migrations_started,
                    migrations_completed: b.migrations_completed,
                    cloud_egress_kib: b.cloud_egress_kib,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn events_land_in_the_right_period() {
        let mut c = ExperimentCounters::paper_default();
        c.on_lc_arrival(ms(100)); // period 0
        c.on_lc_arrival(ms(799)); // period 0
        c.on_lc_arrival(ms(800)); // period 1
        c.on_lc_complete(ms(900), ms(50), true); // period 1
        c.on_be_complete(ms(1_700)); // period 2
        c.on_abandon(ms(2_500)); // period 3
        let p = c.periods();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].lc_arrived, 2);
        assert_eq!(p[1].lc_arrived, 1);
        assert_eq!(p[1].lc_completed, 1);
        assert_eq!(p[1].lc_satisfied, 1);
        assert_eq!(p[2].be_completed, 1);
        assert_eq!(p[3].abandoned, 1);
    }

    #[test]
    fn satisfaction_rate_is_sat_over_arrived() {
        let mut c = ExperimentCounters::paper_default();
        assert_eq!(c.qos_satisfaction_rate(), None);
        for i in 0..10 {
            c.on_lc_arrival(ms(i * 10));
        }
        for i in 0..8 {
            c.on_lc_complete(ms(500 + i), ms(100), i < 6);
        }
        assert!((c.qos_satisfaction_rate().unwrap() - 0.6).abs() < 1e-12);
        assert!((c.qos_satisfaction_of_completed().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn throughput_and_abandoned_accumulate() {
        let mut c = ExperimentCounters::paper_default();
        for i in 0..25 {
            c.on_be_complete(ms(i * 100));
        }
        c.on_abandon(ms(5));
        c.on_abandon(ms(5_000));
        assert_eq!(c.be_throughput(), 25);
        assert_eq!(c.total_abandoned(), 2);
    }

    #[test]
    fn utilization_averages_within_period() {
        let mut c = ExperimentCounters::paper_default();
        c.sample_utilization(ms(0), 0.2, 0.1, 0.1);
        c.sample_utilization(ms(400), 0.6, 0.4, 0.2);
        let p = c.periods();
        assert!((p[0].util_overall - 0.4).abs() < 1e-12);
        assert!((p[0].util_lc - 0.25).abs() < 1e-12);
        assert!((c.mean_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn p95_per_period_and_overall() {
        let mut c = ExperimentCounters::paper_default();
        for i in 1..=100u64 {
            c.on_lc_complete(ms(10), ms(i), true);
        }
        let p = c.periods();
        assert!((p[0].lc_p95_ms - 95.0).abs() < 1e-9);
        assert!((c.overall_lc_p95_ms() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn fault_qos_violations_bucket_and_sum() {
        let mut c = ExperimentCounters::paper_default();
        c.on_fault_qos_violation(ms(100)); // period 0
        c.on_fault_qos_violation(ms(900)); // period 1
        c.on_fault_qos_violation(ms(950)); // period 1
        let p = c.periods();
        assert_eq!(p[0].fault_qos_violations, 1);
        assert_eq!(p[1].fault_qos_violations, 2);
        assert_eq!(c.total_fault_qos_violations(), 3);
    }

    #[test]
    fn detection_lag_and_proxy_fallbacks_bucket_and_summarize() {
        let mut c = ExperimentCounters::paper_default();
        c.on_detection(ms(300), ms(200)); // period 0
        c.on_detection(ms(900), ms(100)); // period 1
        c.on_detection(ms(1_000), ms(300)); // period 1
        c.on_proxy_fallbacks(ms(100), 2); // period 0
        c.on_proxy_fallbacks(ms(900), 1); // period 1
        let p = c.periods();
        assert!((p[0].detection_lag_ms - 200.0).abs() < 1e-9);
        assert!((p[1].detection_lag_ms - 200.0).abs() < 1e-9);
        assert_eq!(p[0].proxy_fallbacks, 2);
        assert_eq!(p[1].proxy_fallbacks, 1);
        let (n, mean) = c.detection_lag_summary();
        assert_eq!(n, 3);
        assert!((mean - 200.0).abs() < 1e-9);
        assert_eq!(c.total_proxy_fallbacks(), 3);
    }

    #[test]
    fn migration_counters_bucket_and_total() {
        let mut c = ExperimentCounters::paper_default();
        c.on_migration_started(ms(100)); // period 0
        c.on_cloud_egress(ms(100), 64); // period 0
        c.on_migration_started(ms(900)); // period 1
        c.on_cloud_egress(ms(900), 128); // period 1
        c.on_migration_completed(ms(1_000)); // period 1
        let p = c.periods();
        assert_eq!(p[0].migrations_started, 1);
        assert_eq!(p[0].migrations_completed, 0);
        assert_eq!(p[0].cloud_egress_kib, 64);
        assert_eq!(p[1].migrations_started, 1);
        assert_eq!(p[1].migrations_completed, 1);
        assert_eq!(p[1].cloud_egress_kib, 128);
        assert_eq!(c.migration_totals(), (2, 1));
        assert_eq!(c.total_cloud_egress_kib(), 192);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = ExperimentCounters::new(SimTime::ZERO);
    }
}

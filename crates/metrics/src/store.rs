//! The state storage (Fig. 3 ➋).
//!
//! Each master node keeps a store of node status for the clusters it can
//! dispatch to: resource totals and availability pushed by the
//! Prometheus-style scraper, plus the QoS slack pushed by the QoS detector.
//! The LC traffic dispatcher reads it to build its per-type graphs; the BE
//! traffic dispatcher reads the global one. It is shared between cluster
//! control threads, so access is guarded by a `std::sync::RwLock`.

use std::sync::RwLock;
use tango_types::FxHashMap;
use tango_types::{ClusterId, NodeId, Resources, ServiceId, SimTime};

/// Master or worker (§5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Edge access point, controller, decision maker.
    Master,
    /// Executes container instances.
    Worker,
}

/// Point-in-time status of one node.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// Which node this describes.
    pub node: NodeId,
    /// The cluster it belongs to.
    pub cluster: ClusterId,
    /// Master or worker.
    pub role: NodeRole,
    /// Total allocatable resources (r_total).
    pub total: Resources,
    /// Currently idle resources (r_ava, before counting preemptible BE).
    pub available: Resources,
    /// Resources currently held by BE services — preemptible by LC under
    /// the §4.1 regulations.
    pub be_held: Resources,
    /// Per-service QoS slack δ at the last detector push.
    pub slack: FxHashMap<ServiceId, f64>,
    /// Per-service pending request counts (masters only: the t_i^k > 0
    /// side of Eq. 2).
    pub pending: FxHashMap<ServiceId, u32>,
    /// When this snapshot was pushed.
    pub updated_at: SimTime,
}

impl NodeSnapshot {
    /// Resources an LC request may draw on: idle plus preemptible BE
    /// holdings (§4.1 — "resources available for scheduling and processing
    /// LC service requests include both idle resources and resources
    /// currently being used by BE services").
    pub fn lc_available(&self) -> Resources {
        self.available + self.be_held
    }

    /// Resources a BE request may draw on: idle only.
    pub fn be_available(&self) -> Resources {
        self.available
    }
}

/// Thread-safe snapshot store.
#[derive(Debug, Default)]
pub struct StateStorage {
    inner: RwLock<FxHashMap<NodeId, NodeSnapshot>>,
}

impl StateStorage {
    /// Create an empty store.
    pub fn new() -> Self {
        StateStorage::default()
    }

    /// Insert or replace a node's snapshot.
    pub fn push(&self, snap: NodeSnapshot) {
        self.inner
            .write()
            .expect("store lock poisoned")
            .insert(snap.node, snap);
    }

    /// Copy of one node's snapshot.
    pub fn get(&self, node: NodeId) -> Option<NodeSnapshot> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .get(&node)
            .cloned()
    }

    /// Copies of all snapshots, sorted by node id (deterministic order for
    /// the schedulers).
    pub fn all(&self) -> Vec<NodeSnapshot> {
        let mut v: Vec<NodeSnapshot> = self
            .inner
            .read()
            .expect("store lock poisoned")
            .values()
            .cloned()
            .collect();
        v.sort_by_key(|s| s.node);
        v
    }

    /// Snapshots of the nodes in one cluster, sorted by node id.
    pub fn in_cluster(&self, cluster: ClusterId) -> Vec<NodeSnapshot> {
        let mut v: Vec<NodeSnapshot> = self
            .inner
            .read()
            .expect("store lock poisoned")
            .values()
            .filter(|s| s.cluster == cluster)
            .cloned()
            .collect();
        v.sort_by_key(|s| s.node);
        v
    }

    /// Snapshots of the nodes in any of `clusters` (the geo-nearby set for
    /// LC dispatch), sorted by node id.
    pub fn in_clusters(&self, clusters: &[ClusterId]) -> Vec<NodeSnapshot> {
        let mut v: Vec<NodeSnapshot> = self
            .inner
            .read()
            .expect("store lock poisoned")
            .values()
            .filter(|s| clusters.contains(&s.cluster))
            .cloned()
            .collect();
        v.sort_by_key(|s| s.node);
        v
    }

    /// Number of nodes known.
    pub fn len(&self) -> usize {
        self.inner.read().expect("store lock poisoned").len()
    }

    /// `true` if no snapshots have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().expect("store lock poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(node: u32, cluster: u32, avail_cpu: u64, be_cpu: u64) -> NodeSnapshot {
        NodeSnapshot {
            node: NodeId(node),
            cluster: ClusterId(cluster),
            role: NodeRole::Worker,
            total: Resources::cpu_mem(4_000, 8_192),
            available: Resources::cpu_mem(avail_cpu, 1_024),
            be_held: Resources::cpu_mem(be_cpu, 512),
            slack: FxHashMap::default(),
            pending: FxHashMap::default(),
            updated_at: SimTime::ZERO,
        }
    }

    #[test]
    fn lc_sees_idle_plus_preemptible_be() {
        let s = snap(1, 0, 1_000, 500);
        assert_eq!(s.lc_available().cpu_milli, 1_500);
        assert_eq!(s.be_available().cpu_milli, 1_000);
    }

    #[test]
    fn push_get_replace() {
        let store = StateStorage::new();
        assert!(store.is_empty());
        store.push(snap(1, 0, 100, 0));
        store.push(snap(1, 0, 200, 0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(NodeId(1)).unwrap().available.cpu_milli, 200);
        assert!(store.get(NodeId(9)).is_none());
    }

    #[test]
    fn cluster_queries_filter_and_sort() {
        let store = StateStorage::new();
        store.push(snap(3, 1, 1, 0));
        store.push(snap(1, 0, 1, 0));
        store.push(snap(2, 1, 1, 0));
        let c1 = store.in_cluster(ClusterId(1));
        assert_eq!(
            c1.iter().map(|s| s.node).collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(3)]
        );
        let all = store.all();
        assert_eq!(
            all.iter().map(|s| s.node).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        let multi = store.in_clusters(&[ClusterId(0), ClusterId(1)]);
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn concurrent_pushes_are_safe() {
        use std::sync::Arc;
        let store = Arc::new(StateStorage::new());
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let st = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        st.push(snap(t * 1000 + i, t, i as u64, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 800);
    }
}

//! The state storage (Fig. 3 ➋).
//!
//! Each master node keeps a store of node status for the clusters it can
//! dispatch to: resource totals and availability pushed by the
//! Prometheus-style scraper, plus the QoS slack pushed by the QoS detector.
//! The LC traffic dispatcher reads it to build its per-type graphs; the BE
//! traffic dispatcher reads the global one.
//!
//! Layout: node ids are dense (`NodeId.index()` into the system's node
//! vector), so the store keeps structure-of-arrays columns indexed by node
//! instead of a map of owned snapshots. The sync loop overwrites rows in
//! place each round ([`StateStorage::write_row`], zero steady-state
//! allocations) and the candidate-view builder iterates borrowed rows
//! ([`StateStorage::row`]) without cloning. The map-shaped
//! [`NodeSnapshot`] remains the exchange/serialization type; accessors
//! materialize it on demand.

use tango_types::FxHashMap;
use tango_types::{ClusterId, NodeId, Resources, ServiceId, SimTime};

/// Master or worker (§5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Edge access point, controller, decision maker.
    Master,
    /// Executes container instances.
    Worker,
}

/// Point-in-time status of one node.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// Which node this describes.
    pub node: NodeId,
    /// The cluster it belongs to.
    pub cluster: ClusterId,
    /// Master or worker.
    pub role: NodeRole,
    /// Total allocatable resources (r_total).
    pub total: Resources,
    /// Currently idle resources (r_ava, before counting preemptible BE).
    pub available: Resources,
    /// Resources currently held by BE services — preemptible by LC under
    /// the §4.1 regulations.
    pub be_held: Resources,
    /// Per-service QoS slack δ at the last detector push.
    pub slack: FxHashMap<ServiceId, f64>,
    /// Per-service pending request counts (masters only: the t_i^k > 0
    /// side of Eq. 2).
    pub pending: FxHashMap<ServiceId, u32>,
    /// When this snapshot was pushed.
    pub updated_at: SimTime,
}

impl NodeSnapshot {
    /// Resources an LC request may draw on: idle plus preemptible BE
    /// holdings (§4.1 — "resources available for scheduling and processing
    /// LC service requests include both idle resources and resources
    /// currently being used by BE services").
    pub fn lc_available(&self) -> Resources {
        self.available + self.be_held
    }

    /// Resources a BE request may draw on: idle only.
    pub fn be_available(&self) -> Resources {
        self.available
    }
}

/// A borrowed view of one store row — what [`NodeSnapshot`] carries, minus
/// the owned maps. The hot read path (candidate-view rebuilds) iterates
/// these instead of cloning snapshots.
#[derive(Debug, Clone, Copy)]
pub struct StoreRow<'a> {
    /// Which node this describes.
    pub node: NodeId,
    /// The cluster it belongs to.
    pub cluster: ClusterId,
    /// Master or worker.
    pub role: NodeRole,
    /// Total allocatable resources.
    pub total: Resources,
    /// Currently idle resources.
    pub available: Resources,
    /// Resources held by (preemptible) BE services.
    pub be_held: Resources,
    /// Per-service QoS slack, sparse pairs.
    pub slack: &'a [(ServiceId, f64)],
    /// Per-service pending counts (masters only), sparse pairs.
    pub pending: &'a [(ServiceId, u32)],
    /// When this row was written.
    pub updated_at: SimTime,
}

impl StoreRow<'_> {
    /// Resources an LC request may draw on (idle + preemptible BE).
    pub fn lc_available(&self) -> Resources {
        self.available + self.be_held
    }

    /// Resources a BE request may draw on (idle only).
    pub fn be_available(&self) -> Resources {
        self.available
    }

    /// Slack δ for one service, if the detector had a signal.
    pub fn slack_for(&self, service: ServiceId) -> Option<f64> {
        self.slack
            .iter()
            .find(|(s, _)| *s == service)
            .map(|&(_, v)| v)
    }
}

fn pairs_to_map<V: Copy>(pairs: &[(ServiceId, V)]) -> FxHashMap<ServiceId, V> {
    pairs.iter().copied().collect()
}

fn map_to_pairs<V: Copy>(map: &FxHashMap<ServiceId, V>) -> Vec<(ServiceId, V)> {
    let mut v: Vec<(ServiceId, V)> = map.iter().map(|(&k, &x)| (k, x)).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

/// Dense structure-of-arrays snapshot store, indexed by node id.
#[derive(Debug, Default)]
pub struct StateStorage {
    present: Vec<bool>,
    clusters: Vec<ClusterId>,
    roles: Vec<NodeRole>,
    totals: Vec<Resources>,
    available: Vec<Resources>,
    be_held: Vec<Resources>,
    updated_at: Vec<SimTime>,
    slack: Vec<Vec<(ServiceId, f64)>>,
    pending: Vec<Vec<(ServiceId, u32)>>,
}

impl StateStorage {
    /// Create an empty store.
    pub fn new() -> Self {
        StateStorage::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.present.len() >= len {
            return;
        }
        self.present.resize(len, false);
        self.clusters.resize(len, ClusterId(0));
        self.roles.resize(len, NodeRole::Worker);
        self.totals.resize(len, Resources::ZERO);
        self.available.resize(len, Resources::ZERO);
        self.be_held.resize(len, Resources::ZERO);
        self.updated_at.resize(len, SimTime::ZERO);
        self.slack.resize_with(len, Vec::new);
        self.pending.resize_with(len, Vec::new);
    }

    /// Overwrite one node's row in place — the sync loop's hot write path.
    /// `slack` / `pending` are sparse per-service pairs; they replace the
    /// previous row's wholesale.
    #[allow(clippy::too_many_arguments)]
    pub fn write_row(
        &mut self,
        node: NodeId,
        cluster: ClusterId,
        role: NodeRole,
        total: Resources,
        available: Resources,
        be_held: Resources,
        slack: &[(ServiceId, f64)],
        pending: &[(ServiceId, u32)],
        updated_at: SimTime,
    ) {
        let i = node.index();
        self.ensure(i + 1);
        self.present[i] = true;
        self.clusters[i] = cluster;
        self.roles[i] = role;
        self.totals[i] = total;
        self.available[i] = available;
        self.be_held[i] = be_held;
        self.updated_at[i] = updated_at;
        self.slack[i].clear();
        self.slack[i].extend_from_slice(slack);
        self.pending[i].clear();
        self.pending[i].extend_from_slice(pending);
    }

    /// Insert or replace a node's snapshot.
    pub fn push(&mut self, snap: NodeSnapshot) {
        let slack = map_to_pairs(&snap.slack);
        let pending = map_to_pairs(&snap.pending);
        self.write_row(
            snap.node,
            snap.cluster,
            snap.role,
            snap.total,
            snap.available,
            snap.be_held,
            &slack,
            &pending,
            snap.updated_at,
        );
    }

    /// Upper bound on row indices (not all slots need be present).
    pub fn rows(&self) -> usize {
        self.present.len()
    }

    /// Borrowed view of one row by *index*; `None` for absent slots.
    pub fn row(&self, i: usize) -> Option<StoreRow<'_>> {
        if !*self.present.get(i)? {
            return None;
        }
        Some(StoreRow {
            node: NodeId(i as u32),
            cluster: self.clusters[i],
            role: self.roles[i],
            total: self.totals[i],
            available: self.available[i],
            be_held: self.be_held[i],
            slack: &self.slack[i],
            pending: &self.pending[i],
            updated_at: self.updated_at[i],
        })
    }

    fn materialize(&self, i: usize) -> NodeSnapshot {
        NodeSnapshot {
            node: NodeId(i as u32),
            cluster: self.clusters[i],
            role: self.roles[i],
            total: self.totals[i],
            available: self.available[i],
            be_held: self.be_held[i],
            slack: pairs_to_map(&self.slack[i]),
            pending: pairs_to_map(&self.pending[i]),
            updated_at: self.updated_at[i],
        }
    }

    /// Copy of one node's snapshot.
    pub fn get(&self, node: NodeId) -> Option<NodeSnapshot> {
        let i = node.index();
        self.present
            .get(i)
            .copied()
            .unwrap_or(false)
            .then(|| self.materialize(i))
    }

    /// Copies of all snapshots, sorted by node id (deterministic order for
    /// the schedulers).
    pub fn all(&self) -> Vec<NodeSnapshot> {
        (0..self.present.len())
            .filter(|&i| self.present[i])
            .map(|i| self.materialize(i))
            .collect()
    }

    /// Snapshots of the nodes in one cluster, sorted by node id.
    pub fn in_cluster(&self, cluster: ClusterId) -> Vec<NodeSnapshot> {
        (0..self.present.len())
            .filter(|&i| self.present[i] && self.clusters[i] == cluster)
            .map(|i| self.materialize(i))
            .collect()
    }

    /// Snapshots of the nodes in any of `clusters` (the geo-nearby set for
    /// LC dispatch), sorted by node id.
    pub fn in_clusters(&self, clusters: &[ClusterId]) -> Vec<NodeSnapshot> {
        (0..self.present.len())
            .filter(|&i| self.present[i] && clusters.contains(&self.clusters[i]))
            .map(|i| self.materialize(i))
            .collect()
    }

    /// Number of nodes known.
    pub fn len(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    /// `true` if no snapshots have been pushed yet.
    pub fn is_empty(&self) -> bool {
        !self.present.iter().any(|&p| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(node: u32, cluster: u32, avail_cpu: u64, be_cpu: u64) -> NodeSnapshot {
        NodeSnapshot {
            node: NodeId(node),
            cluster: ClusterId(cluster),
            role: NodeRole::Worker,
            total: Resources::cpu_mem(4_000, 8_192),
            available: Resources::cpu_mem(avail_cpu, 1_024),
            be_held: Resources::cpu_mem(be_cpu, 512),
            slack: FxHashMap::default(),
            pending: FxHashMap::default(),
            updated_at: SimTime::ZERO,
        }
    }

    #[test]
    fn lc_sees_idle_plus_preemptible_be() {
        let s = snap(1, 0, 1_000, 500);
        assert_eq!(s.lc_available().cpu_milli, 1_500);
        assert_eq!(s.be_available().cpu_milli, 1_000);
    }

    #[test]
    fn push_get_replace() {
        let mut store = StateStorage::new();
        assert!(store.is_empty());
        store.push(snap(1, 0, 100, 0));
        store.push(snap(1, 0, 200, 0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(NodeId(1)).unwrap().available.cpu_milli, 200);
        assert!(store.get(NodeId(9)).is_none());
    }

    #[test]
    fn cluster_queries_filter_and_sort() {
        let mut store = StateStorage::new();
        store.push(snap(3, 1, 1, 0));
        store.push(snap(1, 0, 1, 0));
        store.push(snap(2, 1, 1, 0));
        let c1 = store.in_cluster(ClusterId(1));
        assert_eq!(
            c1.iter().map(|s| s.node).collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(3)]
        );
        let all = store.all();
        assert_eq!(
            all.iter().map(|s| s.node).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        let multi = store.in_clusters(&[ClusterId(0), ClusterId(1)]);
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn write_row_and_row_views_round_trip() {
        let mut store = StateStorage::new();
        let slack = [(ServiceId(1), 0.5), (ServiceId(2), -0.25)];
        let pending = [(ServiceId(1), 3u32)];
        store.write_row(
            NodeId(2),
            ClusterId(0),
            NodeRole::Master,
            Resources::cpu_mem(8_000, 16_384),
            Resources::cpu_mem(4_000, 8_192),
            Resources::cpu_mem(1_000, 512),
            &slack,
            &pending,
            SimTime::from_millis(100),
        );
        // slot 0/1 were never written
        assert!(store.row(0).is_none());
        assert!(store.row(1).is_none());
        let row = store.row(2).expect("row 2 present");
        assert_eq!(row.node, NodeId(2));
        assert_eq!(row.slack_for(ServiceId(2)), Some(-0.25));
        assert_eq!(row.slack_for(ServiceId(9)), None);
        assert_eq!(row.lc_available().cpu_milli, 5_000);
        // the materialized snapshot agrees with the row view
        let snap = store.get(NodeId(2)).unwrap();
        assert_eq!(snap.slack.get(&ServiceId(1)), Some(&0.5));
        assert_eq!(snap.pending.get(&ServiceId(1)), Some(&3));
        assert_eq!(store.len(), 1);
    }
}

//! Zero-cost trace hooks over the staged system runtime.
//!
//! The core runtime's stage boundaries (arrival → dispatch decision →
//! delivery → admission → completion, plus fault events) each emit a
//! [`TraceEvent`] into a [`TraceSink`]. The default sink is [`NoopTrace`]
//! and the emission sites are guarded by a single branch with the event
//! built lazily, so an untraced run pays nothing measurable. The
//! [`TraceRecorder`] ring buffer keeps the last N events for post-run
//! inspection (see `examples/trace_tap.rs` in the workspace root).
//!
//! Events carry only plain ids and times from `tango-types`, so sinks can
//! be implemented anywhere without pulling in the core crate.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use tango_types::{ClusterId, NodeId, RequestId, ServiceId, SimTime};

/// Which dispatch lane produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLane {
    /// Per-master latency-critical dispatch (DSS-LC or a baseline).
    Lc,
    /// Central best-effort dispatch (DCG-BE or a baseline).
    Be,
}

/// One event crossing a stage boundary of the system runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request arrived at its origin master and was queued.
    Arrival {
        /// The request.
        request: RequestId,
        /// Its service type.
        service: ServiceId,
        /// The cluster whose master queued it.
        origin: ClusterId,
    },
    /// A scheduler picked a target node for a request.
    DispatchDecision {
        /// The request.
        request: RequestId,
        /// The chosen worker.
        target: NodeId,
        /// Which dispatcher decided.
        lane: TraceLane,
    },
    /// A dispatched payload reached its target worker.
    Delivery {
        /// The request.
        request: RequestId,
        /// The worker it landed on.
        node: NodeId,
        /// `true` when the target had crashed while the payload was in
        /// flight and the request bounced back to its scheduler.
        bounced: bool,
    },
    /// The allocator ruled on a delivered (or node-waiting) request.
    Admission {
        /// The request.
        request: RequestId,
        /// The worker that ruled.
        node: NodeId,
        /// `true` = admitted and running; `false` = parked or bounced.
        admitted: bool,
    },
    /// A request finished executing.
    Completion {
        /// The request.
        request: RequestId,
        /// The worker it ran on.
        node: NodeId,
        /// Arrival-to-completion latency.
        latency: SimTime,
    },
    /// A request was abandoned (queue deadline, patience, or requeue
    /// budget exhaustion).
    Abandoned {
        /// The request.
        request: RequestId,
    },
    /// A fault-plan event fired.
    Fault {
        /// Short static label of the fault kind (`"crash"`, `"recover"`,
        /// `"degrade"`, `"restore"`, `"partition"`, `"heal"`).
        kind: &'static str,
        /// The affected node, when the fault targets one.
        node: Option<NodeId>,
    },
}

/// A consumer of stage-boundary trace events.
///
/// Implementations must be cheap: `record` runs inline in the simulation
/// event loop. They must also be deterministic observers — a sink must
/// never feed information back into the run.
pub trait TraceSink: Send {
    /// Consume one event stamped with its simulation time.
    fn record(&mut self, at: SimTime, event: TraceEvent);
}

/// The default sink: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    #[inline]
    fn record(&mut self, _at: SimTime, _event: TraceEvent) {}
}

/// A bounded ring-buffer recorder with a cloneable read handle.
///
/// Clone the recorder before handing it to the system; after the run the
/// retained events (the most recent `capacity`) are read back with
/// [`TraceRecorder::events`]. The shared buffer is mutex-guarded, but the
/// simulation event loop is single-threaded so the lock is uncontended.
///
/// # Overwrite semantics
///
/// The buffer is a fixed-capacity ring: once `capacity` events are
/// retained, each new event **evicts the oldest one** and increments
/// [`TraceRecorder::dropped`]. [`TraceRecorder::events`] therefore
/// always returns the most recent window of history, and
/// `dropped() == 0` is the test for that window being complete.
/// [`TraceRecorder::total_seen`] keeps counting across evictions, so
/// `total_seen() == dropped() + len()` at all times. Consumers that
/// poll mid-run should use [`TraceRecorder::drain`], which takes the
/// retained window and resets `dropped` in one atomic step — polling
/// with `events()` + `dropped()` separately can double-count an
/// eviction that lands between the two calls.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

struct RecorderInner {
    buf: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    seen: u64,
    dropped: u64,
}

/// Ring capacity used by [`TraceRecorder::default`]. Pick an explicit
/// capacity with [`TraceRecorder::new`] when the run is long or events
/// must not be lost; check [`TraceRecorder::dropped`] afterwards.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder retaining the most recent `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                seen: 0,
                dropped: 0,
            })),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("trace recorder poisoned").capacity
    }

    /// Number of records the ring has evicted to make room — events that
    /// were seen but are no longer retained. Zero means
    /// [`TraceRecorder::events`] is the complete history.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace recorder poisoned").dropped
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<(SimTime, TraceEvent)> {
        let inner = self.inner.lock().expect("trace recorder poisoned");
        inner.buf.iter().cloned().collect()
    }

    /// Take the retained events (oldest first), emptying the ring and
    /// resetting the [`TraceRecorder::dropped`] counter in one locked
    /// step. Returns the events together with the number dropped since
    /// the previous drain, so an incremental consumer knows exactly how
    /// large the gap before this window is. `total_seen` keeps
    /// accumulating across drains.
    pub fn drain(&self) -> (Vec<(SimTime, TraceEvent)>, u64) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        let events = inner.buf.drain(..).collect();
        let dropped = std::mem::take(&mut inner.dropped);
        (events, dropped)
    }

    /// Retained events for one request, oldest first — a per-request
    /// timeline.
    pub fn timeline(&self, request: RequestId) -> Vec<(SimTime, TraceEvent)> {
        self.events()
            .into_iter()
            .filter(|(_, e)| e.request() == Some(request))
            .collect()
    }

    /// Total events ever recorded, including ones the ring has evicted.
    pub fn total_seen(&self) -> u64 {
        self.inner.lock().expect("trace recorder poisoned").seen
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace recorder poisoned")
            .buf
            .len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for TraceRecorder {
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        inner.seen += 1;
        if inner.buf.len() == inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back((at, event));
    }
}

impl TraceEvent {
    /// The request this event concerns, when it concerns one.
    pub fn request(&self) -> Option<RequestId> {
        match self {
            TraceEvent::Arrival { request, .. }
            | TraceEvent::DispatchDecision { request, .. }
            | TraceEvent::Delivery { request, .. }
            | TraceEvent::Admission { request, .. }
            | TraceEvent::Completion { request, .. }
            | TraceEvent::Abandoned { request } => Some(*request),
            TraceEvent::Fault { .. } => None,
        }
    }

    /// Short static label for displays.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::DispatchDecision { .. } => "dispatch",
            TraceEvent::Delivery { .. } => "deliver",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::Completion { .. } => "complete",
            TraceEvent::Abandoned { .. } => "abandoned",
            TraceEvent::Fault { .. } => "fault",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Arrival {
            request: RequestId(i),
            service: ServiceId(0),
            origin: ClusterId(0),
        }
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut rec = TraceRecorder::new(3);
        for i in 0..5 {
            rec.record(SimTime::from_millis(i), ev(i));
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.total_seen(), 5);
        assert_eq!(events[0].1.request(), Some(RequestId(2)));
        assert_eq!(events[2].1.request(), Some(RequestId(4)));
    }

    #[test]
    fn timeline_filters_by_request() {
        let mut rec = TraceRecorder::new(16);
        rec.record(SimTime::ZERO, ev(1));
        rec.record(
            SimTime::from_millis(1),
            TraceEvent::DispatchDecision {
                request: RequestId(1),
                target: NodeId(7),
                lane: TraceLane::Lc,
            },
        );
        rec.record(SimTime::from_millis(2), ev(2));
        let tl = rec.timeline(RequestId(1));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[1].1.kind(), "dispatch");
    }

    #[test]
    fn fault_events_have_no_request() {
        assert_eq!(
            TraceEvent::Fault {
                kind: "crash",
                node: Some(NodeId(3))
            }
            .request(),
            None
        );
    }

    #[test]
    fn drain_takes_events_and_resets_dropped_atomically() {
        let mut rec = TraceRecorder::new(3);
        for i in 0..5 {
            rec.record(SimTime::from_millis(i), ev(i));
        }
        let (events, dropped) = rec.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].1.request(), Some(RequestId(2)));
        assert_eq!(dropped, 2);
        // the ring and the dropped counter restart together
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.total_seen(), 5);
        rec.record(SimTime::from_millis(9), ev(9));
        let (events, dropped) = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        assert_eq!(rec.total_seen(), 6);
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = TraceRecorder::new(8);
        let mut writer = rec.clone();
        writer.record(SimTime::ZERO, ev(9));
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }
}

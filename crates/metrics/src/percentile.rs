//! Exact percentile computation.
//!
//! Windows in Tango are small (a 100 ms window holds at most a few hundred
//! samples), so we compute tail percentiles exactly by selection instead of
//! a streaming sketch — no approximation error in the slack score.

use tango_types::SimTime;

/// The q-th percentile (q in [0, 100]) of a set of latencies using the
/// nearest-rank method (the convention tail-latency SLOs use: the value at
/// rank ⌈q/100 × n⌉). Returns `None` on an empty set.
///
/// The input does not need to be sorted.
pub fn percentile(samples: &[SimTime], q: f64) -> Option<SimTime> {
    if samples.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 100.0);
    let n = samples.len();
    let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    let mut sorted: Vec<SimTime> = samples.to_vec();
    // selection of the (rank-1)-th smallest
    let idx = rank - 1;
    sorted.select_nth_unstable(idx);
    Some(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_has_no_percentile() {
        assert_eq!(percentile(&[], 95.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = [ms(42)];
        assert_eq!(percentile(&s, 0.0), Some(ms(42)));
        assert_eq!(percentile(&s, 50.0), Some(ms(42)));
        assert_eq!(percentile(&s, 100.0), Some(ms(42)));
    }

    #[test]
    fn nearest_rank_on_known_set() {
        // 1..=100 ms: p95 = 95th smallest = 95ms
        let s: Vec<SimTime> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 95.0), Some(ms(95)));
        assert_eq!(percentile(&s, 50.0), Some(ms(50)));
        assert_eq!(percentile(&s, 100.0), Some(ms(100)));
        assert_eq!(percentile(&s, 1.0), Some(ms(1)));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = [ms(30), ms(10), ms(50), ms(20), ms(40)];
        assert_eq!(percentile(&s, 50.0), Some(ms(30)));
        assert_eq!(percentile(&s, 95.0), Some(ms(50)));
    }

    #[test]
    fn out_of_range_q_clamps() {
        let s = [ms(1), ms(2), ms(3)];
        assert_eq!(percentile(&s, -5.0), Some(ms(1)));
        assert_eq!(percentile(&s, 400.0), Some(ms(3)));
    }

    #[test]
    fn duplicates_handled() {
        let s = [ms(7); 10];
        assert_eq!(percentile(&s, 95.0), Some(ms(7)));
    }
}

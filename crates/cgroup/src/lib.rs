//! An in-memory model of the Linux CGroup hierarchy as Kubernetes lays it
//! out (`/sys/fs/cgroup/.../kubepods/<qos>/<pod>/<container>`).
//!
//! Tango's D-VPA (§4.2, Fig. 5) scales pods **without** the delete-and-
//! rebuild dance of the stock K8s VPA by writing resource limits directly
//! into the pod-level and container-level CGroups — and the paper stresses
//! that those writes "must be sequential to prevent failure": on expansion
//! the pod-level group grows first, then the container; on shrinking the
//! order reverses. This crate reproduces exactly the kernel-side semantics
//! that make that ordering mandatory:
//!
//! * a child's limit may never exceed its parent's limit (the write is
//!   rejected, as the kernel rejects an over-parent `cpu.cfs_quota_us` /
//!   the limit would be ineffective for memory);
//! * an incompressible limit (memory, disk) cannot be shrunk below current
//!   usage (the kernel returns `EBUSY`);
//! * usage is charged against every ancestor, so "effective capacity" is
//!   the minimum over the path to the root.
//!
//! Every mutation is recorded in a write journal so tests — and the D-VPA
//! latency model — can inspect exactly which control files were touched.

pub mod fs;
pub mod journal;
pub mod snapshot;

pub use fs::{CgroupFs, CgroupId, QosLevel};
pub use journal::{Journal, JournalEntry, WriteKind};

//! Write journal: a record of every control-file mutation.
//!
//! D-VPA's headline number — ~23 ms per scaling operation vs ~100× that for
//! delete-and-rebuild — comes from counting control-file writes instead of
//! pod re-creation. The journal is the ground truth both for that latency
//! model and for tests asserting the pod-before-container write ordering.

use tango_types::{Resources, SimTime};

/// What kind of mutation a journal entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// A cgroup directory was created (`mkdir`).
    Create,
    /// A cgroup directory was removed (`rmdir`).
    Remove,
    /// A resource-limit control file was written
    /// (`cpu.cfs_quota_us`, `memory.limit_in_bytes`, …).
    SetLimit,
}

/// One recorded mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Monotonic sequence number (0-based).
    pub seq: u64,
    /// Simulated wall-clock time of the write.
    pub at: SimTime,
    /// Which mutation happened.
    pub kind: WriteKind,
    /// Full cgroup path, e.g. `kubepods/burstable/pod67f7df/cc13fc77c`.
    pub path: String,
    /// The limit written (for `SetLimit`), or the initial limit
    /// (for `Create`); zero vector for `Remove`.
    pub limit: Resources,
}

/// An append-only journal of cgroup mutations.
#[derive(Debug, Default)]
pub struct Journal {
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Create an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Append an entry, assigning the next sequence number.
    pub fn record(&mut self, at: SimTime, kind: WriteKind, path: String, limit: Resources) {
        let seq = self.entries.len() as u64;
        self.entries.push(JournalEntry {
            seq,
            at,
            kind,
            path,
            limit,
        });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Entries touching a given path, in order.
    pub fn for_path<'a>(&'a self, path: &'a str) -> impl Iterator<Item = &'a JournalEntry> {
        self.entries.iter().filter(move |e| e.path == path)
    }

    /// Number of `SetLimit` writes recorded.
    pub fn limit_writes(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == WriteKind::SetLimit)
            .count()
    }

    /// Drop all entries (used between experiment phases).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut j = Journal::new();
        for i in 0..5 {
            j.record(
                SimTime::from_millis(i),
                WriteKind::SetLimit,
                format!("p{i}"),
                Resources::ZERO,
            );
        }
        let seqs: Vec<u64> = j.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn for_path_filters() {
        let mut j = Journal::new();
        j.record(
            SimTime::ZERO,
            WriteKind::Create,
            "a".into(),
            Resources::ZERO,
        );
        j.record(
            SimTime::ZERO,
            WriteKind::SetLimit,
            "b".into(),
            Resources::ZERO,
        );
        j.record(
            SimTime::ZERO,
            WriteKind::SetLimit,
            "a".into(),
            Resources::ZERO,
        );
        assert_eq!(j.for_path("a").count(), 2);
        assert_eq!(j.limit_writes(), 2);
        j.clear();
        assert!(j.entries().is_empty());
    }
}

//! Checkpoint encoding for the cgroup tree.
//!
//! The group table is snapshotted *structurally* (paths, parent links,
//! limits, usage, liveness) because pods and containers can be created or
//! removed mid-run — the tree at tick T is not derivable from the config.
//! The write journal is deliberately **not** part of a snapshot: it is an
//! observability log consumed by tests, never read back by the simulation,
//! so a restored tree starts with an empty journal.

use crate::fs::CgroupFs;
use crate::journal::Journal;
use tango_snap::{SnapError, SnapReader, SnapWriter};
use tango_types::FxHashMap;

impl CgroupFs {
    /// Encode the full group table (structure + dynamic state).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        let groups = self.raw_groups();
        w.put_u64(groups.len() as u64);
        for g in groups {
            w.put_str(&g.path);
            match g.parent {
                None => w.put_u8(0),
                Some(p) => {
                    w.put_u8(1);
                    w.put_u64(p as u64);
                }
            }
            w.put_u64(g.children.len() as u64);
            for &c in &g.children {
                w.put_u64(c as u64);
            }
            use tango_snap::SnapEncode;
            g.limit.encode(w);
            g.usage.encode(w);
            w.put_bool(g.alive);
        }
    }

    /// Rebuild a tree from [`CgroupFs::snapshot`] bytes. Replaces the whole
    /// group table; the journal starts empty.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        use tango_snap::SnapDecode;
        let count = r.u64()? as usize;
        if count > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut groups = Vec::with_capacity(count);
        let mut by_path = FxHashMap::default();
        for idx in 0..count {
            let path = r.str()?.to_string();
            let parent = match r.u8()? {
                0 => None,
                1 => {
                    let p = r.u64()? as usize;
                    if p >= count {
                        return Err(SnapError::Corrupt("cgroup parent index"));
                    }
                    Some(p)
                }
                _ => return Err(SnapError::Corrupt("cgroup parent tag")),
            };
            let n_children = r.u64()? as usize;
            if n_children > r.remaining() {
                return Err(SnapError::Truncated);
            }
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let c = r.u64()? as usize;
                if c >= count {
                    return Err(SnapError::Corrupt("cgroup child index"));
                }
                children.push(c);
            }
            let limit = tango_types::Resources::decode(r)?;
            let usage = tango_types::Resources::decode(r)?;
            let alive = r.bool()?;
            if alive {
                by_path.insert(path.clone(), idx);
            }
            groups.push(crate::fs::Group {
                path,
                parent,
                children,
                limit,
                usage,
                alive,
            });
        }
        self.replace_table(groups, by_path, Journal::new());
        Ok(())
    }
}

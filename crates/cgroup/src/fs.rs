//! The cgroup filesystem model.

use crate::journal::{Journal, JournalEntry, WriteKind};
use tango_types::FxHashMap;
use tango_types::{ResourceKind, Resources, SimTime, TangoError};

/// Index of a cgroup within a [`CgroupFs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CgroupId(usize);

/// The K8s QoS level directories under `kubepods`.
///
/// K8s derives these from the pod spec: Guaranteed (requests == limits),
/// Burstable (requests < limits), BestEffort (no requests). Tango maps LC
/// services to Burstable (so D-VPA can stretch them) and BE services to
/// BestEffort (lowest eviction priority, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosLevel {
    /// `kubepods/guaranteed`
    Guaranteed,
    /// `kubepods/burstable`
    Burstable,
    /// `kubepods/besteffort`
    BestEffort,
}

impl QosLevel {
    /// Directory name under `kubepods`.
    pub const fn dir(self) -> &'static str {
        match self {
            QosLevel::Guaranteed => "guaranteed",
            QosLevel::Burstable => "burstable",
            QosLevel::BestEffort => "besteffort",
        }
    }

    /// All levels, in K8s eviction priority order (evicted last → first).
    pub const ALL: [QosLevel; 3] = [
        QosLevel::Guaranteed,
        QosLevel::Burstable,
        QosLevel::BestEffort,
    ];
}

#[derive(Debug)]
pub(crate) struct Group {
    pub(crate) path: String,
    pub(crate) parent: Option<usize>,
    pub(crate) children: Vec<usize>,
    pub(crate) limit: Resources,
    pub(crate) usage: Resources,
    pub(crate) alive: bool,
}

/// An in-memory cgroup tree rooted at `kubepods`.
///
/// The root's limit is the node's allocatable capacity; QoS-level groups sit
/// directly below; pods below those; containers below pods.
#[derive(Debug)]
pub struct CgroupFs {
    groups: Vec<Group>,
    by_path: FxHashMap<String, usize>,
    journal: Journal,
    /// Bumped on every create/remove/limit write — anything that can move
    /// an effective limit. Lets callers cache `effective_limit` results
    /// and revalidate with one integer compare.
    limit_epoch: u64,
}

/// Root path constant.
pub const ROOT: &str = "kubepods";

impl CgroupFs {
    /// Create a tree whose root (`kubepods`) is limited to `capacity` and
    /// with the three QoS-level groups pre-created (each initially allowed
    /// the full node capacity, as K8s does — the QoS groups are priority
    /// bands, not static partitions).
    pub fn new(capacity: Resources) -> Self {
        let mut fs = CgroupFs {
            groups: Vec::with_capacity(8),
            by_path: FxHashMap::default(),
            journal: Journal::new(),
            limit_epoch: 1,
        };
        let root = fs.insert(ROOT.to_string(), None, capacity);
        for level in QosLevel::ALL {
            let path = format!("{ROOT}/{}", level.dir());
            fs.insert_child(path, root, capacity);
        }
        fs
    }

    fn insert(&mut self, path: String, parent: Option<usize>, limit: Resources) -> usize {
        let idx = self.groups.len();
        self.groups.push(Group {
            path: path.clone(),
            parent,
            children: Vec::new(),
            limit,
            usage: Resources::ZERO,
            alive: true,
        });
        self.by_path.insert(path.clone(), idx);
        self.journal
            .record(SimTime::ZERO, WriteKind::Create, path, limit);
        self.limit_epoch += 1;
        idx
    }

    fn insert_child(&mut self, path: String, parent: usize, limit: Resources) -> usize {
        let idx = self.insert(path, Some(parent), limit);
        self.groups[parent].children.push(idx);
        idx
    }

    /// Resolve a path to an id.
    pub fn lookup(&self, path: &str) -> Option<CgroupId> {
        self.by_path
            .get(path)
            .copied()
            .filter(|&i| self.groups[i].alive)
            .map(CgroupId)
    }

    /// Id of a QoS-level group.
    pub fn qos_group(&self, level: QosLevel) -> CgroupId {
        self.lookup(&format!("{ROOT}/{}", level.dir()))
            .expect("qos groups exist from construction")
    }

    /// Id of the root group.
    pub fn root(&self) -> CgroupId {
        self.lookup(ROOT).expect("root exists")
    }

    /// Full path of a group.
    pub fn path(&self, id: CgroupId) -> &str {
        &self.groups[id.0].path
    }

    /// Create a child cgroup (a pod under a QoS group, or a container under
    /// a pod) with an initial limit. Fails if the name collides or the limit
    /// exceeds the parent's.
    pub fn create(
        &mut self,
        at: SimTime,
        parent: CgroupId,
        name: &str,
        limit: Resources,
    ) -> Result<CgroupId, TangoError> {
        if !self.groups[parent.0].alive {
            return Err(TangoError::CgroupViolation(format!(
                "parent {} is removed",
                self.groups[parent.0].path
            )));
        }
        let path = format!("{}/{}", self.groups[parent.0].path, name);
        if self.by_path.contains_key(&path) && self.lookup(&path).is_some() {
            return Err(TangoError::CgroupViolation(format!(
                "cgroup {path} already exists"
            )));
        }
        if !limit.fits_within(&self.groups[parent.0].limit) {
            return Err(TangoError::CgroupViolation(format!(
                "initial limit for {path} exceeds parent limit"
            )));
        }
        let idx = self.groups.len();
        self.groups.push(Group {
            path: path.clone(),
            parent: Some(parent.0),
            children: Vec::new(),
            limit,
            usage: Resources::ZERO,
            alive: true,
        });
        self.groups[parent.0].children.push(idx);
        self.by_path.insert(path.clone(), idx);
        self.journal.record(at, WriteKind::Create, path, limit);
        self.limit_epoch += 1;
        Ok(CgroupId(idx))
    }

    /// Remove a cgroup. Fails if it still has live children or charged
    /// usage (`rmdir` on a busy cgroup returns `EBUSY`).
    pub fn remove(&mut self, at: SimTime, id: CgroupId) -> Result<(), TangoError> {
        let g = &self.groups[id.0];
        if !g.alive {
            return Err(TangoError::CgroupViolation(format!(
                "{} already removed",
                g.path
            )));
        }
        if g.children.iter().any(|&c| self.groups[c].alive) {
            return Err(TangoError::CgroupViolation(format!(
                "{} still has live children",
                g.path
            )));
        }
        if !g.usage.is_zero() {
            return Err(TangoError::CgroupViolation(format!(
                "{} is busy (usage nonzero)",
                g.path
            )));
        }
        let path = g.path.clone();
        self.groups[id.0].alive = false;
        self.by_path.remove(&path);
        if let Some(p) = self.groups[id.0].parent {
            self.groups[p].children.retain(|&c| c != id.0);
        }
        self.journal
            .record(at, WriteKind::Remove, path, Resources::ZERO);
        self.limit_epoch += 1;
        Ok(())
    }

    /// Write a new limit to a cgroup's control files.
    ///
    /// Kernel-faithful rejection rules (the reason D-VPA's write order
    /// matters):
    /// 1. the new limit may not exceed the parent's current limit;
    /// 2. the new limit may not be below any live child's current limit;
    /// 3. incompressible dimensions (memory, disk) may not shrink below
    ///    current usage — compressible ones (CPU, bandwidth) may (that is
    ///    throttling).
    pub fn set_limit(
        &mut self,
        at: SimTime,
        id: CgroupId,
        new_limit: Resources,
    ) -> Result<(), TangoError> {
        let g = &self.groups[id.0];
        if !g.alive {
            return Err(TangoError::CgroupViolation(format!(
                "{} is removed",
                g.path
            )));
        }
        if let Some(p) = g.parent {
            if !new_limit.fits_within(&self.groups[p].limit) {
                return Err(TangoError::CgroupViolation(format!(
                    "limit for {} would exceed parent {} limit",
                    g.path, self.groups[p].path
                )));
            }
        }
        for &c in &g.children {
            let child = &self.groups[c];
            if child.alive && !child.limit.fits_within(&new_limit) {
                return Err(TangoError::CgroupViolation(format!(
                    "limit for {} would fall below child {} limit",
                    g.path, child.path
                )));
            }
        }
        for kind in [ResourceKind::Memory, ResourceKind::Disk] {
            if new_limit.get(kind) < g.usage.get(kind) {
                return Err(TangoError::CgroupViolation(format!(
                    "cannot shrink incompressible {kind:?} of {} below usage",
                    g.path
                )));
            }
        }
        let path = g.path.clone();
        self.groups[id.0].limit = new_limit;
        self.journal
            .record(at, WriteKind::SetLimit, path, new_limit);
        self.limit_epoch += 1;
        Ok(())
    }

    /// Epoch of the last structural or limit write (see field docs).
    pub fn limit_epoch(&self) -> u64 {
        self.limit_epoch
    }

    /// The limit written on this cgroup itself.
    pub fn limit(&self, id: CgroupId) -> Resources {
        self.groups[id.0].limit
    }

    /// The *effective* limit: the element-wise minimum over this cgroup and
    /// all its ancestors. This is what the kernel actually enforces.
    pub fn effective_limit(&self, id: CgroupId) -> Resources {
        let mut eff = self.groups[id.0].limit;
        let mut cur = self.groups[id.0].parent;
        while let Some(p) = cur {
            eff = eff.min(&self.groups[p].limit);
            cur = self.groups[p].parent;
        }
        eff
    }

    /// Current charged usage of this cgroup (includes descendants' charges).
    pub fn usage(&self, id: CgroupId) -> Resources {
        self.groups[id.0].usage
    }

    /// Headroom = effective limit − usage (saturating).
    pub fn headroom(&self, id: CgroupId) -> Resources {
        self.effective_limit(id)
            .saturating_sub(&self.groups[id.0].usage)
    }

    /// Charge `amount` of usage to a cgroup and every ancestor. Fails (with
    /// no partial effect) if any group on the path would exceed its own
    /// limit — the moral equivalent of the kernel's OOM/throttle boundary.
    pub fn charge(&mut self, id: CgroupId, amount: Resources) -> Result<(), TangoError> {
        // validate the whole path first
        let mut cur = Some(id.0);
        while let Some(i) = cur {
            let g = &self.groups[i];
            let after = g.usage + amount;
            if !after.fits_within(&g.limit) {
                return Err(TangoError::InsufficientResources {
                    requested: amount,
                    available: g.limit.saturating_sub(&g.usage),
                });
            }
            cur = g.parent;
        }
        let mut cur = Some(id.0);
        while let Some(i) = cur {
            self.groups[i].usage += amount;
            cur = self.groups[i].parent;
        }
        Ok(())
    }

    /// Release previously charged usage along the ancestor path.
    /// Saturates rather than underflowing if accounting drifted.
    pub fn uncharge(&mut self, id: CgroupId, amount: Resources) {
        let mut cur = Some(id.0);
        while let Some(i) = cur {
            self.groups[i].usage = self.groups[i].usage.saturating_sub(&amount);
            cur = self.groups[i].parent;
        }
    }

    /// The write journal.
    pub fn journal(&self) -> &[JournalEntry] {
        self.journal.entries()
    }

    /// Number of limit writes since construction or the last clear.
    pub fn journal_limit_writes(&self) -> usize {
        self.journal.limit_writes()
    }

    /// Clear the journal (between experiment phases).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// The raw group table, for checkpoint encoding.
    pub(crate) fn raw_groups(&self) -> &[Group] {
        &self.groups
    }

    /// Swap in a restored group table (see `snapshot` module).
    pub(crate) fn replace_table(
        &mut self,
        groups: Vec<Group>,
        by_path: FxHashMap<String, usize>,
        journal: Journal,
    ) {
        self.groups = groups;
        self.by_path = by_path;
        self.journal = journal;
    }

    /// Live children of a group.
    pub fn children(&self, id: CgroupId) -> Vec<CgroupId> {
        self.groups[id.0]
            .children
            .iter()
            .filter(|&&c| self.groups[c].alive)
            .map(|&c| CgroupId(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> Resources {
        Resources::new(4_000, 8_192, 1_000, 50_000)
    }

    fn fs_with_pod() -> (CgroupFs, CgroupId, CgroupId) {
        let mut fs = CgroupFs::new(cap());
        let burst = fs.qos_group(QosLevel::Burstable);
        let pod = fs
            .create(
                SimTime::ZERO,
                burst,
                "pod67f7df",
                Resources::new(1_000, 1_024, 100, 1_000),
            )
            .unwrap();
        let ctr = fs
            .create(
                SimTime::ZERO,
                pod,
                "cc13fc77c",
                Resources::new(500, 512, 50, 500),
            )
            .unwrap();
        (fs, pod, ctr)
    }

    #[test]
    fn layout_matches_kubepods_hierarchy() {
        let (fs, pod, ctr) = fs_with_pod();
        assert_eq!(fs.path(pod), "kubepods/burstable/pod67f7df");
        assert_eq!(fs.path(ctr), "kubepods/burstable/pod67f7df/cc13fc77c");
        assert!(fs.lookup("kubepods/guaranteed").is_some());
        assert!(fs.lookup("kubepods/besteffort").is_some());
    }

    #[test]
    fn expand_container_before_pod_fails_but_pod_first_succeeds() {
        let (mut fs, pod, ctr) = fs_with_pod();
        let bigger = Resources::new(2_000, 2_048, 200, 2_000);

        // Wrong order: container first — exceeds the pod limit -> rejected.
        let err = fs.set_limit(SimTime::ZERO, ctr, bigger).unwrap_err();
        assert!(matches!(err, TangoError::CgroupViolation(_)));

        // Right order (Fig. 5): pod level first, then container level.
        fs.set_limit(SimTime::ZERO, pod, bigger).unwrap();
        fs.set_limit(SimTime::ZERO, ctr, bigger).unwrap();
        assert_eq!(fs.limit(ctr), bigger);
    }

    #[test]
    fn shrink_pod_before_container_fails_but_container_first_succeeds() {
        let (mut fs, pod, ctr) = fs_with_pod();
        let smaller = Resources::new(250, 256, 25, 250);

        // Wrong order: pod first would fall below the container's limit.
        let err = fs.set_limit(SimTime::ZERO, pod, smaller).unwrap_err();
        assert!(matches!(err, TangoError::CgroupViolation(_)));

        // Right order: container level first, then pod level.
        fs.set_limit(SimTime::ZERO, ctr, smaller).unwrap();
        fs.set_limit(SimTime::ZERO, pod, smaller).unwrap();
        assert_eq!(fs.effective_limit(ctr), smaller);
    }

    #[test]
    fn incompressible_cannot_shrink_below_usage() {
        let (mut fs, _pod, ctr) = fs_with_pod();
        fs.charge(ctr, Resources::cpu_mem(400, 400)).unwrap();

        // CPU (compressible) may shrink below usage: that's throttling.
        fs.set_limit(SimTime::ZERO, ctr, Resources::new(100, 512, 50, 500))
            .unwrap();

        // Memory (incompressible) may not.
        let err = fs
            .set_limit(SimTime::ZERO, ctr, Resources::new(100, 100, 50, 500))
            .unwrap_err();
        assert!(matches!(err, TangoError::CgroupViolation(_)));
    }

    #[test]
    fn charge_propagates_to_ancestors_and_is_atomic() {
        let (mut fs, pod, ctr) = fs_with_pod();
        let burst = fs.qos_group(QosLevel::Burstable);
        fs.charge(ctr, Resources::cpu_mem(300, 300)).unwrap();
        assert_eq!(fs.usage(ctr).cpu_milli, 300);
        assert_eq!(fs.usage(pod).cpu_milli, 300);
        assert_eq!(fs.usage(burst).cpu_milli, 300);
        assert_eq!(fs.usage(fs.root()).memory_mib, 300);

        // A charge that would blow the container limit fails with NO
        // partial effect anywhere on the path.
        let before_root = fs.usage(fs.root());
        assert!(fs.charge(ctr, Resources::cpu_mem(400, 0)).is_err());
        assert_eq!(fs.usage(fs.root()), before_root);

        fs.uncharge(ctr, Resources::cpu_mem(300, 300));
        assert!(fs.usage(fs.root()).is_zero());
    }

    #[test]
    fn effective_limit_is_min_over_path() {
        let (mut fs, pod, ctr) = fs_with_pod();
        // Shrink only the pod's CPU (allowed: child cpu 500 <= 600).
        fs.set_limit(SimTime::ZERO, pod, Resources::new(600, 1_024, 100, 1_000))
            .unwrap();
        // Container keeps its own 500m limit; effective min(500, 600) = 500.
        assert_eq!(fs.effective_limit(ctr).cpu_milli, 500);
        // Now raise the container... rejected above parent.
        assert!(fs
            .set_limit(SimTime::ZERO, ctr, Resources::new(700, 512, 50, 500))
            .is_err());
    }

    #[test]
    fn remove_requires_empty_and_idle() {
        let (mut fs, pod, ctr) = fs_with_pod();
        // busy child
        fs.charge(ctr, Resources::cpu_mem(10, 10)).unwrap();
        assert!(fs.remove(SimTime::ZERO, ctr).is_err());
        fs.uncharge(ctr, Resources::cpu_mem(10, 10));
        // parent with live child
        assert!(fs.remove(SimTime::ZERO, pod).is_err());
        fs.remove(SimTime::ZERO, ctr).unwrap();
        fs.remove(SimTime::ZERO, pod).unwrap();
        assert!(fs.lookup("kubepods/burstable/pod67f7df").is_none());
    }

    #[test]
    fn recreate_after_remove_is_allowed() {
        let (mut fs, pod, ctr) = fs_with_pod();
        fs.remove(SimTime::ZERO, ctr).unwrap();
        fs.remove(SimTime::ZERO, pod).unwrap();
        let burst = fs.qos_group(QosLevel::Burstable);
        let pod2 = fs
            .create(
                SimTime::ZERO,
                burst,
                "pod67f7df",
                Resources::cpu_mem(100, 100),
            )
            .unwrap();
        assert_eq!(fs.path(pod2), "kubepods/burstable/pod67f7df");
    }

    #[test]
    fn duplicate_create_rejected() {
        let (mut fs, _pod, _ctr) = fs_with_pod();
        let burst = fs.qos_group(QosLevel::Burstable);
        assert!(fs
            .create(SimTime::ZERO, burst, "pod67f7df", Resources::ZERO)
            .is_err());
    }

    #[test]
    fn create_over_parent_limit_rejected() {
        let mut fs = CgroupFs::new(cap());
        let burst = fs.qos_group(QosLevel::Burstable);
        let huge = Resources::new(100_000, 1, 1, 1);
        assert!(fs.create(SimTime::ZERO, burst, "p", huge).is_err());
    }

    #[test]
    fn journal_records_ordered_writes() {
        let (mut fs, pod, ctr) = fs_with_pod();
        fs.clear_journal();
        let bigger = Resources::new(2_000, 2_048, 200, 2_000);
        fs.set_limit(SimTime::from_millis(1), pod, bigger).unwrap();
        fs.set_limit(SimTime::from_millis(2), ctr, bigger).unwrap();
        let j = fs.journal();
        assert_eq!(j.len(), 2);
        assert!(j[0].path.ends_with("pod67f7df"));
        assert!(j[1].path.ends_with("cc13fc77c"));
        assert!(j[0].at < j[1].at);
        assert_eq!(fs.journal_limit_writes(), 2);
    }

    #[test]
    fn headroom_subtracts_usage_from_effective() {
        let (mut fs, _pod, ctr) = fs_with_pod();
        fs.charge(ctr, Resources::cpu_mem(200, 100)).unwrap();
        let hr = fs.headroom(ctr);
        assert_eq!(hr.cpu_milli, 300);
        assert_eq!(hr.memory_mib, 412);
    }

    #[test]
    fn children_lists_only_live() {
        let (mut fs, pod, ctr) = fs_with_pod();
        assert_eq!(fs.children(pod), vec![ctr]);
        fs.remove(SimTime::ZERO, ctr).unwrap();
        assert!(fs.children(pod).is_empty());
    }
}

//! A minimal dense neural-network library.
//!
//! DCG-BE's networks are tiny — a two-hop GraphSAGE encoder and 3-layer
//! ReLU MLPs of 256/128/32 hidden units trained with Adam at lr = 2 × 10⁻⁴
//! (§5.3.2) — so rather than binding a framework we implement exactly what
//! the paper needs: row-major `f32` matrices, linear layers with manual
//! backprop, ReLU/tanh/softmax, and Adam. Gradient correctness is pinned by
//! finite-difference tests.

pub mod adam;
pub mod init;
pub mod linear;
pub mod mlp;
pub mod snap_impls;
pub mod tensor;

pub use adam::Adam;
pub use linear::Linear;
pub use mlp::Mlp;
pub use tensor::Matrix;

//! Row-major `f32` matrices with the operations the NN stack needs.

use tango_types::TangoError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major vector. Errors on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TangoError> {
        if data.len() != rows * cols {
            return Err(TangoError::NnShape(format!(
                "from_vec: {}x{} needs {} values, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Element at (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row, mutable.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (rows×cols · cols×k). Panics on shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // Blocked i-k-j: a KB-row panel of `other` stays cache-resident
        // while every row of `self` streams past it. For each output
        // element the k's still accumulate in ascending order (panels
        // ascend, k ascends within a panel), so results are bit-identical
        // to the naive triple loop. The inner axpy is slice-zip form:
        // independent lanes, no bounds checks, auto-vectorizable.
        //
        // Output rows are disjoint, so the row loop fans out over the
        // global pool (statically chunked; each chunk keeps the same
        // panel order), bit-identical at any thread count.
        const KB: usize = 64;
        let cols = other.cols;
        let pool = tango_par::global().limit(self.rows * self.cols * cols, 1 << 17);
        pool.par_chunks_mut(out.as_mut_slice(), cols.max(1), |first_row, out_rows| {
            let mut kb = 0;
            while kb < self.cols {
                let kend = (kb + KB).min(self.cols);
                for (r, out_row) in out_rows.chunks_mut(cols).enumerate() {
                    let arow = &self.row(first_row + r)[kb..kend];
                    for (dk, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let orow = other.row(kb + dk);
                        for (o, &b) in out_row.iter_mut().zip(orow) {
                            *o += a * b;
                        }
                    }
                }
                kb = kend;
            }
        });
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        // Blocked over `other`'s rows so a JB-row panel is reused across
        // every row of `self`. Each dot product is the same strict
        // left-to-right reduction as before, so results are bit-identical
        // — and output rows are independent, so they fan out over the
        // global pool like `matmul`.
        const JB: usize = 64;
        let cols = other.rows;
        let pool = tango_par::global().limit(self.rows * self.cols * cols, 1 << 17);
        pool.par_chunks_mut(out.as_mut_slice(), cols.max(1), |first_row, out_rows| {
            let mut jb = 0;
            while jb < cols {
                let jend = (jb + JB).min(cols);
                for (r, out_row_full) in out_rows.chunks_mut(cols).enumerate() {
                    let arow = self.row(first_row + r);
                    let out_row = &mut out_row_full[jb..jend];
                    for (o, j) in out_row.iter_mut().zip(jb..jend) {
                        let brow = other.row(j);
                        *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                    }
                }
                jb = jend;
            }
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum; panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise add.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(self.cols, bias.len());
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale all elements.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * s).collect(),
        }
    }

    /// Apply a function element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Mean of each column → 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c] += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for v in &mut out.data {
            *v *= inv;
        }
        out
    }

    /// Row-wise numerically stable softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = m(2, 4, &[2.0, 0.0, 1.0, -1.0, 3.0, 1.0, 0.0, 2.0]);
        // aᵀ·b  via t_matmul vs explicit transpose
        let t1 = a.t_matmul(&b);
        let t2 = a.transpose().matmul(&b);
        assert_eq!(t1, t2);
        // a·cᵀ via matmul_t vs explicit
        let c = m(
            4,
            3,
            &[1.0, 0.0, 2.0, 0.0, 1.0, 0.0, 2.0, 2.0, 2.0, -1.0, 0.0, 1.0],
        );
        let u1 = a.matmul_t(&c);
        let u2 = a.matmul(&c.transpose());
        assert_eq!(u1, u2);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[1.0, 4.0, 9.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn bias_broadcast_adds_to_each_row() {
        let mut a = Matrix::zeros(2, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn mean_rows_averages() {
        let a = m(2, 2, &[1.0, 10.0, 3.0, 20.0]);
        let mu = a.mean_rows();
        assert_eq!(mu.as_slice(), &[2.0, 15.0]);
        // empty matrix -> zeros
        let e = Matrix::zeros(0, 3);
        assert_eq!(e.mean_rows().as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_is_a_distribution_and_stable() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // big logits don't overflow
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // ordering preserved
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn norm_is_frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    /// Reference triple-loop products for checking the blocked kernels.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut acc = 0.0f32;
                for k in 0..a.cols {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// The row-parallel kernels preserve the per-element accumulation
    /// order, so any thread count must match the single-thread result
    /// bit-for-bit (the tango-par determinism contract).
    #[test]
    fn matmul_is_thread_count_invariant() {
        let a =
            Matrix::from_vec(67, 130, (0..67 * 130).map(|i| (i as f32).sin()).collect()).unwrap();
        let b =
            Matrix::from_vec(130, 41, (0..130 * 41).map(|i| (i as f32).cos()).collect()).unwrap();
        let saved = tango_par::threads();
        tango_par::set_threads(1);
        let (m1, t1) = (a.matmul(&b), a.matmul_t(&b.transpose()));
        for t in [2usize, 4, 8] {
            tango_par::set_threads(t);
            assert_eq!(a.matmul(&b), m1, "matmul, threads = {t}");
            assert_eq!(a.matmul_t(&b.transpose()), t1, "matmul_t, threads = {t}");
        }
        tango_par::set_threads(saved);
    }

    /// The blocked kernels preserve the naive kernels' per-element
    /// accumulation order, so they must match bit-for-bit — including on
    /// shapes larger than one block and on non-multiple-of-block sizes.
    #[test]
    fn blocked_matmul_matches_naive_reference() {
        let mut state = 0x243F6A8885A308D3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 16777216.0 - 0.5
        };
        for &(r, k, c) in &[
            (3usize, 5usize, 4usize),
            (17, 64, 9),
            (33, 130, 70),
            (1, 200, 1),
        ] {
            let a = Matrix::from_vec(r, k, (0..r * k).map(|_| rnd()).collect()).unwrap();
            let b = Matrix::from_vec(k, c, (0..k * c).map(|_| rnd()).collect()).unwrap();
            let blocked = a.matmul(&b);
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked, naive, "matmul {r}x{k}·{k}x{c}");
            // matmul_t: a · (bᵀ)ᵀ, i.e. against a c×k matrix
            let bt = b.transpose();
            let blocked_t = a.matmul_t(&bt);
            assert_eq!((blocked_t.rows, blocked_t.cols), (r, c));
            for i in 0..r {
                for j in 0..c {
                    let d = (blocked_t.get(i, j) - naive.get(i, j)).abs();
                    assert!(d < 1e-5, "matmul_t [{i},{j}] off by {d}");
                }
            }
        }
    }
}

//! Multi-layer perceptron: Linear→ReLU stacks with a linear output layer.
//!
//! The paper's actor and critic are "three-layer ReLU NN with 256, 128 and
//! 32 hidden units per layer" (§5.3.2); [`Mlp::paper_head`] builds exactly
//! that shape.

use crate::adam::Adam;
use crate::linear::Linear;
use crate::tensor::Matrix;
use tango_simcore::SimRng;

/// An MLP with ReLU hidden activations, a linear output, and an embedded
/// Adam optimizer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// ReLU masks cached per hidden layer during `forward`.
    masks: Vec<Matrix>,
    adam: Adam,
    /// (weight slot, bias slot) per layer.
    slots: Vec<(usize, usize)>,
}

impl Mlp {
    /// Build an MLP with the given layer dimensions, e.g. `[in, 256, 128,
    /// 32, out]`, and an Adam optimizer at `lr`.
    pub fn new(dims: &[usize], lr: f32, rng: &mut SimRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut adam = Adam::new(lr);
        let mut slots = Vec::new();
        for w in dims.windows(2) {
            let layer = Linear::new(w[0], w[1], rng);
            let ws = adam.register(w[0] * w[1]);
            let bs = adam.register(w[1]);
            slots.push((ws, bs));
            layers.push(layer);
        }
        Mlp {
            layers,
            masks: Vec::new(),
            adam,
            slots,
        }
    }

    /// The paper's 256/128/32 head with the paper's learning rate.
    pub fn paper_head(in_dim: usize, out_dim: usize, rng: &mut SimRng) -> Self {
        Mlp::new(&[in_dim, 256, 128, 32, out_dim], 2e-4, rng)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows * l.w.cols + l.b.len())
            .sum()
    }

    /// Training forward pass (caches activations for backward).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.masks.clear();
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                let mask = h.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                h = h.map(|v| v.max(0.0));
                self.masks.push(mask);
            }
        }
        h
    }

    /// Inference forward pass (no caches touched).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_inference(&h);
            if i + 1 < n {
                h = h.map(|v| v.max(0.0));
            }
        }
        h
    }

    /// Backward pass from ∂L/∂output; accumulates layer gradients and
    /// returns ∂L/∂input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut g = grad_out.clone();
        for i in (0..n).rev() {
            if i + 1 < n {
                g = g.hadamard(&self.masks[i]);
            }
            g = self.layers[i].backward(&g);
        }
        g
    }

    /// Apply one Adam step from the accumulated gradients, then zero them.
    pub fn step(&mut self) {
        self.adam.begin_step();
        for (layer, &(ws, bs)) in self.layers.iter_mut().zip(&self.slots) {
            let [(w, gw), (b, gb)] = layer.params_and_grads();
            // split borrows: copy grads out (they're small)
            let gw = gw.to_vec();
            let gb = gb.to_vec();
            self.adam.update(ws, w, &gw);
            self.adam.update(bs, b, &gb);
        }
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Zero gradients without stepping.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Copy all parameters from another identically-shaped MLP (target
    /// network sync in SAC).
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w = b.w.clone();
            a.b = b.b.clone();
        }
    }

    /// Write every layer's weights and biases, then the embedded Adam
    /// state. Gradients and ReLU mask caches are transient (zeroed or
    /// rebuilt on the next training pass at any snapshot boundary) and
    /// are excluded so re-encoding restored state is byte-stable.
    pub fn snap_write(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        w.put_u64(self.layers.len() as u64);
        for layer in &self.layers {
            layer.w.encode(w);
            layer.b.encode(w);
        }
        self.adam.snap_write(w);
    }

    /// Overwrite parameters and optimizer state from a
    /// [`Mlp::snap_write`] encoding. This MLP must have been constructed
    /// with the same layer dimensions; anything else is rejected as
    /// `SnapError::Corrupt`. Gradients are zeroed.
    pub fn snap_read(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapError};
        let n = r.len_prefix(1)?;
        if n != self.layers.len() {
            return Err(SnapError::Corrupt("mlp layer count mismatch"));
        }
        for layer in &mut self.layers {
            let w = Matrix::decode(r)?;
            let b = Vec::<f32>::decode(r)?;
            if w.rows != layer.w.rows || w.cols != layer.w.cols || b.len() != layer.b.len() {
                return Err(SnapError::Corrupt("mlp layer shape mismatch"));
            }
            layer.w = w;
            layer.b = b;
        }
        self.adam.snap_read(r)?;
        self.zero_grad();
        Ok(())
    }

    /// Soft-update parameters: θ ← τ·θ_src + (1−τ)·θ (Polyak averaging).
    pub fn polyak_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            for (x, &y) in a.w.as_mut_slice().iter_mut().zip(b.w.as_slice()) {
                *x = tau * y + (1.0 - tau) * *x;
            }
            for (x, &y) in a.b.iter_mut().zip(&b.b) {
                *x = tau * y + (1.0 - tau) * *x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_head_shape() {
        let mut rng = SimRng::new(1);
        let mlp = Mlp::paper_head(16, 4, &mut rng);
        assert_eq!(mlp.in_dim(), 16);
        assert_eq!(mlp.out_dim(), 4);
        // params: 16*256+256 + 256*128+128 + 128*32+32 + 32*4+4
        assert_eq!(
            mlp.param_count(),
            16 * 256 + 256 + 256 * 128 + 128 + 128 * 32 + 32 + 32 * 4 + 4
        );
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = SimRng::new(2);
        let mut mlp = Mlp::new(&[3, 8, 2], 1e-3, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.5, 2.0, 1.0, 1.0, -1.0]).unwrap();
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a, b);
    }

    /// End-to-end gradient check through ReLU layers.
    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let mut rng = SimRng::new(9);
        let mut mlp = Mlp::new(&[4, 6, 3], 1e-3, &mut rng);
        let x = Matrix::from_vec(2, 4, vec![0.3, -0.2, 0.8, 1.1, -0.6, 0.4, 0.9, -1.2]).unwrap();
        let loss = |m: &Mlp, x: &Matrix| -> f64 {
            let y = m.forward_inference(x);
            y.as_slice()
                .iter()
                .map(|&v| (v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let y = mlp.forward(&x);
        mlp.backward(&y);
        let eps = 1e-3f32;
        // probe a few weights in each layer
        for li in 0..2 {
            for idx in [0usize, 3, 7] {
                let orig = mlp.layers[li].w.as_slice()[idx];
                mlp.layers[li].w.as_mut_slice()[idx] = orig + eps;
                let lp = loss(&mlp, &x);
                mlp.layers[li].w.as_mut_slice()[idx] = orig - eps;
                let lm = loss(&mlp, &x);
                mlp.layers[li].w.as_mut_slice()[idx] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                let ana = mlp.layers[li].grad_w.as_slice()[idx] as f64;
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "layer {li} w[{idx}]: num {num} ana {ana}"
                );
            }
        }
    }

    /// Train a tiny MLP to fit XOR — exercises forward/backward/step
    /// together.
    #[test]
    fn learns_xor() {
        let mut rng = SimRng::new(77);
        let mut mlp = Mlp::new(&[2, 16, 1], 0.02, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let t = [0.0f32, 1.0, 1.0, 0.0];
        for _ in 0..800 {
            let y = mlp.forward(&x);
            // MSE grad
            let mut g = Matrix::zeros(4, 1);
            for (r, &want) in t.iter().enumerate() {
                g.set(r, 0, (y.get(r, 0) - want) / 4.0);
            }
            mlp.backward(&g);
            mlp.step();
        }
        let y = mlp.forward_inference(&x);
        for (r, &want) in t.iter().enumerate() {
            assert!(
                (y.get(r, 0) - want).abs() < 0.25,
                "xor[{r}] = {} want {want}",
                y.get(r, 0)
            );
        }
    }

    #[test]
    fn copy_and_polyak_sync_parameters() {
        let mut rng = SimRng::new(5);
        let src = Mlp::new(&[2, 4, 1], 1e-3, &mut rng);
        let mut dst = Mlp::new(&[2, 4, 1], 1e-3, &mut rng);
        dst.copy_params_from(&src);
        assert_eq!(dst.layers[0].w, src.layers[0].w);
        // polyak with tau=1 equals copy
        let mut dst2 = Mlp::new(&[2, 4, 1], 1e-3, &mut rng);
        dst2.polyak_from(&src, 1.0);
        assert_eq!(dst2.layers[1].w, src.layers[1].w);
        // tau=0 is a no-op
        let before = dst.layers[0].w.clone();
        dst.polyak_from(&dst2, 0.0);
        assert_eq!(dst.layers[0].w, before);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn degenerate_dims_panic() {
        let mut rng = SimRng::new(1);
        let _ = Mlp::new(&[4], 1e-3, &mut rng);
    }
}

//! The Adam optimizer.
//!
//! §5.3.2: "The Adam optimizer with a fixed learning rate of 2 × 10⁻⁴ is
//! used." State (first/second moment) is kept per registered parameter
//! slot; the step count is shared, as in the reference algorithm.

/// Adam with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's optimizer: lr = 2e-4.
    pub fn paper_default() -> Self {
        Adam::new(2e-4)
    }

    /// Register a parameter tensor of `len` values; returns its slot id.
    pub fn register(&mut self, len: usize) -> usize {
        self.m.push(vec![0.0; len]);
        self.v.push(vec![0.0; len]);
        self.m.len() - 1
    }

    /// Advance the shared step counter. Call once per optimization step,
    /// before updating the slots of that step.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Write the step counter and both moment vectors to a snapshot.
    ///
    /// `lr`/betas/eps are construction-time configuration and are *not*
    /// encoded; the restore target supplies them.
    pub fn snap_write(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        w.put_i64(self.t as i64);
        self.m.encode(w);
        self.v.encode(w);
    }

    /// Overwrite the optimizer moments from an encoding produced by
    /// [`Adam::snap_write`]. The registered slot layout (count and
    /// per-slot length) must match this optimizer's.
    pub fn snap_read(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapError};
        let t = r.i64()?;
        let t = i32::try_from(t).map_err(|_| SnapError::Corrupt("adam step counter"))?;
        let m = Vec::<Vec<f32>>::decode(r)?;
        let v = Vec::<Vec<f32>>::decode(r)?;
        let shape_ok = m.len() == self.m.len()
            && v.len() == self.v.len()
            && m.iter().zip(&self.m).all(|(a, b)| a.len() == b.len())
            && v.iter().zip(&self.v).all(|(a, b)| a.len() == b.len());
        if !shape_ok {
            return Err(SnapError::Corrupt("adam slot layout mismatch"));
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Apply one Adam update to `param` from `grad` using slot state.
    pub fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        assert_eq!(param.len(), self.m[slot].len(), "slot length mismatch");
        assert!(self.t > 0, "call begin_step before update");
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        for i in 0..param.len() {
            let g = grad[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)^2; Adam should converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let slot = opt.register(1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.begin_step();
            opt.update(slot, &mut x, &grad);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    /// First step moves by ~lr regardless of gradient scale (Adam's
    /// signature behaviour).
    #[test]
    fn first_step_magnitude_is_lr() {
        for g in [1e-3f32, 1.0, 1e3] {
            let mut opt = Adam::new(0.01);
            let slot = opt.register(1);
            let mut x = [0.0f32];
            opt.begin_step();
            opt.update(slot, &mut x, &[g]);
            assert!((x[0].abs() - 0.01).abs() < 1e-3, "grad {g}: step {}", x[0]);
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Adam::new(0.1);
        let a = opt.register(1);
        let b = opt.register(1);
        let mut xa = [0.0f32];
        let mut xb = [0.0f32];
        opt.begin_step();
        opt.update(a, &mut xa, &[1.0]);
        // slot b untouched: its moments are still zero
        opt.begin_step();
        opt.update(b, &mut xb, &[1.0]);
        assert!(xa[0] != 0.0 && xb[0] != 0.0);
    }

    #[test]
    #[should_panic(expected = "param/grad length mismatch")]
    fn length_mismatch_panics() {
        let mut opt = Adam::new(0.1);
        let slot = opt.register(2);
        let mut x = [0.0f32, 0.0];
        opt.begin_step();
        opt.update(slot, &mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_begin_step_panics() {
        let mut opt = Adam::new(0.1);
        let slot = opt.register(1);
        let mut x = [0.0f32];
        opt.update(slot, &mut x, &[1.0]);
    }
}

//! Weight initialization.

use crate::tensor::Matrix;
use tango_simcore::SimRng;

/// He (Kaiming) normal initialization for a `fan_in × fan_out` weight
/// matrix — the right scaling for ReLU networks.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut SimRng) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let data: Vec<f32> = (0..fan_in * fan_out)
        .map(|_| (rng.standard_normal() * std) as f32)
        .collect();
    Matrix::from_vec(fan_in, fan_out, data).expect("shape by construction")
}

/// Xavier/Glorot uniform initialization, for tanh/linear output layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SimRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let data: Vec<f32> = (0..fan_in * fan_out)
        .map(|_| rng.range_f64(-limit, limit) as f32)
        .collect();
    Matrix::from_vec(fan_in, fan_out, data).expect("shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_variance_roughly_two_over_fan_in() {
        let mut rng = SimRng::new(1);
        let w = he_normal(100, 200, &mut rng);
        let n = (w.rows * w.cols) as f32;
        let mean: f32 = w.as_slice().iter().sum::<f32>() / n;
        let var: f32 = w
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 0.02).abs() < 0.005, "var={var}");
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = SimRng::new(2);
        let w = xavier_uniform(50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = he_normal(10, 10, &mut SimRng::new(5));
        let b = he_normal(10, 10, &mut SimRng::new(5));
        assert_eq!(a, b);
    }
}

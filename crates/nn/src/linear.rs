//! A fully-connected layer with manual backprop.

use crate::init::he_normal;
use crate::tensor::Matrix;
use tango_simcore::SimRng;

/// `y = x·W + b` with cached activations for the backward pass.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f32>,
    /// ∂L/∂W accumulated by `backward`.
    pub grad_w: Matrix,
    /// ∂L/∂b accumulated by `backward`.
    pub grad_b: Vec<f32>,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// He-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SimRng) -> Self {
        Linear {
            w: he_normal(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols
    }

    /// Forward pass on a batch (`batch × in_dim`), caching the input.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.w.rows, "linear forward dim mismatch");
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        self.cached_input = Some(x.clone());
        y
    }

    /// Forward without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass: given ∂L/∂y, accumulate ∂L/∂W and ∂L/∂b and return
    /// ∂L/∂x. Must follow a `forward` call.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.rows, x.rows, "batch size mismatch in backward");
        // dW = xᵀ · dY
        self.grad_w.add_assign(&x.t_matmul(grad_out));
        // db = column sums of dY
        for r in 0..grad_out.rows {
            for (c, &g) in grad_out.row(r).iter().enumerate() {
                self.grad_b[c] += g;
            }
        }
        // dX = dY · Wᵀ
        grad_out.matmul_t(&self.w)
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows, self.w.cols);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// (parameter, gradient) slices for the optimizer: weights then bias.
    pub fn params_and_grads(&mut self) -> [(&mut [f32], &[f32]); 2] {
        let Linear {
            w,
            b,
            grad_w,
            grad_b,
            ..
        } = self;
        [
            (w.as_mut_slice(), grad_w.as_slice()),
            (b.as_mut_slice(), grad_b.as_slice()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of dW, db and dX.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SimRng::new(11);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::from_vec(2, 4, vec![0.5, -1.0, 2.0, 0.1, 1.5, 0.3, -0.7, 0.9]).unwrap();

        // loss = sum(y^2)/2 so dL/dy = y
        let loss = |layer: &Linear, x: &Matrix| -> f64 {
            let y = layer.forward_inference(x);
            y.as_slice()
                .iter()
                .map(|&v| (v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };

        let y = layer.forward(&x);
        let grad_in = layer.backward(&y);

        let eps = 1e-3f32;
        // check dW entries
        for idx in [0usize, 5, 11] {
            let orig = layer.w.as_slice()[idx];
            layer.w.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.w.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.w.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = layer.grad_w.as_slice()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{idx}]: num {num} vs ana {ana}"
            );
        }
        // check db entries
        for idx in 0..3 {
            let orig = layer.b[idx];
            layer.b[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.b[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.b[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = layer.grad_b[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "db[{idx}]: num {num} vs ana {ana}"
            );
        }
        // check dX entries
        let mut x2 = x.clone();
        for idx in [0usize, 3, 7] {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = grad_in.as_slice()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dX[{idx}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = SimRng::new(3);
        let mut layer = Linear::new(5, 2, &mut rng);
        let x = Matrix::from_vec(1, 5, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(layer.forward(&x), layer.forward_inference(&x));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = SimRng::new(7);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        layer.forward(&x);
        layer.backward(&g);
        let once = layer.grad_w.as_slice().to_vec();
        layer.forward(&x);
        layer.backward(&g);
        for (a, b) in layer.grad_w.as_slice().iter().zip(&once) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        layer.zero_grad();
        assert!(layer.grad_w.as_slice().iter().all(|&v| v == 0.0));
        assert!(layer.grad_b.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SimRng::new(1);
        let mut layer = Linear::new(2, 2, &mut rng);
        let g = Matrix::zeros(1, 2);
        layer.backward(&g);
    }
}

//! `tango-snap` codecs for network parameters and optimizer state.
//!
//! Checkpointing a trained agent needs bit-exact round trips of the
//! weights *and* the Adam moments: resuming with fresh moments would
//! change every subsequent update and break resume-equivalence. Shapes
//! are a function of construction (layer dims come from config), so the
//! restore paths validate against the live structure instead of
//! re-encoding dimensions redundantly — a shape mismatch is a config
//! error and surfaces as [`SnapError::Corrupt`].

use crate::tensor::Matrix;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};

impl SnapEncode for Matrix {
    fn encode(&self, w: &mut SnapWriter) {
        self.rows.encode(w);
        self.cols.encode(w);
        for &v in self.as_slice() {
            w.put_f32(v);
        }
    }
}

impl SnapDecode for Matrix {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let rows = usize::decode(r)?;
        let cols = usize::decode(r)?;
        let n = rows
            .checked_mul(cols)
            .ok_or(SnapError::Corrupt("matrix element count overflows"))?;
        if n.saturating_mul(4) > r.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|_| SnapError::Corrupt("matrix shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use tango_simcore::SimRng;

    fn bytes_of(m: &Mlp) -> Vec<u8> {
        let mut w = SnapWriter::new();
        m.snap_write(&mut w);
        w.into_bytes()
    }

    #[test]
    fn matrix_round_trips_bit_exactly() {
        let m =
            Matrix::from_vec(2, 3, vec![0.1, -2.5e-8, f32::MIN_POSITIVE, 4.0, -0.0, 9.9]).unwrap();
        let mut w = SnapWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Matrix::decode(&mut r).unwrap();
        assert_eq!(back, m);
        assert!(r.is_empty());
    }

    /// Restored weights + moments must continue training exactly like
    /// the original: take two networks, sync via snapshot, train both on
    /// the same batch, and compare bytes again.
    #[test]
    fn mlp_resume_reproduces_updates() {
        let mut rng = SimRng::new(41);
        let mut a = Mlp::new(&[3, 8, 2], 1e-3, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.4, -0.1, 1.2, 0.0, 0.9, -0.7]).unwrap();
        // accumulate some Adam history so t/m/v are non-trivial
        for _ in 0..3 {
            let y = a.forward(&x);
            a.backward(&y);
            a.step();
        }
        let snap = bytes_of(&a);
        let mut b = Mlp::new(&[3, 8, 2], 1e-3, &mut SimRng::new(999));
        b.snap_read(&mut SnapReader::new(&snap)).unwrap();
        assert_eq!(bytes_of(&b), snap, "restore is byte-stable");
        for m in [&mut a, &mut b] {
            let y = m.forward(&x);
            m.backward(&y);
            m.step();
        }
        assert_eq!(bytes_of(&a), bytes_of(&b), "post-restore updates diverged");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = SimRng::new(1);
        let a = Mlp::new(&[3, 8, 2], 1e-3, &mut rng);
        let snap = bytes_of(&a);
        let mut wrong = Mlp::new(&[3, 4, 2], 1e-3, &mut rng);
        assert!(matches!(
            wrong.snap_read(&mut SnapReader::new(&snap)),
            Err(SnapError::Corrupt(_))
        ));
        let mut fewer = Mlp::new(&[3, 2], 1e-3, &mut rng);
        assert!(matches!(
            fewer.snap_read(&mut SnapReader::new(&snap)),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_mlp_snapshot_is_rejected() {
        let mut rng = SimRng::new(2);
        let a = Mlp::new(&[3, 8, 2], 1e-3, &mut rng);
        let snap = bytes_of(&a);
        let mut b = Mlp::new(&[3, 8, 2], 1e-3, &mut rng);
        assert!(b
            .snap_read(&mut SnapReader::new(&snap[..snap.len() / 2]))
            .is_err());
    }
}

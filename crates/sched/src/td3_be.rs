//! Td3Be: continuous-action BE scheduling over the TD3 learner.
//!
//! DCG-BE and GNN-SAC pick a node and grant the request's nominal
//! demand; right-sizing then falls to D-VPA after the pod lands. Td3Be
//! folds sizing into the scheduling action itself: the [`Td3Agent`]
//! emits per-candidate `[cpu, mem]` fractions in `[min_frac, 1]`, the
//! placement is the critic argmax over feasible nodes, and the chosen
//! node is granted `demand × fractions` through the normal
//! reservation/allocator path (via [`BeScheduler::schedule_sized`]).
//!
//! Feasibility in the context filter is checked against the *floor*
//! grant (`demand × min_frac`): a node that can host the squeezed
//! request is a valid action even when the nominal demand would not fit,
//! which is precisely the extra packing headroom a continuous action
//! space buys.

use crate::dcg_be::{build_graph, context_mask, BeScheduler, FEATURE_DIM};
use crate::view::CandidateNode;
use tango_gnn::EncoderKind;
use tango_rl::{Td3Agent, Td3Config, ACTION_DIM};
use tango_types::{NodeId, Resources};

/// Configuration for [`Td3Be`].
#[derive(Debug, Clone)]
pub struct Td3BeConfig {
    /// GNN structure (paper default: GraphSAGE).
    pub encoder_kind: EncoderKind,
    /// Learning rate.
    pub lr: f32,
    /// Collected samples per training round.
    pub train_interval: usize,
    /// Floor on grant fractions.
    pub min_frac: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Td3BeConfig {
    fn default() -> Self {
        Td3BeConfig {
            encoder_kind: EncoderKind::Sage { p: 3 },
            lr: 2e-4,
            train_interval: 32,
            min_frac: 0.25,
            seed: 47,
        }
    }
}

/// TD3 continuous-action BE scheduler backend.
pub struct Td3Be {
    agent: Td3Agent,
    min_frac: f32,
}

impl Td3Be {
    /// Build from config.
    pub fn new(cfg: Td3BeConfig) -> Self {
        let td3 = Td3Config {
            encoder_kind: cfg.encoder_kind,
            feature_dim: FEATURE_DIM,
            lr: cfg.lr,
            train_interval: cfg.train_interval,
            min_frac: cfg.min_frac,
            seed: cfg.seed,
            ..Td3Config::default()
        };
        Td3Be {
            agent: Td3Agent::new(td3),
            min_frac: cfg.min_frac,
        }
    }

    /// Training rounds completed (diagnostics).
    pub fn train_rounds(&self) -> usize {
        self.agent.train_rounds
    }

    /// The floor grant the context filter checks against.
    fn floor_demand(&self, demand: &Resources) -> Resources {
        scale_demand(demand, &[self.min_frac; ACTION_DIM])
    }
}

/// Scale a demand's CPU/memory by the action fractions, keeping at least
/// one unit of each dimension the demand actually uses so a grant never
/// degenerates to zero. Bandwidth and disk pass through unscaled — the
/// action space covers the two dimensions the paper's D-VPA tunes.
pub fn scale_demand(demand: &Resources, frac: &[f32; ACTION_DIM]) -> Resources {
    let scale = |v: u64, f: f32| -> u64 {
        if v == 0 {
            0
        } else {
            ((v as f64 * f as f64).round() as u64).clamp(1, v)
        }
    };
    Resources {
        cpu_milli: scale(demand.cpu_milli, frac[0]),
        memory_mib: scale(demand.memory_mib, frac[1]),
        ..*demand
    }
}

impl BeScheduler for Td3Be {
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        self.schedule_sized(demand, nodes).map(|(n, _)| n)
    }

    fn schedule_sized(
        &mut self,
        demand: &Resources,
        nodes: &[CandidateNode],
    ) -> Option<(NodeId, Resources)> {
        let graph = build_graph(demand, nodes);
        let mask = context_mask(&self.floor_demand(demand), nodes);
        let (idx, frac) = self.agent.act(&graph, &mask)?;
        let granted = scale_demand(demand, &frac);
        // the action floor guarantees fit against the floor grant, but the
        // noised fraction may exceed what the node has free — cap there
        let cap = &nodes[idx].available_be;
        let granted = Resources {
            cpu_milli: granted.cpu_milli.min(cap.cpu_milli),
            memory_mib: granted.memory_mib.min(cap.memory_mib),
            ..granted
        };
        Some((nodes[idx].node, granted))
    }

    fn feedback(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]) {
        let graph = build_graph(next_demand, next_nodes);
        let mask = context_mask(&self.floor_demand(next_demand), next_nodes);
        self.agent.observe(reward, &graph, &mask, false);
    }

    fn name(&self) -> &'static str {
        "td3-be"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(self.agent.snapshot_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.agent
            .restore_bytes(bytes)
            .map_err(|_| "td3-be agent blob rejected")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::cand;

    fn demand() -> Resources {
        Resources::cpu_mem(500, 256)
    }

    #[test]
    fn grants_are_scaled_and_within_demand() {
        let mut s = Td3Be::new(Td3BeConfig::default());
        let nodes = vec![cand(1, 8, 1), cand(2, 8, 5)];
        for _ in 0..10 {
            let (node, granted) = s.schedule_sized(&demand(), &nodes).unwrap();
            assert!(node == NodeId(1) || node == NodeId(2));
            assert!(granted.fits_within(&demand()));
            assert!(granted.cpu_milli >= (demand().cpu_milli as f32 * 0.25) as u64);
            assert!(granted.memory_mib >= (demand().memory_mib as f32 * 0.25) as u64);
            s.feedback(0.4, &demand(), &nodes);
        }
    }

    #[test]
    fn floor_feasibility_admits_tight_nodes() {
        // a node that fits only the floor grant is still a valid action
        let mut tight = cand(1, 0, 1);
        tight.available_be = Resources::cpu_mem(200, 100);
        let mut s = Td3Be::new(Td3BeConfig::default());
        let (node, granted) = s.schedule_sized(&demand(), &[tight.clone()]).unwrap();
        assert_eq!(node, NodeId(1));
        // grant is capped at what the node has free
        assert!(granted.fits_within(&tight.available_be));
    }

    #[test]
    fn nothing_feasible_returns_none() {
        let mut empty = cand(1, 0, 1);
        empty.available_be = Resources::ZERO;
        let mut s = Td3Be::new(Td3BeConfig::default());
        assert_eq!(s.schedule_sized(&demand(), &[empty]), None);
    }

    #[test]
    fn snapshot_round_trips_through_scheduler_surface() {
        let mut a = Td3Be::new(Td3BeConfig::default());
        let nodes = vec![cand(1, 8, 1), cand(2, 8, 5)];
        for _ in 0..12 {
            a.schedule_sized(&demand(), &nodes).unwrap();
            a.feedback(0.2, &demand(), &nodes);
        }
        let blob = a.snapshot_state().unwrap();
        let mut b = Td3Be::new(Td3BeConfig::default());
        b.restore_state(&blob).unwrap();
        for _ in 0..8 {
            let pa = a.schedule_sized(&demand(), &nodes).unwrap();
            let pb = b.schedule_sized(&demand(), &nodes).unwrap();
            assert_eq!(pa, pb);
            a.feedback(0.1, &demand(), &nodes);
            b.feedback(0.1, &demand(), &nodes);
        }
        assert!(b.restore_state(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn scale_demand_keeps_nonzero_dimensions_alive() {
        let d = Resources::cpu_mem(3, 0);
        let g = scale_demand(&d, &[0.25, 0.25]);
        assert_eq!(g.cpu_milli, 1);
        assert_eq!(g.memory_mib, 0);
        let full = scale_demand(&demand(), &[1.0, 1.0]);
        assert_eq!(full, demand());
    }
}

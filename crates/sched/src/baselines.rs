//! Baseline LC schedulers from §7.2.
//!
//! * **load-greedy** — always the least-loaded feasible node;
//! * **K8s-native** — the default K8s round-robin dispatch;
//! * **scoring** — a weighted-score policy in the spirit of
//!   history-based harvesting \[42\]: balances free capacity against
//!   dispatch delay.

use crate::view::{CandidateNode, LcScheduler, TypeBatch};
use tango_types::{NodeId, RequestId};

/// Greedy: requests go one at a time to the node with the most remaining
/// per-type capacity.
#[derive(Debug, Default)]
pub struct LoadGreedy;

impl LcScheduler for LoadGreedy {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            // lowest load == largest remaining capacity fraction
            let best = (0..batch.nodes.len())
                .filter(|&i| remaining[i] > 0)
                .max_by(|&a, &b| {
                    let fa = remaining[a] as f64 / batch.nodes[a].capacity_total().max(1) as f64;
                    let fb = remaining[b] as f64 / batch.nodes[b].capacity_total().max(1) as f64;
                    fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
                });
            match best {
                Some(i) => {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                }
                None => break, // nothing feasible; rest stay queued
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "load-greedy"
    }
}

/// The K8s-native baseline: round-robin over feasible candidates.
#[derive(Debug, Default)]
pub struct KsNative {
    cursor: usize,
}

impl LcScheduler for KsNative {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let n = batch.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|c| c.capacity_now(true)).collect();
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            let mut placed = false;
            for off in 0..n {
                let i = (self.cursor + off) % n;
                if remaining[i] > 0 {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                    self.cursor = (i + 1) % n;
                    placed = true;
                    break;
                }
            }
            if !placed {
                break;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "k8s-native"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok((self.cursor as u64).to_le_bytes().to_vec())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "round-robin cursor blob")?;
        self.cursor = u64::from_le_bytes(arr) as usize;
        Ok(())
    }
}

/// Weighted-score policy: score = w_cap · free-fraction − w_delay ·
/// normalized-delay − w_slack · QoS pressure; highest score wins.
#[derive(Debug)]
pub struct Scoring {
    /// Weight on free capacity fraction.
    pub w_capacity: f64,
    /// Weight on normalized dispatch delay.
    pub w_delay: f64,
    /// Weight on (1 − slack): prefer nodes currently meeting QoS.
    pub w_slack: f64,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            w_capacity: 0.5,
            w_delay: 0.35,
            w_slack: 0.15,
        }
    }
}

impl Scoring {
    fn score(&self, c: &CandidateNode, remaining: u64, max_delay_us: f64) -> f64 {
        let cap_frac = remaining as f64 / c.capacity_total().max(1) as f64;
        let delay_frac = if max_delay_us > 0.0 {
            c.delay.as_micros() as f64 / max_delay_us
        } else {
            0.0
        };
        let qos_pressure = (1.0 - c.slack).clamp(0.0, 2.0);
        self.w_capacity * cap_frac - self.w_delay * delay_frac - self.w_slack * qos_pressure
    }
}

impl LcScheduler for Scoring {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();
        let max_delay = batch
            .nodes
            .iter()
            .map(|n| n.delay.as_micros() as f64)
            .fold(0.0, f64::max);
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            let best = (0..batch.nodes.len())
                .filter(|&i| remaining[i] > 0)
                .max_by(|&a, &b| {
                    let sa = self.score(&batch.nodes[a], remaining[a], max_delay);
                    let sb = self.score(&batch.nodes[b], remaining[b], max_delay);
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                });
            match best {
                Some(i) => {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                }
                None => break,
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "scoring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{batch, cand};

    #[test]
    fn load_greedy_picks_emptiest() {
        let mut s = LoadGreedy;
        let b = batch(1, vec![cand(1, 1, 5), cand(2, 8, 5)]);
        let out = s.assign(&b);
        assert_eq!(out, vec![(tango_types::RequestId(0), NodeId(2))]);
    }

    #[test]
    fn load_greedy_stops_when_everything_full() {
        let mut s = LoadGreedy;
        let b = batch(5, vec![cand(1, 2, 5)]);
        let out = s.assign(&b);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn k8s_native_round_robins() {
        let mut s = KsNative::default();
        let b = batch(4, vec![cand(1, 10, 5), cand(2, 10, 5)]);
        let out = s.assign(&b);
        let targets: Vec<u32> = out.iter().map(|&(_, n)| n.raw()).collect();
        assert_eq!(targets, vec![1, 2, 1, 2]);
    }

    #[test]
    fn k8s_native_skips_full_nodes() {
        let mut s = KsNative::default();
        let b = batch(3, vec![cand(1, 0, 5), cand(2, 10, 5)]);
        let out = s.assign(&b);
        assert!(out.iter().all(|&(_, n)| n == NodeId(2)));
    }

    #[test]
    fn scoring_trades_capacity_against_delay() {
        let mut s = Scoring::default();
        // huge capacity but very far vs modest capacity nearby
        let near = cand(1, 6, 1);
        let far = cand(2, 8, 100);
        let b = batch(1, vec![near, far]);
        let out = s.assign(&b);
        assert_eq!(out[0].1, NodeId(1), "nearby node should win");
    }

    #[test]
    fn scoring_penalizes_qos_pressure() {
        let mut s = Scoring::default();
        let mut strained = cand(1, 5, 10);
        strained.slack = -0.5; // violating QoS
        let healthy = cand(2, 5, 10);
        let b = batch(1, vec![strained, healthy]);
        let out = s.assign(&b);
        assert_eq!(out[0].1, NodeId(2));
    }

    #[test]
    fn all_policies_handle_empty_inputs() {
        let b0 = batch(0, vec![cand(1, 5, 5)]);
        let bn = batch(3, vec![]);
        assert!(LoadGreedy.assign(&b0).is_empty());
        assert!(LoadGreedy.assign(&bn).is_empty());
        assert!(KsNative::default().assign(&bn).is_empty());
        assert!(Scoring::default().assign(&bn).is_empty());
    }
}

//! Baseline LC schedulers from §7.2, plus the KubeDSM-style
//! batch-migration baseline for the defragmentation pass.
//!
//! * **load-greedy** — always the least-loaded feasible node;
//! * **K8s-native** — the default K8s round-robin dispatch;
//! * **scoring** — a weighted-score policy in the spirit of
//!   history-based harvesting \[42\]: balances free capacity against
//!   dispatch delay;
//! * **KubeDSM** — a batch migration planner in the spirit of KubeDSM's
//!   cloud-assisted edge scheduler: evacuate hot edge nodes by moving
//!   their BE pods to cold edge peers first and spilling the overflow
//!   to the cloud tier.

use crate::migrate::{MigrationCandidate, MigrationDecision, MigrationPlanner};
use crate::view::{CandidateNode, LcScheduler, TypeBatch};
use tango_types::{NodeId, RequestId, Resources};

/// Greedy: requests go one at a time to the node with the most remaining
/// per-type capacity.
#[derive(Debug, Default)]
pub struct LoadGreedy;

impl LcScheduler for LoadGreedy {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            // lowest load == largest remaining capacity fraction
            let best = (0..batch.nodes.len())
                .filter(|&i| remaining[i] > 0)
                .max_by(|&a, &b| {
                    let fa = remaining[a] as f64 / batch.nodes[a].capacity_total().max(1) as f64;
                    let fb = remaining[b] as f64 / batch.nodes[b].capacity_total().max(1) as f64;
                    fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
                });
            match best {
                Some(i) => {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                }
                None => break, // nothing feasible; rest stay queued
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "load-greedy"
    }
}

/// The K8s-native baseline: round-robin over feasible candidates.
#[derive(Debug, Default)]
pub struct KsNative {
    cursor: usize,
}

impl LcScheduler for KsNative {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let n = batch.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|c| c.capacity_now(true)).collect();
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            let mut placed = false;
            for off in 0..n {
                let i = (self.cursor + off) % n;
                if remaining[i] > 0 {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                    self.cursor = (i + 1) % n;
                    placed = true;
                    break;
                }
            }
            if !placed {
                break;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "k8s-native"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok((self.cursor as u64).to_le_bytes().to_vec())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "round-robin cursor blob")?;
        self.cursor = u64::from_le_bytes(arr) as usize;
        Ok(())
    }
}

/// Weighted-score policy: score = w_cap · free-fraction − w_delay ·
/// normalized-delay − w_slack · QoS pressure; highest score wins.
#[derive(Debug)]
pub struct Scoring {
    /// Weight on free capacity fraction.
    pub w_capacity: f64,
    /// Weight on normalized dispatch delay.
    pub w_delay: f64,
    /// Weight on (1 − slack): prefer nodes currently meeting QoS.
    pub w_slack: f64,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            w_capacity: 0.5,
            w_delay: 0.35,
            w_slack: 0.15,
        }
    }
}

impl Scoring {
    fn score(&self, c: &CandidateNode, remaining: u64, max_delay_us: f64) -> f64 {
        let cap_frac = remaining as f64 / c.capacity_total().max(1) as f64;
        let delay_frac = if max_delay_us > 0.0 {
            c.delay.as_micros() as f64 / max_delay_us
        } else {
            0.0
        };
        let qos_pressure = (1.0 - c.slack).clamp(0.0, 2.0);
        self.w_capacity * cap_frac - self.w_delay * delay_frac - self.w_slack * qos_pressure
    }
}

impl LcScheduler for Scoring {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        let mut remaining: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();
        let max_delay = batch
            .nodes
            .iter()
            .map(|n| n.delay.as_micros() as f64)
            .fold(0.0, f64::max);
        let mut out = Vec::with_capacity(batch.requests.len());
        for &req in &batch.requests {
            let best = (0..batch.nodes.len())
                .filter(|&i| remaining[i] > 0)
                .max_by(|&a, &b| {
                    let sa = self.score(&batch.nodes[a], remaining[a], max_delay);
                    let sb = self.score(&batch.nodes[b], remaining[b], max_delay);
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                });
            match best {
                Some(i) => {
                    remaining[i] -= 1;
                    out.push((req, batch.nodes[i].node));
                }
                None => break,
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "scoring"
    }
}

/// KubeDSM-style batch migration: hot edge nodes shed BE pods, smallest
/// first, onto the coldest feasible edge peer; what no edge peer can
/// take spills to the cloud tier. Repacking smallest-first maximizes
/// the number of pods that fit into edge holes before the (egress-
/// charged) cloud is touched.
#[derive(Debug, Clone)]
pub struct KubeDsm {
    /// Utilization at or above which an edge node counts as hot.
    pub hot_threshold: f64,
    /// Utilization below which a node may receive migrated pods —
    /// keeps the pass from ping-ponging pods between two warm nodes.
    pub cold_threshold: f64,
}

impl Default for KubeDsm {
    fn default() -> Self {
        KubeDsm {
            hot_threshold: 0.85,
            cold_threshold: 0.6,
        }
    }
}

impl MigrationPlanner for KubeDsm {
    fn plan(&mut self, view: &[MigrationCandidate], max_moves: usize) -> Vec<MigrationDecision> {
        // Hot edge sources, hottest first (ties: node id — view order).
        let mut hot: Vec<usize> = (0..view.len())
            .filter(|&i| {
                let c = &view[i];
                c.alive && !c.is_cloud && c.utilization >= self.hot_threshold
            })
            .collect();
        hot.sort_by(|&a, &b| {
            view[b]
                .utilization
                .partial_cmp(&view[a].utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(view[a].node.cmp(&view[b].node))
        });
        // Receivers: cold edge nodes (coldest first), then cloud nodes
        // in id order. Headroom is tracked across the whole batch so two
        // sources cannot both fill the same hole.
        let mut edge_rx: Vec<usize> = (0..view.len())
            .filter(|&i| {
                let c = &view[i];
                c.alive && !c.is_cloud && c.utilization < self.cold_threshold
            })
            .collect();
        edge_rx.sort_by(|&a, &b| {
            view[a]
                .utilization
                .partial_cmp(&view[b].utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(view[a].node.cmp(&view[b].node))
        });
        let cloud_rx: Vec<usize> = (0..view.len())
            .filter(|&i| view[i].alive && view[i].is_cloud)
            .collect();
        let mut headroom: Vec<Resources> = view.iter().map(|c| c.available_be).collect();

        let mut out = Vec::new();
        'sources: for &s in &hot {
            // Smallest pods first: most moves per freed hole.
            let mut pods: Vec<&crate::migrate::MigratablePod> = view[s].be_pods.iter().collect();
            pods.sort_by_key(|p| (p.demand.cpu_milli, p.request));
            for pod in pods {
                if out.len() >= max_moves {
                    break 'sources;
                }
                let fits =
                    |i: usize, headroom: &[Resources]| headroom[i].capacity_for(&pod.demand) >= 1;
                let dst = edge_rx
                    .iter()
                    .copied()
                    .find(|&i| fits(i, &headroom))
                    .or_else(|| cloud_rx.iter().copied().find(|&i| fits(i, &headroom)));
                let Some(d) = dst else { continue };
                headroom[d] = headroom[d].saturating_sub(&pod.demand);
                out.push(MigrationDecision {
                    request: pod.request,
                    src: view[s].node,
                    dst: view[d].node,
                });
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "kubedsm-batch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate::test_support::worker;
    use crate::view::test_support::{batch, cand};

    #[test]
    fn load_greedy_picks_emptiest() {
        let mut s = LoadGreedy;
        let b = batch(1, vec![cand(1, 1, 5), cand(2, 8, 5)]);
        let out = s.assign(&b);
        assert_eq!(out, vec![(tango_types::RequestId(0), NodeId(2))]);
    }

    #[test]
    fn load_greedy_stops_when_everything_full() {
        let mut s = LoadGreedy;
        let b = batch(5, vec![cand(1, 2, 5)]);
        let out = s.assign(&b);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn k8s_native_round_robins() {
        let mut s = KsNative::default();
        let b = batch(4, vec![cand(1, 10, 5), cand(2, 10, 5)]);
        let out = s.assign(&b);
        let targets: Vec<u32> = out.iter().map(|&(_, n)| n.raw()).collect();
        assert_eq!(targets, vec![1, 2, 1, 2]);
    }

    #[test]
    fn k8s_native_skips_full_nodes() {
        let mut s = KsNative::default();
        let b = batch(3, vec![cand(1, 0, 5), cand(2, 10, 5)]);
        let out = s.assign(&b);
        assert!(out.iter().all(|&(_, n)| n == NodeId(2)));
    }

    #[test]
    fn scoring_trades_capacity_against_delay() {
        let mut s = Scoring::default();
        // huge capacity but very far vs modest capacity nearby
        let near = cand(1, 6, 1);
        let far = cand(2, 8, 100);
        let b = batch(1, vec![near, far]);
        let out = s.assign(&b);
        assert_eq!(out[0].1, NodeId(1), "nearby node should win");
    }

    #[test]
    fn scoring_penalizes_qos_pressure() {
        let mut s = Scoring::default();
        let mut strained = cand(1, 5, 10);
        strained.slack = -0.5; // violating QoS
        let healthy = cand(2, 5, 10);
        let b = batch(1, vec![strained, healthy]);
        let out = s.assign(&b);
        assert_eq!(out[0].1, NodeId(2));
    }

    #[test]
    fn all_policies_handle_empty_inputs() {
        let b0 = batch(0, vec![cand(1, 5, 5)]);
        let bn = batch(3, vec![]);
        assert!(LoadGreedy.assign(&b0).is_empty());
        assert!(LoadGreedy.assign(&bn).is_empty());
        assert!(KsNative::default().assign(&bn).is_empty());
        assert!(Scoring::default().assign(&bn).is_empty());
        assert!(KubeDsm::default().plan(&[], 8).is_empty());
    }

    #[test]
    fn kubedsm_prefers_cold_edge_over_cloud() {
        let view = vec![
            worker(1, 0, 100, 0.95, false, &[(10, 400), (11, 600)]),
            worker(2, 1, 4_000, 0.2, false, &[]),
            worker(3, 2, 8_000, 0.0, true, &[]),
        ];
        let plan = KubeDsm::default().plan(&view, 8);
        // smallest pod moves first; both fit on the cold edge node
        assert_eq!(
            plan,
            vec![
                MigrationDecision {
                    request: RequestId(10),
                    src: NodeId(1),
                    dst: NodeId(2),
                },
                MigrationDecision {
                    request: RequestId(11),
                    src: NodeId(1),
                    dst: NodeId(2),
                },
            ]
        );
    }

    #[test]
    fn kubedsm_spills_to_cloud_when_edge_is_full() {
        let view = vec![
            worker(1, 0, 100, 0.95, false, &[(10, 500), (11, 700)]),
            worker(2, 1, 600, 0.5, false, &[]), // room for the small pod only
            worker(3, 2, 8_000, 0.0, true, &[]),
        ];
        let plan = KubeDsm::default().plan(&view, 8);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].dst, NodeId(2), "small pod repacks onto the edge");
        assert_eq!(plan[1].dst, NodeId(3), "large pod spills to cloud");
    }

    #[test]
    fn kubedsm_respects_batch_limit_and_skips_warm_receivers() {
        let view = vec![
            worker(1, 0, 0, 0.9, false, &[(1, 100), (2, 100), (3, 100)]),
            worker(2, 1, 4_000, 0.7, false, &[]), // warm: not a receiver
            worker(3, 2, 8_000, 0.0, true, &[]),
        ];
        let plan = KubeDsm::default().plan(&view, 2);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|d| d.dst == NodeId(3)));
    }

    #[test]
    fn kubedsm_without_cloud_or_cold_peers_plans_nothing() {
        let view = vec![
            worker(1, 0, 0, 0.95, false, &[(1, 500)]),
            worker(2, 1, 4_000, 0.75, false, &[]),
        ];
        assert!(KubeDsm::default().plan(&view, 8).is_empty());
    }
}

//! Scheduler-facing views of system state.
//!
//! The LC dispatcher reads the state storage and builds, per request type
//! k, a batch of pending requests plus the candidate nodes of the local
//! and geo-nearby clusters, each annotated with the attributes of §5.2.1
//! (X_i^k node attributes, Y_{i,j} edge attributes). The schedulers only
//! ever see these views.

use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// One candidate worker node as the dispatcher sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateNode {
    /// Node id.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Total resources r_total (CPU/memory are what Eq. 2/7 read).
    pub total: Resources,
    /// Resources available to an LC request (idle + preemptible BE,
    /// per the §4.1 regulations).
    pub available_lc: Resources,
    /// Resources available to a BE request (idle only).
    pub available_be: Resources,
    /// The per-type minimum request (r^{c,k}, r^{m,k}) — already adjusted
    /// by the QoS re-assurance factor for this node.
    pub min_request: Resources,
    /// One-way dispatch delay from the deciding master to this node
    /// (t^delay of Y_{i,j}).
    pub delay: SimTime,
    /// Link transmission capacity from the master toward this node, in
    /// requests per dispatch round (c_{i,j} of Eq. 4).
    pub link_capacity: u32,
    /// Current QoS slack δ on this node for the type (1.0 when unknown).
    pub slack: f64,
    /// Whether the node is up. The dispatcher already filters crashed
    /// nodes out of candidate sets; schedulers additionally mask dead
    /// nodes (zero capacity, excluded from action spaces) so a stale view
    /// can never route work onto a down node.
    pub alive: bool,
}

/// What the state storage knows about one worker, as extracted by the
/// system layer: the per-node half of a candidate view, before the
/// vantage-specific annotations (delay, link capacity, min-request) are
/// attached.
#[derive(Debug, Clone)]
pub struct NodeObservation {
    /// Node id.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Total resources.
    pub total: Resources,
    /// Resources available to an LC request (idle + preemptible BE).
    pub available_lc: Resources,
    /// Resources available to a BE request (idle only).
    pub available_be: Resources,
    /// QoS slack δ for the request type (1.0 when unknown).
    pub slack: f64,
}

/// The vantage-specific half of a candidate view: what the link between
/// the deciding master and the node looks like.
#[derive(Debug, Clone, Copy)]
pub struct LinkObservation {
    /// One-way dispatch delay (t^delay of Y_{i,j}).
    pub delay: SimTime,
    /// Transmission capacity in requests per dispatch round (c_{i,j}).
    pub capacity: u32,
}

impl CandidateNode {
    /// The one candidate-view builder: assemble a candidate from a node
    /// observation, the link toward it, the (re-assurance-adjusted)
    /// minimum request, and the dispatcher's in-flight reservation
    /// against the node. Both the LC and the BE dispatch paths go through
    /// here, so reservation subtraction and liveness annotation cannot
    /// drift between them — dead nodes must be filtered (or passed with
    /// `alive = false`) by the caller, which owns the fault view.
    pub fn from_observation(
        obs: NodeObservation,
        link: LinkObservation,
        min_request: Resources,
        reserved: Resources,
        alive: bool,
    ) -> CandidateNode {
        CandidateNode {
            node: obs.node,
            cluster: obs.cluster,
            total: obs.total,
            available_lc: obs.available_lc.saturating_sub(&reserved),
            available_be: obs.available_be.saturating_sub(&reserved),
            min_request,
            delay: link.delay,
            link_capacity: link.capacity,
            slack: obs.slack,
            alive,
        }
    }

    /// Eq. 2 capacity: how many requests of this type the node can host
    /// right now, `min(r_ava^c / r^c, r_ava^m / r^m)`, using the LC or BE
    /// availability view. Dead nodes have no capacity.
    pub fn capacity_now(&self, lc_view: bool) -> u64 {
        if !self.alive {
            return 0;
        }
        let avail = if lc_view {
            self.available_lc
        } else {
            self.available_be
        };
        avail.capacity_for(&self.min_request)
    }

    /// Eq. 7 capacity basis: the same ratio against *total* resources.
    /// Dead nodes contribute nothing to the λ-augmented basis either —
    /// §5.2.2 overflow must route around lost capacity, not into it.
    pub fn capacity_total(&self) -> u64 {
        if !self.alive {
            return 0;
        }
        self.total.capacity_for(&self.min_request)
    }
}

/// The pending requests of one type at one master, with their candidates.
///
/// `nodes` is an `Arc`: the system's candidate-view cache hands every
/// batch of a round the *same* frozen start-of-round snapshot for its
/// type (a refcount bump, not a clone), and schedulers only ever read it.
#[derive(Debug, Clone)]
pub struct TypeBatch {
    /// The request type k.
    pub service: ServiceId,
    /// Pending request ids (t_i^k at this master).
    pub requests: Vec<RequestId>,
    /// Candidate nodes (local + geo-nearby clusters' workers).
    pub nodes: std::sync::Arc<Vec<CandidateNode>>,
}

/// An LC scheduling policy: map a type batch to (request → node)
/// placements. Requests left unplaced stay in the master's queue.
pub trait LcScheduler {
    /// Decide placements for one batch.
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)>;

    /// Decide placements for all of one dispatch round's per-type
    /// batches, one result per batch in batch order. Per-commodity
    /// graphs are independent (§5.2), so policies may fan out over
    /// `pool`; the default runs [`LcScheduler::assign`] sequentially and
    /// ignores it. Implementations must return identical results at any
    /// thread count.
    fn assign_many(
        &mut self,
        batches: &[TypeBatch],
        pool: &tango_par::Pool,
    ) -> Vec<Vec<(RequestId, NodeId)>> {
        let _ = pool;
        batches.iter().map(|b| self.assign(b)).collect()
    }

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the policy's mutable state for a checkpoint. Stateless
    /// policies return an empty blob (the default). Policies whose state
    /// cannot be captured (e.g. learned network weights mid-training)
    /// return `Err` with a reason; checkpointing then fails loudly
    /// instead of resuming with silently-reset state.
    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(Vec::new())
    }

    /// Restore state captured by [`LcScheduler::snapshot_state`].
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("policy holds no state but blob is non-empty")
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A candidate with `cap` request-slots of capacity and given delay.
    pub fn cand(id: u32, cap: u64, delay_ms: u64) -> CandidateNode {
        CandidateNode {
            node: NodeId(id),
            cluster: ClusterId(id / 8),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(cap * 500, cap * 256),
            available_be: Resources::cpu_mem(cap * 500, cap * 256),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_millis(delay_ms),
            link_capacity: 1_000,
            slack: 1.0,
            alive: true,
        }
    }

    pub fn batch(n_requests: u64, nodes: Vec<CandidateNode>) -> TypeBatch {
        TypeBatch {
            service: ServiceId(0),
            requests: (0..n_requests).map(RequestId).collect(),
            nodes: nodes.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::cand;

    #[test]
    fn capacity_now_follows_eq2() {
        let c = cand(1, 4, 10);
        assert_eq!(c.capacity_now(true), 4);
        assert_eq!(c.capacity_now(false), 4);
    }

    #[test]
    fn capacity_total_uses_total_resources() {
        let c = cand(1, 2, 10);
        // total 8000m/16384Mi over 500m/256Mi -> min(16, 64) = 16
        assert_eq!(c.capacity_total(), 16);
    }

    #[test]
    fn dead_nodes_have_zero_capacity() {
        let mut c = cand(1, 4, 10);
        c.alive = false;
        assert_eq!(c.capacity_now(true), 0);
        assert_eq!(c.capacity_now(false), 0);
        assert_eq!(c.capacity_total(), 0);
    }
}

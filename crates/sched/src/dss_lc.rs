//! DSS-LC: distributed LC request scheduling as min-cost flow (Alg. 2).
//!
//! Per type k the dispatcher builds the graph G_k of §5.2.1: a source
//! (this master's pending queue), one split node per candidate worker
//! (the internal edge carries the Eq. 2 capacity |t_i^k|), link edges
//! carrying the Eq. 4 transmission capacity c_{i,j} with cost t^delay,
//! and a sink. The min-cost max-flow optimum of Eq. 3 yields the routing
//! paths; flow decomposition turns them back into per-request targets.
//!
//! Overload (Σ pending > Σ capacity) follows the paper exactly: ρ(·)
//! shuffles the requests, the first Σcap go through G_k, and the rest —
//! R′_k — are routed over Ĝ′_k whose node capacities are the *total*-
//! resource ratios scaled by the augmentation factor λ (Eq. 7–8), so the
//! backlog spreads across heterogeneous nodes proportionally to their
//! size. Queued-set requests still get dispatched; they simply wait at
//! their target node.

use crate::view::{LcScheduler, TypeBatch};
use tango_flow::{EdgeRef, FlowGraph, McmfWorkspace};
use tango_par::Pool;
use tango_simcore::SimRng;
use tango_types::{NodeId, RequestId};

/// Pooled buffers reused across `plan()` calls and across the G_k /
/// λ-augmented Ĝ′_k phases within one call. A master dispatches every
/// request type every tick, so in steady state planning performs no heap
/// allocation beyond the placements handed back to the caller.
#[derive(Debug, Default)]
struct DispatchScratch {
    /// Retained dispatch graph for the pooled MCMF route (rebuilt in
    /// place with [`FlowGraph::reset`]).
    graph: FlowGraph,
    /// Retained MCMF solver scratch.
    ws: McmfWorkspace,
    /// Per-candidate sink-side edges of the pooled graph.
    node_edges: Vec<EdgeRef>,
    /// Eq. 2 instantaneous capacities (G_k phase).
    caps: Vec<u64>,
    /// Eq. 7 λ-augmented capacities (Ĝ′_k phase).
    caps_aug: Vec<u64>,
    /// Candidate order for the greedy closed form.
    order_idx: Vec<usize>,
    /// Per-node assignment counts from the last route.
    counts: Vec<(usize, u64)>,
    /// ρ-shuffled request queue being consumed this call.
    order: Vec<RequestId>,
}

/// The DSS-LC scheduler.
#[derive(Debug)]
pub struct DssLc {
    rng: SimRng,
    /// Route the overload set R′_k over the λ-augmented total-resource
    /// graph Ĝ′_k (Eq. 7–8). Disabling this leaves overflow requests
    /// queued at the master — the ablation that shows why the paper
    /// dispatches them proactively.
    pub overflow_routing: bool,
    scratch: DispatchScratch,
}

/// A per-type plan with immediate and queued-at-target placements kept
/// distinguishable for diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LcPlan {
    /// Placements for requests the targets can execute immediately (R_k).
    pub immediate: Vec<(RequestId, NodeId)>,
    /// Placements for requests that will queue at their target (R′_k).
    pub queued: Vec<(RequestId, NodeId)>,
    /// Requests that could not be routed at all (no capacity anywhere).
    pub unrouted: Vec<RequestId>,
}

impl LcPlan {
    /// All placements, immediate first.
    pub fn all(&self) -> impl Iterator<Item = (RequestId, NodeId)> + '_ {
        self.immediate.iter().chain(self.queued.iter()).copied()
    }
}

impl DssLc {
    /// Create a DSS-LC instance; `seed` drives the ρ(·) shuffle.
    pub fn new(seed: u64) -> Self {
        DssLc {
            rng: SimRng::new(seed),
            overflow_routing: true,
            scratch: DispatchScratch::default(),
        }
    }

    /// Variant without the Eq. 7–8 overflow routing (ablation).
    pub fn without_overflow_routing(seed: u64) -> Self {
        DssLc {
            rng: SimRng::new(seed),
            overflow_routing: false,
            scratch: DispatchScratch::default(),
        }
    }

    /// Route `demand` unit requests over the candidates with the given
    /// per-node capacities; returns per-node assigned counts.
    ///
    /// The dispatch graph is bipartite (source → link edge → split node →
    /// sink) with all cost on the link edges, so the min-cost max-flow
    /// optimum has a closed form: saturate nodes in ascending delay
    /// order, each up to min(link capacity, node capacity). This is what
    /// the production solver reduces to on these instances;
    /// [`DssLc::route_mcmf`] keeps the general solver and the test suite
    /// pins their equality.
    pub fn route(batch: &TypeBatch, capacities: &[u64], demand: u64) -> Vec<(usize, u64)> {
        let mut order_idx = Vec::new();
        let mut out = Vec::new();
        Self::route_into(batch, capacities, demand, &mut order_idx, &mut out);
        out
    }

    /// [`Self::route`] writing into caller-provided buffers (cleared
    /// first), so the per-dispatch hot path can reuse its scratch.
    fn route_into(
        batch: &TypeBatch,
        capacities: &[u64],
        demand: u64,
        order_idx: &mut Vec<usize>,
        out: &mut Vec<(usize, u64)>,
    ) {
        out.clear();
        if demand == 0 || batch.nodes.is_empty() {
            return;
        }
        order_idx.clear();
        order_idx.extend(0..batch.nodes.len());
        // Unstable sort: keys are unique (one row per node), so the
        // result is identical to a stable sort and skips its per-call
        // buffer allocation.
        order_idx.sort_unstable_by_key(|&i| (batch.nodes[i].delay, batch.nodes[i].node));
        let mut remaining = demand;
        for &i in order_idx.iter() {
            if remaining == 0 {
                break;
            }
            let cap = capacities[i].min(batch.nodes[i].link_capacity as u64);
            let take = cap.min(remaining);
            if take > 0 {
                out.push((i, take));
                remaining -= take;
            }
        }
        out.sort_unstable();
    }

    /// The same routing via the general min-cost max-flow solver —
    /// retained for cross-validation and for extended formulations
    /// (inter-node relay edges, MPLS/OSPF-style constraints, §5.2.2).
    /// One-shot form; the hot path is [`Self::route_mcmf_pooled`]. Both
    /// entry points run `route_mcmf_into` on a `DispatchScratch`
    /// — the one-shot form simply pays for a cold one — so their graph
    /// setup cannot drift apart.
    pub fn route_mcmf(batch: &TypeBatch, capacities: &[u64], demand: u64) -> Vec<(usize, u64)> {
        Self::route_mcmf_into(&mut DispatchScratch::default(), batch, capacities, demand)
    }

    /// MCMF routing over this scheduler's retained dispatch graph and
    /// solver workspace: the graph is rebuilt in place (no allocation
    /// once warm) instead of constructed fresh per request type.
    pub fn route_mcmf_pooled(
        &mut self,
        batch: &TypeBatch,
        capacities: &[u64],
        demand: u64,
    ) -> Vec<(usize, u64)> {
        Self::route_mcmf_into(&mut self.scratch, batch, capacities, demand)
    }

    /// Shared MCMF routing core: reset the retained dispatch graph in
    /// `scratch`, rebuild it for this batch, solve, read off counts.
    fn route_mcmf_into(
        scratch: &mut DispatchScratch,
        batch: &TypeBatch,
        capacities: &[u64],
        demand: u64,
    ) -> Vec<(usize, u64)> {
        if demand == 0 || batch.nodes.is_empty() {
            return Vec::new();
        }
        // graph: 0 = source, 1 = sink, then split nodes per candidate
        let g = &mut scratch.graph;
        g.reset(2);
        Self::build_dispatch_graph(batch, capacities, g, &mut scratch.node_edges);
        scratch.ws.solve(g, 0, 1, demand as i64);
        Self::collect_counts(g, &scratch.node_edges)
    }

    /// Build the §5.2.1 dispatch graph into `g` (source 0 and sink 1
    /// already present): one split node per candidate carrying the Eq. 2
    /// capacity, link edges carrying Eq. 4 capacity at t^delay cost.
    fn build_dispatch_graph(
        batch: &TypeBatch,
        capacities: &[u64],
        g: &mut FlowGraph,
        node_edges: &mut Vec<EdgeRef>,
    ) {
        node_edges.clear();
        node_edges.reserve(batch.nodes.len());
        for (i, cand) in batch.nodes.iter().enumerate() {
            let (inn, out, _e) = g.add_split_node(capacities[i] as i64);
            // cost: microseconds of dispatch delay (Eq. 3 objective)
            let cost = cand.delay.as_micros() as i64;
            g.add_edge(0, inn, cand.link_capacity as i64, cost);
            let e_out = g.add_edge(out, 1, i64::MAX / 8, 0);
            node_edges.push(e_out);
        }
    }

    /// Read per-candidate assigned counts off the solved graph.
    fn collect_counts(g: &FlowGraph, node_edges: &[EdgeRef]) -> Vec<(usize, u64)> {
        node_edges
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| {
                let f = g.flow(e);
                (f > 0).then_some((i, f as u64))
            })
            .collect()
    }

    /// Expand per-node counts into per-request placements, consuming from
    /// `requests[*cursor..]` front to back — FIFO with respect to the
    /// ρ-sorted queue, so the R_k prefix (Alg. 2) really is the *first*
    /// Σcap requests of the shuffled order. (An earlier version popped
    /// from the back, silently reversing the queue.)
    fn materialize(
        batch: &TypeBatch,
        counts: &[(usize, u64)],
        requests: &[RequestId],
        cursor: &mut usize,
        out: &mut Vec<(RequestId, NodeId)>,
    ) {
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        out.reserve(total.min((requests.len() - *cursor) as u64) as usize);
        for &(node_idx, count) in counts {
            for _ in 0..count {
                let Some(&req) = requests.get(*cursor) else {
                    return;
                };
                *cursor += 1;
                out.push((req, batch.nodes[node_idx].node));
            }
        }
    }

    /// Run Alg. 2 on one type batch.
    pub fn plan(&mut self, batch: &TypeBatch) -> LcPlan {
        Self::plan_with(
            &mut self.scratch,
            &mut self.rng,
            self.overflow_routing,
            batch,
        )
    }

    /// Run Alg. 2 on each of a master's per-type batches — "for each
    /// type k do in parallel" (§5.2) — fanned out over `pool`.
    ///
    /// Every batch's ρ(·) stream is forked from this scheduler's RNG
    /// *sequentially, in batch order, before the fan-out*, and the plans
    /// are merged back in batch order, so the result is bit-identical
    /// for every thread count. Each worker carries one
    /// `DispatchScratch`, so a warm fan-out allocates only the forked
    /// RNGs and the plans themselves.
    pub fn plan_many(&mut self, batches: &[TypeBatch], pool: &Pool) -> Vec<LcPlan> {
        let rngs: Vec<SimRng> = batches.iter().map(|_| self.rng.fork()).collect();
        let overflow_routing = self.overflow_routing;
        pool.par_map_collect_with(batches, DispatchScratch::default, |scratch, i, batch| {
            let mut rng = rngs[i].clone();
            Self::plan_with(scratch, &mut rng, overflow_routing, batch)
        })
    }

    /// Alg. 2 with all state explicit, shared by the sequential
    /// [`Self::plan`] and the parallel [`Self::plan_many`] /
    /// [`plan_masters`] paths so they cannot drift.
    fn plan_with(
        scratch: &mut DispatchScratch,
        rng: &mut SimRng,
        overflow_routing: bool,
        batch: &TypeBatch,
    ) -> LcPlan {
        let mut plan = LcPlan::default();
        if batch.requests.is_empty() {
            return plan;
        }
        scratch.caps.clear();
        scratch
            .caps
            .extend(batch.nodes.iter().map(|n| n.capacity_now(true)));
        let total_cap: u64 = scratch.caps.iter().sum();
        let demand = batch.requests.len() as u64;

        // ρ(·): random sorting function; LC requests share one priority.
        scratch.order.clear();
        scratch.order.extend_from_slice(&batch.requests);
        rng.shuffle(&mut scratch.order);
        let mut cursor = 0usize;

        if demand <= total_cap {
            // Case 1: capacity suffices — single graph G_k.
            Self::route_into(
                batch,
                &scratch.caps,
                demand,
                &mut scratch.order_idx,
                &mut scratch.counts,
            );
            Self::materialize(
                batch,
                &scratch.counts,
                &scratch.order,
                &mut cursor,
                &mut plan.immediate,
            );
        } else {
            // Case 2: overload — split into R_k (first total_cap after ρ)
            // and R'_k.
            Self::route_into(
                batch,
                &scratch.caps,
                total_cap,
                &mut scratch.order_idx,
                &mut scratch.counts,
            );
            Self::materialize(
                batch,
                &scratch.counts,
                &scratch.order,
                &mut cursor,
                &mut plan.immediate,
            );

            // Ĝ'_k: capacities from *total* resources × λ (Eq. 7–8).
            let overflow = (scratch.order.len() - cursor) as u64;
            scratch.caps_aug.clear();
            scratch
                .caps_aug
                .extend(batch.nodes.iter().map(|n| n.capacity_total()));
            let basis_sum: u64 = scratch.caps_aug.iter().sum();
            if overflow_routing && basis_sum > 0 {
                let lambda = overflow as f64 / basis_sum as f64;
                for b in &mut scratch.caps_aug {
                    *b = ((*b as f64) * lambda).ceil() as u64;
                }
                Self::route_into(
                    batch,
                    &scratch.caps_aug,
                    overflow,
                    &mut scratch.order_idx,
                    &mut scratch.counts,
                );
                Self::materialize(
                    batch,
                    &scratch.counts,
                    &scratch.order,
                    &mut cursor,
                    &mut plan.queued,
                );
            }
        }
        plan.unrouted = scratch.order[cursor..].to_vec();
        plan
    }
}

/// The paper's full DSS-LC fan-out — "for each master node do in
/// parallel / for each type k do in parallel" (§5.2) — over every
/// (master, commodity) pair at once: `batches[m]` holds master `m`'s
/// per-type batches, solved by `scheds[m]`.
///
/// Per-batch ρ(·) streams are forked sequentially in (master, type)
/// order before the fan-out and plans are merged back in the same
/// order, so the result is bit-identical for every thread count. Each
/// worker reuses one `DispatchScratch` across its chunk.
pub fn plan_masters(
    scheds: &mut [DssLc],
    batches: &[Vec<TypeBatch>],
    pool: &Pool,
) -> Vec<Vec<LcPlan>> {
    assert_eq!(scheds.len(), batches.len(), "one scheduler per master");
    let work: Vec<(SimRng, bool, &TypeBatch)> = scheds
        .iter_mut()
        .zip(batches)
        .flat_map(|(s, bs)| {
            bs.iter()
                .map(|b| (s.rng.fork(), s.overflow_routing, b))
                .collect::<Vec<_>>()
        })
        .collect();
    let flat = pool.par_map_collect_with(
        &work,
        DispatchScratch::default,
        |scratch, _, (rng, overflow_routing, batch)| {
            let mut rng = rng.clone();
            DssLc::plan_with(scratch, &mut rng, *overflow_routing, batch)
        },
    );
    let mut flat = flat.into_iter();
    batches
        .iter()
        .map(|bs| (&mut flat).take(bs.len()).collect())
        .collect()
}

impl LcScheduler for DssLc {
    fn assign(&mut self, batch: &TypeBatch) -> Vec<(RequestId, NodeId)> {
        self.plan(batch).all().collect()
    }

    fn assign_many(&mut self, batches: &[TypeBatch], pool: &Pool) -> Vec<Vec<(RequestId, NodeId)>> {
        self.plan_many(batches, pool)
            .iter()
            .map(|p| p.all().collect())
            .collect()
    }

    fn name(&self) -> &'static str {
        "dss-lc"
    }

    /// The ρ-shuffle RNG is the only mutable state; the scratch buffers
    /// are rebuilt per call and never affect results.
    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        let mut out = Vec::with_capacity(32);
        for word in self.rng.state() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        Ok(out)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.len() != 32 {
            return Err("dss-lc rng blob");
        }
        let mut s = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        self.rng = SimRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{batch, cand};

    #[test]
    fn empty_batch_is_noop() {
        let mut s = DssLc::new(1);
        let b = batch(0, vec![cand(1, 5, 10)]);
        let p = s.plan(&b);
        assert!(p.immediate.is_empty() && p.queued.is_empty() && p.unrouted.is_empty());
    }

    #[test]
    fn under_capacity_all_requests_place_immediately() {
        let mut s = DssLc::new(1);
        let b = batch(6, vec![cand(1, 4, 5), cand(2, 4, 15)]);
        let p = s.plan(&b);
        assert_eq!(p.immediate.len(), 6);
        assert!(p.queued.is_empty());
        assert!(p.unrouted.is_empty());
    }

    #[test]
    fn dead_nodes_are_masked_out_of_the_dispatch_graph() {
        let mut s = DssLc::new(11);
        // the near node is down: everything must route to the far one,
        // and the λ-augmented overflow must not lean on dead capacity
        let mut near = cand(1, 10, 1);
        near.alive = false;
        let b = batch(6, vec![near, cand(2, 4, 50)]);
        let p = s.plan(&b);
        assert!(
            p.immediate
                .iter()
                .chain(p.queued.iter())
                .all(|&(_, n)| n == NodeId(2)),
            "placed on a dead node: {:?} / {:?}",
            p.immediate,
            p.queued
        );
        assert_eq!(p.immediate.len() + p.queued.len() + p.unrouted.len(), 6);
    }

    #[test]
    fn min_cost_prefers_low_delay_nodes() {
        let mut s = DssLc::new(2);
        // node 1: near (1ms), cap 3; node 2: far (50ms), cap 10
        let b = batch(3, vec![cand(1, 3, 1), cand(2, 10, 50)]);
        let p = s.plan(&b);
        assert_eq!(p.immediate.len(), 3);
        assert!(
            p.immediate.iter().all(|&(_, n)| n == NodeId(1)),
            "all should go near: {:?}",
            p.immediate
        );
    }

    #[test]
    fn spills_to_far_node_when_near_is_full() {
        let mut s = DssLc::new(3);
        let b = batch(5, vec![cand(1, 3, 1), cand(2, 10, 50)]);
        let p = s.plan(&b);
        assert_eq!(p.immediate.len(), 5);
        let near = p.immediate.iter().filter(|&&(_, n)| n == NodeId(1)).count();
        let far = p.immediate.iter().filter(|&&(_, n)| n == NodeId(2)).count();
        assert_eq!(near, 3);
        assert_eq!(far, 2);
    }

    #[test]
    fn overload_splits_into_immediate_and_queued() {
        let mut s = DssLc::new(4);
        // capacity 4 total, 10 requests -> 4 immediate, 6 queued
        let b = batch(10, vec![cand(1, 2, 5), cand(2, 2, 10)]);
        let p = s.plan(&b);
        assert_eq!(p.immediate.len(), 4);
        assert_eq!(p.queued.len(), 6);
        assert!(p.unrouted.is_empty());
    }

    #[test]
    fn lambda_spreads_overflow_by_total_resources() {
        let mut s = DssLc::new(5);
        // zero current capacity everywhere: pure overflow routing.
        let mut small = cand(1, 0, 5);
        small.total = tango_types::Resources::cpu_mem(4_000, 8_192); // basis 8
        let mut large = cand(2, 0, 5);
        large.total = tango_types::Resources::cpu_mem(16_000, 32_768); // basis 32
        let b = batch(20, vec![small, large]);
        let p = s.plan(&b);
        assert_eq!(p.queued.len(), 20);
        let to_small = p.queued.iter().filter(|&&(_, n)| n == NodeId(1)).count();
        let to_large = p.queued.iter().filter(|&&(_, n)| n == NodeId(2)).count();
        // 1:4 resource ratio -> roughly 4 and 16 (ceil rounding allows ±2)
        assert!(to_large > to_small, "large {to_large} vs small {to_small}");
        assert!((3..=6).contains(&to_small), "small got {to_small}");
    }

    #[test]
    fn link_capacity_constrains_dispatch() {
        let mut s = DssLc::new(6);
        let mut c1 = cand(1, 10, 5);
        c1.link_capacity = 2; // Eq. 4: at most 2 requests over this link
        let b = batch(5, vec![c1, cand(2, 10, 9)]);
        let p = s.plan(&b);
        let via_1 = p.all().filter(|&(_, n)| n == NodeId(1)).count();
        assert!(via_1 <= 2, "link cap violated: {via_1}");
        assert_eq!(p.all().count(), 5);
    }

    #[test]
    fn no_nodes_leaves_requests_unrouted() {
        let mut s = DssLc::new(7);
        let b = batch(3, vec![]);
        let p = s.plan(&b);
        assert_eq!(p.unrouted.len(), 3);
    }

    #[test]
    fn zero_capacity_and_zero_totals_leave_unrouted() {
        let mut s = DssLc::new(8);
        let mut c = cand(1, 0, 5);
        c.total = tango_types::Resources::ZERO;
        let b = batch(4, vec![c]);
        let p = s.plan(&b);
        assert_eq!(p.unrouted.len(), 4);
    }

    /// The greedy closed form and the general MCMF solver agree on total
    /// cost and per-node counts across assorted instances.
    #[test]
    fn greedy_route_matches_mcmf() {
        for seed in 0..20u64 {
            let mut rng = tango_simcore::SimRng::new(seed);
            let n = 1 + rng.next_below(12) as usize;
            let nodes: Vec<_> = (0..n)
                .map(|i| {
                    let mut c = cand(i as u32, rng.next_below(6), 1 + rng.next_below(40));
                    c.link_capacity = 1 + rng.next_below(8) as u32;
                    c
                })
                .collect();
            let caps: Vec<u64> = nodes.iter().map(|c| c.capacity_now(true)).collect();
            let demand = rng.next_below(30);
            let b = batch(0, nodes);
            let fast = DssLc::route(&b, &caps, demand);
            let slow = DssLc::route_mcmf(&b, &caps, demand);
            let total = |v: &[(usize, u64)]| -> u64 { v.iter().map(|&(_, k)| k).sum() };
            let cost = |v: &[(usize, u64)]| -> u64 {
                v.iter()
                    .map(|&(i, k)| k * b.nodes[i].delay.as_micros())
                    .sum()
            };
            assert_eq!(total(&fast), total(&slow), "flow mismatch seed {seed}");
            assert_eq!(cost(&fast), cost(&slow), "cost mismatch seed {seed}");
        }
    }

    /// `materialize` consumes the ρ-shuffled queue front to back: the
    /// immediate set is exactly the first Σcap requests of the shuffled
    /// order, the queued set the next slice, unrouted the tail. Guards
    /// against the old `pop()`-based consumption that silently reversed
    /// the FIFO order.
    #[test]
    fn materialize_consumes_rho_order_front_to_back() {
        let seed = 11u64;
        let b = batch(10, vec![cand(1, 3, 5)]); // cap 3, basis 16 -> all queue-routable
        let mut s = DssLc::new(seed);
        let p = s.plan(&b);

        // replay the ρ shuffle: plan() is the constructor's first rng use
        let mut expected = b.requests.clone();
        tango_simcore::SimRng::new(seed).shuffle(&mut expected);

        let consumed: Vec<RequestId> = p
            .immediate
            .iter()
            .chain(p.queued.iter())
            .map(|&(r, _)| r)
            .collect();
        assert_eq!(p.immediate.len(), 3);
        assert_eq!(
            consumed,
            expected[..consumed.len()].to_vec(),
            "placements must follow the shuffled queue in FIFO order"
        );
        assert_eq!(p.unrouted, expected[consumed.len()..].to_vec());
    }

    /// The pooled MCMF route (retained graph + workspace) matches the
    /// one-shot solver across reuse, including after batches of different
    /// shapes.
    #[test]
    fn pooled_mcmf_route_matches_one_shot() {
        let mut s = DssLc::new(0);
        for seed in 0..12u64 {
            let mut rng = tango_simcore::SimRng::new(seed * 31 + 7);
            let n = 1 + rng.next_below(9) as usize;
            let nodes: Vec<_> = (0..n)
                .map(|i| {
                    let mut c = cand(i as u32, rng.next_below(7), 1 + rng.next_below(25));
                    c.link_capacity = 1 + rng.next_below(6) as u32;
                    c
                })
                .collect();
            let caps: Vec<u64> = nodes.iter().map(|c| c.capacity_now(true)).collect();
            let demand = rng.next_below(25);
            let b = batch(0, nodes);
            let fresh = DssLc::route_mcmf(&b, &caps, demand);
            let pooled = s.route_mcmf_pooled(&b, &caps, demand);
            assert_eq!(fresh, pooled, "pooled/one-shot divergence at seed {seed}");
        }
    }

    /// A mixed bag of per-type batches (under-capacity, overloaded, and
    /// empty-candidate) for the fan-out tests.
    fn batch_bag(n: usize) -> Vec<TypeBatch> {
        (0..n)
            .map(|k| {
                let nodes: Vec<_> = (0..1 + k % 5)
                    .map(|i| {
                        cand(
                            (k * 8 + i) as u32,
                            (i as u64 * 3) % 7,
                            1 + (i as u64 * 13) % 40,
                        )
                    })
                    .collect();
                batch(3 + (k as u64 * 7) % 25, nodes)
            })
            .collect()
    }

    /// `plan_many` is bit-identical across thread counts: same plans,
    /// same order, for 1, 2, 4, and 8 workers.
    #[test]
    fn plan_many_is_thread_count_invariant() {
        let batches = batch_bag(17);
        let reference = DssLc::new(99).plan_many(&batches, &Pool::single());
        assert!(reference.iter().any(|p| !p.immediate.is_empty()));
        assert!(reference.iter().any(|p| !p.queued.is_empty()));
        for t in [2usize, 4, 8] {
            let got = DssLc::new(99).plan_many(&batches, &Pool::new(t));
            assert_eq!(got, reference, "threads = {t}");
        }
    }

    /// `plan_many` leaves the scheduler's RNG in the same state as the
    /// equivalent sequence of forks, so interleaving it with `plan` stays
    /// deterministic.
    #[test]
    fn plan_many_advances_rng_like_sequential_forks() {
        let batches = batch_bag(5);
        let mut a = DssLc::new(3);
        a.plan_many(&batches, &Pool::new(4));
        let mut b = DssLc::new(3);
        for _ in 0..batches.len() {
            b.rng.fork();
        }
        let single = batch(4, vec![cand(1, 9, 2)]);
        assert_eq!(a.plan(&single), b.plan(&single));
    }

    /// The full (master, commodity) fan-out matches the per-master
    /// `plan_many` results at every thread count.
    #[test]
    fn plan_masters_is_thread_count_invariant() {
        let per_master: Vec<Vec<TypeBatch>> =
            vec![batch_bag(4), batch_bag(9), Vec::new(), batch_bag(1)];
        let reference: Vec<Vec<LcPlan>> = per_master
            .iter()
            .enumerate()
            .map(|(m, bs)| DssLc::new(m as u64).plan_many(bs, &Pool::single()))
            .collect();
        for t in [1usize, 2, 4, 8] {
            let mut scheds: Vec<DssLc> = (0..per_master.len() as u64).map(DssLc::new).collect();
            let got = plan_masters(&mut scheds, &per_master, &Pool::new(t));
            assert_eq!(got, reference, "threads = {t}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let b = batch(9, vec![cand(1, 3, 5), cand(2, 3, 7), cand(3, 10, 20)]);
        let p1 = DssLc::new(42).plan(&b);
        let p2 = DssLc::new(42).plan(&b);
        assert_eq!(p1.immediate, p2.immediate);
        assert_eq!(p1.queued, p2.queued);
    }
}

//! Migration planning: the scheduler-facing view and decision surface
//! for the periodic defragmentation pass (KubeDSM direction).
//!
//! Every N sync ticks the system snapshots its workers into
//! [`MigrationCandidate`]s — utilization, idle resources, and the BE
//! pods currently resident — and hands them to a [`MigrationPlanner`].
//! The planner returns batch [`MigrationDecision`]s (request → new
//! node); the system owns execution (detach, transfer over the link,
//! re-admit) and may veto a decision whose destination no longer fits.
//!
//! Planners are pure decision engines over the view, like the
//! [`crate::view::LcScheduler`] family: they never touch nodes, and
//! they must be deterministic — same view, same plan, at any thread
//! count. Only BE pods are migratable: LC requests live for
//! milliseconds and their QoS would eat the transfer latency, while BE
//! pods are long-running and preemptible by design (§4.1), which is
//! exactly the population KubeDSM migrates to the cloud.

use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId};

/// One BE request a planner may move.
#[derive(Debug, Clone, PartialEq)]
pub struct MigratablePod {
    /// The running request.
    pub request: RequestId,
    /// Its service type (the destination must have it deployed).
    pub service: ServiceId,
    /// Resource demand it would charge on the destination.
    pub demand: Resources,
}

/// One worker as the defragmentation planner sees it.
#[derive(Debug, Clone)]
pub struct MigrationCandidate {
    /// Node id.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Total allocatable resources.
    pub total: Resources,
    /// Idle resources (what a migrated BE pod may charge).
    pub available_be: Resources,
    /// Demand-based utilization in [0, 1].
    pub utilization: f64,
    /// Whether this node belongs to the elastic cloud tier.
    pub is_cloud: bool,
    /// Whether the node is up and reachable from the planner's vantage.
    pub alive: bool,
    /// BE pods currently resident, in deterministic (admission) order.
    pub be_pods: Vec<MigratablePod>,
}

/// A planned move: detach `request` from `src`, transfer, resume on `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDecision {
    /// The request to move.
    pub request: RequestId,
    /// Where it currently runs.
    pub src: NodeId,
    /// Where it should resume.
    pub dst: NodeId,
}

/// A batch migration policy: view of all workers in, batch of moves out.
pub trait MigrationPlanner {
    /// Plan at most `max_moves` migrations over the candidate view.
    /// Candidates arrive sorted by node id; decisions must be returned
    /// in a deterministic order.
    fn plan(&mut self, view: &[MigrationCandidate], max_moves: usize) -> Vec<MigrationDecision>;

    /// Planner name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A worker with `idle` CPU-millicores free and the given BE pods.
    pub fn worker(
        id: u32,
        cluster: u32,
        idle_cpu: u64,
        util: f64,
        is_cloud: bool,
        pods: &[(u64, u64)],
    ) -> MigrationCandidate {
        MigrationCandidate {
            node: NodeId(id),
            cluster: ClusterId(cluster),
            total: Resources::cpu_mem(8_000, 16_384),
            available_be: Resources::cpu_mem(idle_cpu, idle_cpu * 2),
            utilization: util,
            is_cloud,
            alive: true,
            be_pods: pods
                .iter()
                .map(|&(rid, cpu)| MigratablePod {
                    request: RequestId(rid),
                    service: ServiceId(1),
                    demand: Resources::cpu_mem(cpu, cpu / 2),
                })
                .collect(),
        }
    }
}

//! Traffic scheduling algorithms (§5).
//!
//! * [`dss_lc`] — the **Distributed Service request Scheduling algorithm
//!   for LC requests** (Alg. 2): per request type k, build a flow network
//!   over the geo-nearby candidate nodes and solve a min-cost max-flow
//!   (our `tango-flow` replaces OR-tools). Supply ≥ demand routes
//!   directly; overload splits requests with the random sorting function
//!   ρ(·) into an immediate set R_k and a queued set R′_k routed over
//!   *total* resources scaled by the augmentation factor λ (Eq. 7–8).
//! * [`dcg_be`] — the **DRL Customized algorithm based on GNN for
//!   centralized BE request scheduling** (Alg. 3): GraphSAGE encoding +
//!   A2C with policy-context filtering, plus the GNN-SAC baseline and the
//!   paper's reward shaping (§5.3.1).
//! * [`baselines`] — load-greedy, K8s-native round-robin, and the
//!   history-based weighted `scoring` policy \[42\], all behind the same
//!   [`LcScheduler`] interface; plus the KubeDSM-style batch-migration
//!   planner behind [`migrate::MigrationPlanner`].
//! * [`migrate`] — the defragmentation-pass decision surface: a
//!   [`migrate::MigrationCandidate`] view of every worker's BE pods and
//!   batch [`migrate::MigrationDecision`]s back.
//! * [`td3_be`] — a TD3-style continuous-action BE scheduler: the agent
//!   emits per-candidate CPU/memory grant fractions and placement + grant
//!   sizing land together through [`BeScheduler::schedule_sized`].
//! * [`backend`] — the unified [`SchedulerBackend`] surface the system's
//!   dispatch stage consumes; [`LcBackend`]/[`BeBackend`] lift the narrow
//!   per-role traits so every policy plugs in uniformly.
//!
//! The schedulers are pure decision engines: they consume [`view`]
//! snapshots prepared by the system layer and return placements; they
//! never touch nodes directly. That is exactly the paper's architecture —
//! dispatchers read the state storage, not the cluster.

pub mod backend;
pub mod baselines;
pub mod dcg_be;
pub mod dss_lc;
pub mod migrate;
pub mod snap_impls;
pub mod td3_be;
pub mod view;

pub use backend::{BeBackend, LcBackend, SchedulerBackend};
pub use baselines::{KsNative, KubeDsm, LoadGreedy, Scoring};
pub use dcg_be::{BeScheduler, DcgBe, DcgBeConfig, GnnSacBe, GreedyBe, RoundRobinBe};
pub use dss_lc::{plan_masters, DssLc, LcPlan};
pub use migrate::{MigratablePod, MigrationCandidate, MigrationDecision, MigrationPlanner};
pub use td3_be::{Td3Be, Td3BeConfig};
pub use view::{CandidateNode, LcScheduler, LinkObservation, NodeObservation, TypeBatch};

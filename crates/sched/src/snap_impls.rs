//! `SnapEncode`/`SnapDecode` for the scheduler-facing view types, so the
//! control plane can put candidate views on the wire (decision request
//! frames) with the same codec discipline as checkpoints.
//!
//! Field order follows the struct declaration exactly; any change here
//! is a wire-format change for the delegated-orchestration frames and
//! must bump `tango_ctrl`'s decision format version.

use crate::view::CandidateNode;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ClusterId, NodeId, Resources, SimTime};

impl SnapEncode for CandidateNode {
    fn encode(&self, w: &mut SnapWriter) {
        self.node.encode(w);
        self.cluster.encode(w);
        self.total.encode(w);
        self.available_lc.encode(w);
        self.available_be.encode(w);
        self.min_request.encode(w);
        self.delay.encode(w);
        w.put_u32(self.link_capacity);
        w.put_f64(self.slack);
        w.put_bool(self.alive);
    }
}

impl SnapDecode for CandidateNode {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CandidateNode {
            node: NodeId::decode(r)?,
            cluster: ClusterId::decode(r)?,
            total: Resources::decode(r)?,
            available_lc: Resources::decode(r)?,
            available_be: Resources::decode(r)?,
            min_request: Resources::decode(r)?,
            delay: SimTime::decode(r)?,
            link_capacity: r.u32()?,
            slack: r.f64()?,
            alive: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_node_round_trips() {
        let c = CandidateNode {
            node: NodeId(7),
            cluster: ClusterId(2),
            total: Resources::cpu_mem(4000, 8192),
            available_lc: Resources::cpu_mem(1500, 3000),
            available_be: Resources::cpu_mem(700, 1200),
            min_request: Resources::cpu_mem(250, 256),
            delay: SimTime::from_millis(3),
            link_capacity: 12,
            slack: 0.85,
            alive: false,
        };
        let mut w = SnapWriter::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(CandidateNode::decode(&mut r).unwrap(), c);
        r.expect_end("candidate node").unwrap();
    }
}

//! DCG-BE: centralized, GNN + DRL scheduling of BE requests (Alg. 3), and
//! its learning baseline GNN-SAC.
//!
//! The central dispatcher models the whole edge-cloud system as a graph
//! G′ (§5.3.1): every node carries the seven state features of the Markov
//! game — available/total CPU and memory, the current slack score, and the
//! pending BE request's CPU/memory requirement — and the action is the
//! target node index. A **policy context filter** zeroes the probability
//! of any node whose free resources cannot satisfy the request
//! (`p̂(s_t) = p(s_t) ∗ c_t`). The reward r = r_short + η·r_long combines
//! immediate load avoidance with long-term completed-work throughput.

use crate::view::CandidateNode;
use tango_gnn::{EncoderKind, FeatureGraph};
use tango_nn::Matrix;
use tango_rl::{A2cAgent, A2cConfig, Agent, SacAgent, SacConfig};
use tango_types::{NodeId, Resources};

/// A centralized BE scheduling policy.
pub trait BeScheduler {
    /// Choose a target node for one BE request. `None` = nothing feasible
    /// (the request returns to the scheduling queue, Alg. 3's
    /// reschedule-on-failure).
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId>;

    /// Choose a target node *and* the resources to grant the request —
    /// the continuous-action surface (TD3-style policies size the grant
    /// jointly with the placement). Discrete policies fall through to
    /// [`BeScheduler::schedule`] and grant the nominal demand.
    fn schedule_sized(
        &mut self,
        demand: &Resources,
        nodes: &[CandidateNode],
    ) -> Option<(NodeId, Resources)> {
        self.schedule(demand, nodes).map(|n| (n, *demand))
    }

    /// Report the reward for the previous `schedule` decision together
    /// with the state that followed it.
    fn feedback(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]);

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the policy's mutable state for a checkpoint (see
    /// `LcScheduler::snapshot_state` for the contract).
    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(Vec::new())
    }

    /// Restore state captured by [`BeScheduler::snapshot_state`].
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("policy holds no state but blob is non-empty")
        }
    }
}

/// Number of node features: the seven of §5.3.1's state T plus the
/// transmission delay of the edge from the deciding dispatcher (the
/// t^delay component of the edge state, folded into the node it leads to
/// so the per-node policy head can read it).
pub const FEATURE_DIM: usize = 8;

/// Build the global graph G′ = (S′, Z′) over candidate nodes: features per
/// §5.3.1, edges star-shaped within each cluster plus a complete WAN mesh
/// between cluster heads.
pub fn build_graph(demand: &Resources, nodes: &[CandidateNode]) -> FeatureGraph {
    let n = nodes.len();
    let max_cpu = nodes
        .iter()
        .map(|c| c.total.cpu_milli)
        .max()
        .unwrap_or(1)
        .max(1);
    let max_mem = nodes
        .iter()
        .map(|c| c.total.memory_mib)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut feats = Matrix::zeros(n, FEATURE_DIM);
    for (i, c) in nodes.iter().enumerate() {
        let tc = c.total.cpu_milli.max(1) as f32;
        let tm = c.total.memory_mib.max(1) as f32;
        feats.set(i, 0, c.available_be.cpu_milli as f32 / tc);
        feats.set(i, 1, c.available_be.memory_mib as f32 / tm);
        feats.set(i, 2, c.total.cpu_milli as f32 / max_cpu as f32);
        feats.set(i, 3, c.total.memory_mib as f32 / max_mem as f32);
        feats.set(i, 4, (c.slack as f32).clamp(-1.0, 1.0));
        feats.set(i, 5, (demand.cpu_milli as f32 / tc).min(2.0));
        feats.set(i, 6, (demand.memory_mib as f32 / tm).min(2.0));
        feats.set(i, 7, (c.delay.as_millis_f64() as f32 / 100.0).min(1.0));
    }
    let mut g = FeatureGraph::new(feats);
    // star within each cluster, rooted at the cluster's first node
    let mut heads: Vec<(u32, usize)> = Vec::new();
    for (i, c) in nodes.iter().enumerate() {
        match heads.iter().find(|&&(cl, _)| cl == c.cluster.raw()) {
            Some(&(_, head)) => g.add_edge(head, i),
            None => heads.push((c.cluster.raw(), i)),
        }
    }
    // complete mesh among cluster heads (the WAN)
    for a in 0..heads.len() {
        for b in (a + 1)..heads.len() {
            g.add_edge(heads[a].1, heads[b].1);
        }
    }
    g
}

/// The policy-context filter c_t: node i is valid iff it is up and its
/// idle resources satisfy the request. Dead nodes are never a valid
/// action, even when the resource-feasibility filter is ablated off.
pub fn context_mask(demand: &Resources, nodes: &[CandidateNode]) -> Vec<bool> {
    nodes
        .iter()
        .map(|c| c.alive && demand.fits_within(&c.available_be))
        .collect()
}

/// Short-term reward (§5.3.1): e^(−max(Σ r_c/r_c_node, Σ r_m/r_m_node))
/// over the BE requests waiting at the chosen node.
pub fn short_term_reward(pending_be: &Resources, node_available: &Resources) -> f32 {
    let frac = pending_be.max_fraction_of(node_available);
    (-frac).exp() as f32
}

/// Long-term reward (§5.3.1): 1 − e^(−Σ completed work fractions) over
/// the requests completed since the last training interval.
pub fn long_term_reward(completed_fraction_sum: f64) -> f32 {
    (1.0 - (-completed_fraction_sum).exp()) as f32
}

/// Configuration for [`DcgBe`].
#[derive(Debug, Clone)]
pub struct DcgBeConfig {
    /// GNN structure (paper: GraphSAGE; Fig. 11(d) swaps this out).
    pub encoder_kind: EncoderKind,
    /// Weight η between short- and long-term reward (paper: 1.0) —
    /// recorded here for the reward computation done by the runtime.
    pub eta: f32,
    /// Collected samples per training round.
    pub train_interval: usize,
    /// Learning rate (paper: 2e-4; experiments may raise it to converge
    /// within shorter simulated horizons).
    pub lr: f32,
    /// Apply the policy-context filter c_t (§5.3.2). Disabling it lets
    /// the agent pick infeasible nodes, whose requests bounce back to the
    /// queue — the ablation showing why the filter exists.
    pub context_filter: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DcgBeConfig {
    fn default() -> Self {
        DcgBeConfig {
            encoder_kind: EncoderKind::Sage { p: 3 },
            eta: 1.0,
            train_interval: 32,
            lr: 1e-3,
            context_filter: true,
            seed: 31,
        }
    }
}

/// DCG-BE: A2C over GraphSAGE embeddings.
pub struct DcgBe {
    agent: A2cAgent,
    /// η for the runtime's reward computation.
    pub eta: f32,
    context_filter: bool,
}

impl DcgBe {
    /// Build from config.
    pub fn new(cfg: DcgBeConfig) -> Self {
        let a2c = A2cConfig {
            encoder_kind: cfg.encoder_kind,
            feature_dim: FEATURE_DIM,
            lr: cfg.lr,
            train_interval: cfg.train_interval,
            seed: cfg.seed,
            ..A2cConfig::default()
        };
        DcgBe {
            agent: A2cAgent::new(a2c),
            eta: cfg.eta,
            context_filter: cfg.context_filter,
        }
    }

    /// Training rounds completed (diagnostics).
    pub fn train_rounds(&self) -> usize {
        self.agent.train_rounds
    }
}

impl BeScheduler for DcgBe {
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        let graph = build_graph(demand, nodes);
        let mask = if self.context_filter {
            context_mask(demand, nodes)
        } else {
            nodes.iter().map(|c| c.alive).collect()
        };
        let idx = self.agent.act(&graph, &mask)?;
        Some(nodes[idx].node)
    }

    fn feedback(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]) {
        let graph = build_graph(next_demand, next_nodes);
        let mask = if self.context_filter {
            context_mask(next_demand, next_nodes)
        } else {
            next_nodes.iter().map(|c| c.alive).collect()
        };
        self.agent.observe(reward, &graph, &mask, false);
    }

    fn name(&self) -> &'static str {
        "dcg-be"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(self.agent.snapshot_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.agent
            .restore_bytes(bytes)
            .map_err(|_| "dcg-be agent blob rejected")
    }
}

/// GNN-SAC: the soft-actor-critic baseline sharing DCG-BE's encoder and
/// state/action spaces.
pub struct GnnSacBe {
    agent: SacAgent,
}

impl GnnSacBe {
    /// Build with the given seed (other hyper-parameters follow
    /// [`SacConfig::default`]).
    pub fn new(encoder_kind: EncoderKind, lr: f32, seed: u64) -> Self {
        let cfg = SacConfig {
            encoder_kind,
            feature_dim: FEATURE_DIM,
            lr,
            seed,
            ..SacConfig::default()
        };
        GnnSacBe {
            agent: SacAgent::new(cfg),
        }
    }
}

impl BeScheduler for GnnSacBe {
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        let graph = build_graph(demand, nodes);
        let mask = context_mask(demand, nodes);
        let idx = self.agent.act(&graph, &mask)?;
        Some(nodes[idx].node)
    }

    fn feedback(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]) {
        let graph = build_graph(next_demand, next_nodes);
        let mask = context_mask(next_demand, next_nodes);
        self.agent.observe(reward, &graph, &mask, false);
    }

    fn name(&self) -> &'static str {
        "gnn-sac"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(self.agent.snapshot_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.agent
            .restore_bytes(bytes)
            .map_err(|_| "gnn-sac agent blob rejected")
    }
}

/// BE-side load-greedy: the emptiest feasible node.
#[derive(Debug, Default)]
pub struct GreedyBe;

impl BeScheduler for GreedyBe {
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        // Single-pass fold computing each candidate's utilization once.
        // Tie rule matches `Iterator::max_by` (last maximum wins, and an
        // incomparable pair counts as a tie): the incumbent survives only
        // when strictly greater.
        let mut best: Option<(NodeId, f64)> = None;
        for c in nodes {
            if !c.alive || !demand.fits_within(&c.available_be) {
                continue;
            }
            let f = c.available_be.utilization_against(&c.total);
            let keep = matches!(
                &best,
                Some((_, fb)) if fb.partial_cmp(&f) == Some(std::cmp::Ordering::Greater)
            );
            if !keep {
                best = Some((c.node, f));
            }
        }
        best.map(|(n, _)| n)
    }

    fn feedback(&mut self, _: f32, _: &Resources, _: &[CandidateNode]) {}

    fn name(&self) -> &'static str {
        "load-greedy"
    }
}

/// BE-side K8s-native: round-robin over feasible nodes.
#[derive(Debug, Default)]
pub struct RoundRobinBe {
    cursor: usize,
}

impl BeScheduler for RoundRobinBe {
    fn schedule(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        let n = nodes.len();
        for off in 0..n {
            let i = (self.cursor + off) % n;
            if nodes[i].alive && demand.fits_within(&nodes[i].available_be) {
                self.cursor = (i + 1) % n;
                return Some(nodes[i].node);
            }
        }
        None
    }

    fn feedback(&mut self, _: f32, _: &Resources, _: &[CandidateNode]) {}

    fn name(&self) -> &'static str {
        "k8s-native"
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok((self.cursor as u64).to_le_bytes().to_vec())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "round-robin cursor blob")?;
        self.cursor = u64::from_le_bytes(arr) as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::cand;

    fn demand() -> Resources {
        Resources::cpu_mem(500, 256)
    }

    #[test]
    fn graph_has_paper_features_and_topology() {
        let nodes = vec![cand(0, 4, 1), cand(1, 4, 1), cand(8, 4, 30), cand(9, 4, 30)];
        // ids 0,1 -> cluster 0; ids 8,9 -> cluster 1
        let g = build_graph(&demand(), &nodes);
        assert_eq!(g.len(), 4);
        assert_eq!(g.feature_dim(), FEATURE_DIM);
        // star within cluster: node 1 connects to head 0; node 3 to head 2
        assert!(g.neighbors(1).contains(&0));
        assert!(g.neighbors(3).contains(&2));
        // WAN mesh between heads
        assert!(g.neighbors(0).contains(&2));
    }

    #[test]
    fn context_mask_filters_infeasible() {
        let mut poor = cand(1, 0, 1);
        poor.available_be = Resources::cpu_mem(10, 10);
        let rich = cand(2, 8, 1);
        let mask = context_mask(&demand(), &[poor, rich]);
        assert_eq!(mask, vec![false, true]);
    }

    #[test]
    fn context_mask_excludes_dead_nodes() {
        let mut dead = cand(1, 8, 1);
        dead.alive = false;
        let mask = context_mask(&demand(), &[dead, cand(2, 8, 1)]);
        assert_eq!(mask, vec![false, true]);
    }

    #[test]
    fn baselines_never_pick_dead_nodes() {
        let mut dead = cand(1, 8, 1);
        dead.alive = false;
        let nodes = vec![dead, cand(2, 8, 1)];
        assert_eq!(GreedyBe.schedule(&demand(), &nodes), Some(NodeId(2)));
        let mut rr = RoundRobinBe::default();
        for _ in 0..4 {
            assert_eq!(rr.schedule(&demand(), &nodes), Some(NodeId(2)));
        }
        let mut only_dead = nodes;
        only_dead.truncate(1);
        assert_eq!(GreedyBe.schedule(&demand(), &only_dead), None);
        assert_eq!(rr.schedule(&demand(), &only_dead), None);
    }

    #[test]
    fn rewards_match_paper_formulas() {
        // empty node: r_short = e^0 = 1
        let r0 = short_term_reward(&Resources::ZERO, &Resources::cpu_mem(1_000, 1_000));
        assert!((r0 - 1.0).abs() < 1e-6);
        // half-loaded bottleneck: e^-0.5
        let r1 = short_term_reward(
            &Resources::cpu_mem(500, 100),
            &Resources::cpu_mem(1_000, 1_000),
        );
        assert!((r1 - (-0.5f32).exp()).abs() < 1e-6);
        // long-term grows with completed work, saturating at 1
        assert!(long_term_reward(0.0).abs() < 1e-6);
        assert!(long_term_reward(10.0) > 0.99);
        assert!(long_term_reward(1.0) > long_term_reward(0.3));
    }

    #[test]
    fn dcg_be_schedules_only_feasible_nodes() {
        let mut s = DcgBe::new(DcgBeConfig::default());
        let mut poor = cand(1, 0, 1);
        poor.available_be = Resources::ZERO;
        let rich = cand(2, 8, 1);
        let nodes = vec![poor, rich];
        for _ in 0..20 {
            let pick = s.schedule(&demand(), &nodes).unwrap();
            assert_eq!(pick, NodeId(2));
            s.feedback(0.5, &demand(), &nodes);
        }
    }

    #[test]
    fn dcg_be_returns_none_when_nothing_fits() {
        let mut s = DcgBe::new(DcgBeConfig::default());
        let mut poor = cand(1, 0, 1);
        poor.available_be = Resources::ZERO;
        assert_eq!(s.schedule(&demand(), &[poor]), None);
    }

    #[test]
    fn dcg_be_trains_after_interval() {
        let cfg = DcgBeConfig {
            train_interval: 8,
            ..DcgBeConfig::default()
        };
        let mut s = DcgBe::new(cfg);
        let nodes = vec![cand(1, 8, 1), cand(2, 8, 5)];
        for _ in 0..16 {
            s.schedule(&demand(), &nodes).unwrap();
            s.feedback(1.0, &demand(), &nodes);
        }
        assert!(s.train_rounds() >= 2);
    }

    #[test]
    fn gnn_sac_schedules_with_mask() {
        let mut s = GnnSacBe::new(EncoderKind::Sage { p: 3 }, 1e-3, 7);
        let nodes = vec![cand(1, 8, 1), cand(2, 8, 5)];
        let pick = s.schedule(&demand(), &nodes).unwrap();
        assert!(pick == NodeId(1) || pick == NodeId(2));
        s.feedback(0.3, &demand(), &nodes);
    }

    #[test]
    fn greedy_be_picks_emptiest() {
        let mut s = GreedyBe;
        let mut full = cand(1, 8, 1);
        full.available_be = Resources::cpu_mem(600, 300); // mostly used
        let empty = cand(2, 8, 1);
        let pick = s.schedule(&demand(), &[full, empty]).unwrap();
        assert_eq!(pick, NodeId(2));
    }

    #[test]
    fn round_robin_be_cycles() {
        let mut s = RoundRobinBe::default();
        let nodes = vec![cand(1, 8, 1), cand(2, 8, 1)];
        let picks: Vec<u32> = (0..4)
            .map(|_| s.schedule(&demand(), &nodes).unwrap().raw())
            .collect();
        assert_eq!(picks, vec![1, 2, 1, 2]);
    }
}

//! The unified scheduling-policy surface the system runtime talks to.
//!
//! The paper has two dispatcher roles with different shapes: per-master
//! LC dispatch plans a whole round of per-type batches at once (Alg. 2),
//! while central BE dispatch picks one node per request and learns from a
//! delayed reward (Alg. 3). Historically the runtime held one trait
//! object per shape; [`SchedulerBackend`] folds both roles behind a
//! single object-safe trait so baselines, DSS-LC and DCG-BE all plug into
//! the dispatch stage uniformly — the TD3-Sched-style "stable
//! orchestration interface" the roadmap asks for.
//!
//! Concrete policies keep implementing the narrow [`LcScheduler`] /
//! [`BeScheduler`] traits; the [`LcBackend`] and [`BeBackend`] adapters
//! lift them. Calls for the role an adapter does not play are inert by
//! contract: an LC backend never picks BE targets (`pick_be` returns
//! `None` and `feedback_be` is dropped), and a BE backend plans nothing
//! (`plan_lc` leaves every batch unplaced). That makes role mix-ups
//! visible as "no work scheduled" rather than silent misbehavior.

use crate::dcg_be::BeScheduler;
use crate::view::{CandidateNode, LcScheduler, TypeBatch};
use tango_par::Pool;
use tango_types::{NodeId, RequestId, Resources};

/// A scheduling policy behind the dispatch stage, either role.
pub trait SchedulerBackend: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// LC role: decide placements for one dispatch round's per-type
    /// batches, one result vector per batch in batch order. Policies may
    /// fan out over `pool` but must return identical results at any
    /// thread count. Backends without an LC role return one empty
    /// placement list per batch (every request stays queued).
    fn plan_lc(&mut self, batches: &[TypeBatch], pool: &Pool) -> Vec<Vec<(RequestId, NodeId)>>;

    /// BE role: choose a target node for one request; `None` = nothing
    /// feasible (the request returns to the scheduling queue, Alg. 3's
    /// reschedule-on-failure). Backends without a BE role always return
    /// `None`.
    fn pick_be(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId>;

    /// BE role, continuous-action variant: choose a target node and the
    /// resources to grant (a TD3-style policy sizes the grant jointly
    /// with the placement). Discrete policies delegate to
    /// [`SchedulerBackend::pick_be`] and grant the nominal demand.
    fn pick_be_sized(
        &mut self,
        demand: &Resources,
        nodes: &[CandidateNode],
    ) -> Option<(NodeId, Resources)> {
        self.pick_be(demand, nodes).map(|n| (n, *demand))
    }

    /// BE role: reward for the previous [`SchedulerBackend::pick_be`]
    /// decision together with the state that followed it. Ignored by
    /// backends without a BE role.
    fn feedback_be(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]);

    /// Serialize the policy's mutable state for a checkpoint. Stateless
    /// policies return an empty blob; learned policies serialize their
    /// full learner state (weights, optimizer moments, RNG streams,
    /// replay contents) so resume continues training bit-identically.
    /// `Err` means the blob could not be produced — checkpointing fails
    /// loudly instead of resuming with reset state.
    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        Ok(Vec::new())
    }

    /// Restore state captured by [`SchedulerBackend::snapshot_state`].
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("policy holds no state but blob is non-empty")
        }
    }
}

/// Adapter lifting an [`LcScheduler`] into the unified backend surface.
pub struct LcBackend(Box<dyn LcScheduler + Send>);

impl LcBackend {
    /// Wrap a boxed LC policy.
    pub fn new(inner: Box<dyn LcScheduler + Send>) -> Self {
        LcBackend(inner)
    }
}

impl SchedulerBackend for LcBackend {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn plan_lc(&mut self, batches: &[TypeBatch], pool: &Pool) -> Vec<Vec<(RequestId, NodeId)>> {
        self.0.assign_many(batches, pool)
    }

    fn pick_be(&mut self, _demand: &Resources, _nodes: &[CandidateNode]) -> Option<NodeId> {
        None
    }

    fn feedback_be(&mut self, _reward: f32, _demand: &Resources, _nodes: &[CandidateNode]) {}

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        self.0.snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.0.restore_state(bytes)
    }
}

/// Adapter lifting a [`BeScheduler`] into the unified backend surface.
pub struct BeBackend(Box<dyn BeScheduler + Send>);

impl BeBackend {
    /// Wrap a boxed BE policy.
    pub fn new(inner: Box<dyn BeScheduler + Send>) -> Self {
        BeBackend(inner)
    }
}

impl SchedulerBackend for BeBackend {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn plan_lc(&mut self, batches: &[TypeBatch], _pool: &Pool) -> Vec<Vec<(RequestId, NodeId)>> {
        batches.iter().map(|_| Vec::new()).collect()
    }

    fn pick_be(&mut self, demand: &Resources, nodes: &[CandidateNode]) -> Option<NodeId> {
        self.0.schedule(demand, nodes)
    }

    fn pick_be_sized(
        &mut self,
        demand: &Resources,
        nodes: &[CandidateNode],
    ) -> Option<(NodeId, Resources)> {
        self.0.schedule_sized(demand, nodes)
    }

    fn feedback_be(&mut self, reward: f32, next_demand: &Resources, next_nodes: &[CandidateNode]) {
        self.0.feedback(reward, next_demand, next_nodes)
    }

    fn snapshot_state(&self) -> Result<Vec<u8>, &'static str> {
        self.0.snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.0.restore_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::LoadGreedy;
    use crate::dcg_be::GreedyBe;
    use crate::view::test_support::{batch, cand};

    #[test]
    fn lc_backend_plans_and_refuses_be_role() {
        let mut b = LcBackend::new(Box::new(LoadGreedy));
        assert_eq!(b.name(), "load-greedy");
        let batches = vec![batch(2, vec![cand(1, 4, 5)])];
        let plans = b.plan_lc(&batches, &Pool::single());
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].len(), 2);
        let demand = Resources::cpu_mem(500, 256);
        assert_eq!(b.pick_be(&demand, &[cand(1, 4, 5)]), None);
        b.feedback_be(1.0, &demand, &[]); // inert, must not panic
    }

    #[test]
    fn be_backend_picks_and_refuses_lc_role() {
        let mut b = BeBackend::new(Box::new(GreedyBe));
        let demand = Resources::cpu_mem(500, 256);
        assert!(b.pick_be(&demand, &[cand(1, 4, 5)]).is_some());
        let batches = vec![batch(3, vec![cand(1, 4, 5)]), batch(1, vec![])];
        let plans = b.plan_lc(&batches, &Pool::single());
        assert_eq!(plans, vec![Vec::new(), Vec::new()]);
    }
}

//! Checkpoint codecs for fault events and accounting.
//!
//! [`FaultEvent`]s live inside the simulation event queue and must survive
//! a checkpoint so a restored run replays the exact fault schedule; the
//! [`FaultSummary`] is cumulative accounting that the run report surfaces.
//! The live [`crate::FaultState`] snapshot lives next to the state itself
//! in `state.rs` (its fields are module-private).

use crate::plan::FaultEvent;
use crate::state::FaultSummary;
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ClusterId, NodeId, SimTime};

impl SnapEncode for FaultEvent {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            FaultEvent::NodeCrash { node } => {
                w.put_u8(0);
                node.encode(w);
            }
            FaultEvent::NodeRecover { node } => {
                w.put_u8(1);
                node.encode(w);
            }
            FaultEvent::LinkDegrade {
                a,
                b,
                latency_factor,
                bandwidth_factor,
            } => {
                w.put_u8(2);
                a.encode(w);
                b.encode(w);
                w.put_f64(*latency_factor);
                w.put_f64(*bandwidth_factor);
            }
            FaultEvent::LinkRestore { a, b } => {
                w.put_u8(3);
                a.encode(w);
                b.encode(w);
            }
            FaultEvent::Partition { side } => {
                w.put_u8(4);
                side.encode(w);
            }
            FaultEvent::Heal => w.put_u8(5),
        }
    }
}
impl SnapDecode for FaultEvent {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FaultEvent::NodeCrash {
                node: NodeId::decode(r)?,
            },
            1 => FaultEvent::NodeRecover {
                node: NodeId::decode(r)?,
            },
            2 => FaultEvent::LinkDegrade {
                a: ClusterId::decode(r)?,
                b: ClusterId::decode(r)?,
                latency_factor: r.f64()?,
                bandwidth_factor: r.f64()?,
            },
            3 => FaultEvent::LinkRestore {
                a: ClusterId::decode(r)?,
                b: ClusterId::decode(r)?,
            },
            4 => FaultEvent::Partition {
                side: Vec::<ClusterId>::decode(r)?,
            },
            5 => FaultEvent::Heal,
            _ => return Err(SnapError::Corrupt("fault event tag")),
        })
    }
}

impl SnapEncode for FaultSummary {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.node_crashes);
        w.put_u64(self.node_recoveries);
        w.put_u64(self.master_failovers);
        w.put_u64(self.links_degraded);
        w.put_u64(self.links_restored);
        w.put_u64(self.partitions);
        w.put_u64(self.heals);
        w.put_u64(self.lc_interrupted);
        w.put_u64(self.be_interrupted);
        w.put_u64(self.wait_drained);
        w.put_u64(self.bounced_deliveries);
        w.put_u64(self.rescheduled);
        w.put_u64(self.down_node_dispatches);
        self.total_downtime.encode(w);
        w.put_u64(self.fault_qos_violations);
    }
}
impl SnapDecode for FaultSummary {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultSummary {
            node_crashes: r.u64()?,
            node_recoveries: r.u64()?,
            master_failovers: r.u64()?,
            links_degraded: r.u64()?,
            links_restored: r.u64()?,
            partitions: r.u64()?,
            heals: r.u64()?,
            lc_interrupted: r.u64()?,
            be_interrupted: r.u64()?,
            wait_drained: r.u64()?,
            bounced_deliveries: r.u64()?,
            rescheduled: r.u64()?,
            down_node_dispatches: r.u64()?,
            total_downtime: SimTime::decode(r)?,
            fault_qos_violations: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultState;

    #[test]
    fn every_event_variant_round_trips() {
        let events = vec![
            FaultEvent::NodeCrash { node: NodeId(3) },
            FaultEvent::NodeRecover { node: NodeId(3) },
            FaultEvent::LinkDegrade {
                a: ClusterId(0),
                b: ClusterId(1),
                latency_factor: 3.5,
                bandwidth_factor: 2.0,
            },
            FaultEvent::LinkRestore {
                a: ClusterId(0),
                b: ClusterId(1),
            },
            FaultEvent::Partition {
                side: vec![ClusterId(1), ClusterId(2)],
            },
            FaultEvent::Heal,
        ];
        let mut w = SnapWriter::new();
        events.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<FaultEvent>::decode(&mut r).unwrap(), events);
        assert!(r.is_empty());
    }

    #[test]
    fn bad_event_tag_is_typed() {
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(
            FaultEvent::decode(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn fault_state_round_trips_mid_incident() {
        let mut s = FaultState::new(4);
        s.on_crash(NodeId(1), SimTime::from_secs(2), false);
        s.on_crash(NodeId(2), SimTime::from_secs(3), true);
        s.on_recover(NodeId(1), SimTime::from_secs(4));
        s.on_link_degrade();
        s.on_partition();
        s.summary.rescheduled = 7;

        let mut w = SnapWriter::new();
        s.snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut back = FaultState::new(4);
        let mut r = SnapReader::new(&bytes);
        back.restore(&mut r).unwrap();
        assert!(r.is_empty());
        assert!(!back.is_down(NodeId(1)));
        assert!(back.is_down(NodeId(2)));
        assert_eq!(back.epoch(NodeId(1)), 1);
        assert_eq!(back.epoch(NodeId(2)), 1);
        assert!(back.any_fault_active());
        assert_eq!(back.summary, s.summary);
        // settling both from the same point must agree (down_since restored)
        back.settle(SimTime::from_secs(10));
        s.settle(SimTime::from_secs(10));
        assert_eq!(back.summary.total_downtime, s.summary.total_downtime);
    }

    #[test]
    fn fault_state_restore_rejects_node_count_mismatch() {
        let mut s = FaultState::new(4);
        s.on_crash(NodeId(0), SimTime::from_secs(1), false);
        let mut w = SnapWriter::new();
        s.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = FaultState::new(3);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            back.restore(&mut r),
            Err(SnapError::Corrupt("fault state node count"))
        ));
    }
}
